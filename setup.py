"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so that fully offline environments (no ``wheel`` package available, hence no
PEP 660 editable builds) can still do a legacy editable install with
``pip install -e . --no-build-isolation`` or ``python setup.py develop``.
"""

from setuptools import setup

setup()
