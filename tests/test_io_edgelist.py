"""Unit tests for :mod:`repro.io.edgelist`."""

from __future__ import annotations

import io

import pytest

from repro.exceptions import GraphFormatError
from repro.graph.digraph import DirectedGraph
from repro.io.edgelist import format_edgelist, parse_edgelist, read_edgelist, write_edgelist


class TestParsing:
    def test_basic_csv(self):
        graph, _ = parse_edgelist(["A,B", "B,C", "C,A"])
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 3

    def test_integer_endpoints_become_ids(self):
        graph, _ = parse_edgelist(["0,1", "1,2"])
        assert graph.number_of_nodes() == 3
        assert graph.has_edge(0, 1)

    def test_header_detected_and_skipped(self):
        graph, builder = parse_edgelist(["source,target", "A,B"])
        assert graph.number_of_edges() == 1
        assert builder.report.lines_skipped == 1

    def test_alternative_headers(self):
        for header in ["from,to", "Src,Dst", "u,v"]:
            graph, _ = parse_edgelist([header, "A,B"])
            assert graph.number_of_edges() == 1

    def test_comments_and_blank_lines_skipped(self):
        graph, builder = parse_edgelist(["# comment", "", "A,B", "   "])
        assert graph.number_of_edges() == 1
        assert builder.report.lines_skipped >= 2

    def test_custom_delimiter(self):
        graph, _ = parse_edgelist(["A\tB", "B\tC"], delimiter="\t")
        assert graph.number_of_edges() == 2

    def test_extra_columns_ignored(self):
        graph, _ = parse_edgelist(["A,B,0.7,ignored"])
        assert graph.number_of_edges() == 1

    def test_single_field_line_fails(self):
        with pytest.raises(GraphFormatError):
            parse_edgelist(["A,B", "C"])

    def test_empty_endpoint_fails(self):
        with pytest.raises(GraphFormatError):
            parse_edgelist(["A,"])

    def test_self_loops_dropped_by_default(self):
        graph, builder = parse_edgelist(["A,A", "A,B"])
        assert graph.number_of_edges() == 1
        assert builder.report.self_loops_skipped == 1

    def test_self_loops_kept_when_allowed(self):
        graph, _ = parse_edgelist(["A,A"], allow_self_loops=True)
        assert graph.number_of_edges() == 1


class TestRoundTrip:
    def test_format_and_reparse(self, two_triangles):
        text = format_edgelist(two_triangles)
        reparsed, _ = parse_edgelist(text.splitlines())
        assert reparsed.number_of_edges() == two_triangles.number_of_edges()
        assert sorted(reparsed.labels()) == sorted(two_triangles.labels())

    def test_format_with_header_and_ids(self, triangle):
        text = format_edgelist(triangle, use_labels=False, header=True)
        lines = text.strip().splitlines()
        assert lines[0] == "source,target"
        assert all("," in line for line in lines[1:])

    def test_file_round_trip(self, tmp_path, mixed_graph):
        path = tmp_path / "graph.csv"
        write_edgelist(mixed_graph, path)
        loaded = read_edgelist(path)
        assert loaded.number_of_edges() == mixed_graph.number_of_edges()
        assert loaded.name == "graph"

    def test_stream_round_trip(self, triangle):
        buffer = io.StringIO()
        write_edgelist(triangle, buffer)
        buffer.seek(0)
        loaded = read_edgelist(buffer, name="stream")
        assert loaded.number_of_edges() == 3
        assert loaded.name == "stream"

    def test_unicode_labels_survive(self, tmp_path):
        graph = DirectedGraph()
        graph.add_edge("Ère post-vérité", "Désinformation")
        path = tmp_path / "unicode.csv"
        write_edgelist(graph, path)
        loaded = read_edgelist(path)
        assert loaded.has_label("Ère post-vérité")
