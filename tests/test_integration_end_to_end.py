"""End-to-end integration tests of the whole platform (Figure 1 lifecycle).

These tests drive the system exactly the way the Web UI does: build a query
set through the gateway, submit it, poll the Status component, and read the
results and logs back from the datastore — covering steps 1-5 of Section III
in one pass, including persistence to disk and concurrent comparisons.
"""

from __future__ import annotations

import concurrent.futures

import pytest

from repro.datasets.catalog import DatasetCatalog
from repro.platform.datastore import DataStore
from repro.platform.gateway import ApiGateway
from repro.platform.tasks import TaskState
from repro.platform.webui import WebUI
from repro.ranking.result import Ranking


@pytest.fixture
def catalog(small_enwiki, small_amazon, small_twitter) -> DatasetCatalog:
    catalog = DatasetCatalog()
    catalog.register_graph("enwiki-2018", small_enwiki, family="wikipedia",
                           description="small synthetic enwiki")
    catalog.register_graph("amazon-copurchase", small_amazon, family="amazon",
                           description="small synthetic amazon")
    catalog.register_graph("twitter-cop27", small_twitter, family="twitter",
                           description="small synthetic twitter")
    return catalog


class TestFullLifecycle:
    def test_five_step_lifecycle(self, catalog, tmp_path):
        """Steps 1-5: build -> schedule -> execute -> store -> display."""
        datastore = DataStore(directory=tmp_path)
        with ApiGateway(catalog=catalog, datastore=datastore, num_workers=2) as gateway:
            # Step 1: the Task Builder assembles the (dataset, algorithm,
            # parameters) triples into a query set with a permalink id.
            query_set = gateway.new_query_set()
            gateway.add_query(query_set, "enwiki-2018", "cyclerank",
                              source="Fake news", parameters={"k": 3, "sigma": "exp"})
            gateway.add_query(query_set, "enwiki-2018", "personalized-pagerank",
                              source="Fake news", parameters={"alpha": 0.3})
            gateway.add_query(query_set, "enwiki-2018", "pagerank",
                              parameters={"alpha": 0.3})
            comparison_id = gateway.submit_comparison(query_set)

            # Step 3: the Status component polls while workers run.
            progress = gateway.wait_for(comparison_id, timeout_seconds=60)
            assert progress.state is TaskState.COMPLETED
            assert progress.completed_queries == 3

            # Step 4: results and logs are in the datastore (and on disk).
            stored = datastore.get_result(comparison_id)
            assert stored["state"] == "completed"
            assert (tmp_path / "results" / f"{comparison_id}.json").exists()
            logs = gateway.get_logs(comparison_id)
            assert any("done" in line for line in logs)

            # Step 5: the API returns the results, the UI displays them.
            table = gateway.get_comparison_table(comparison_id, k=5)
            assert table.rows[0][0] == "Fake news"
            rendered = WebUI(gateway).render_results(comparison_id, k=5)
            assert "Fake news" in rendered

    def test_stored_results_survive_gateway_restart(self, catalog, tmp_path):
        datastore = DataStore(directory=tmp_path)
        with ApiGateway(catalog=catalog, datastore=datastore, num_workers=1) as gateway:
            comparison_id = gateway.run_queries(
                [{"dataset_id": "amazon-copurchase", "algorithm": "cyclerank",
                  "source": "1984", "parameters": {"k": 3}}]
            )
        # A brand-new datastore over the same directory can still serve the
        # permalink, which is exactly what makes comparison ids permalinks.
        fresh_store = DataStore(directory=tmp_path)
        payload = fresh_store.get_result(comparison_id)
        ranking = Ranking.from_dict(payload["rankings"]["0"])
        assert ranking.top_labels(1) == ["1984"]

    def test_concurrent_comparisons_do_not_interfere(self, catalog):
        with ApiGateway(catalog=catalog, num_workers=4) as gateway:
            def submit(reference: str) -> str:
                return gateway.run_queries(
                    [{"dataset_id": "enwiki-2018", "algorithm": "cyclerank",
                      "source": reference, "parameters": {"k": 3}}],
                    synchronous=False,
                )

            references = ["Freddie Mercury", "Pasta", "Fake news"]
            with concurrent.futures.ThreadPoolExecutor(max_workers=3) as pool:
                ids = list(pool.map(submit, references))
            assert len(set(ids)) == 3
            for comparison_id, reference in zip(ids, references):
                gateway.wait_for(comparison_id, timeout_seconds=60)
                ranking = gateway.get_rankings(comparison_id)[0]
                assert ranking.reference == reference
                assert ranking.top_labels(1) == [reference]

    def test_all_seven_paper_algorithms_through_the_platform(self, catalog):
        from repro.algorithms.registry import PAPER_ALGORITHMS, get_algorithm

        with ApiGateway(catalog=catalog, num_workers=2) as gateway:
            queries = []
            for name in PAPER_ALGORITHMS:
                algorithm = get_algorithm(name)
                queries.append(
                    {
                        "dataset_id": "twitter-cop27",
                        "algorithm": name,
                        "source": "@climate_voice" if algorithm.is_personalized else None,
                        "parameters": {},
                    }
                )
            comparison_id = gateway.run_queries(queries)
            rankings = gateway.get_rankings(comparison_id)
            assert len(rankings) == len(PAPER_ALGORITHMS)
            table = gateway.get_comparison_table(comparison_id, k=5)
            assert len(table.columns) == len(PAPER_ALGORITHMS)

    def test_executor_pool_scaling_mid_session(self, catalog):
        with ApiGateway(catalog=catalog, num_workers=1) as gateway:
            first = gateway.run_queries(
                [{"dataset_id": "twitter-cop27", "algorithm": "pagerank"}]
            )
            gateway.executor_pool.scale_to(3)
            second = gateway.run_queries(
                [{"dataset_id": "twitter-cop27", "algorithm": "cheirank"}]
            )
            assert gateway.get_status(first).state is TaskState.COMPLETED
            assert gateway.get_status(second).state is TaskState.COMPLETED

    def test_failed_query_is_reported_not_swallowed(self, catalog):
        with ApiGateway(catalog=catalog, num_workers=1) as gateway:
            comparison_id = gateway.run_queries(
                [{"dataset_id": "enwiki-2018", "algorithm": "cyclerank",
                  "source": "No Such Article", "parameters": {"k": 3}}],
                synchronous=False,
            )
            gateway.scheduler.wait(comparison_id, timeout=60)
            progress = gateway.status.poll_until_done(comparison_id, timeout_seconds=60)
            assert progress.state is TaskState.FAILED
            assert "No Such Article" in (progress.error or "")
            rendered = WebUI(gateway).render_results(comparison_id)
            assert "error" in rendered.lower()
