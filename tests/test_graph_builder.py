"""Unit tests for :mod:`repro.graph.builder`."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graph.builder import BuildReport, GraphBuilder


class TestGraphBuilder:
    def test_basic_build(self):
        builder = GraphBuilder(name="toy")
        builder.add_edge("A", "B")
        builder.add_edge("B", "A")
        graph = builder.build()
        assert graph.name == "toy"
        assert graph.number_of_nodes() == 2
        assert graph.number_of_edges() == 2

    def test_report_counts_nodes_and_edges(self):
        builder = GraphBuilder()
        builder.add_edge("A", "B")
        builder.add_edge("A", "C")
        report = builder.report
        assert report.nodes_added == 3
        assert report.edges_added == 2

    def test_duplicate_edges_counted(self):
        builder = GraphBuilder()
        builder.add_edge("A", "B")
        builder.add_edge("A", "B")
        assert builder.report.duplicate_edges_skipped == 1
        assert builder.build().number_of_edges() == 1

    def test_self_loops_skipped_by_default(self):
        builder = GraphBuilder()
        builder.add_edge("A", "A")
        assert builder.report.self_loops_skipped == 1
        assert builder.build().number_of_edges() == 0

    def test_self_loops_allowed_when_requested(self):
        builder = GraphBuilder(allow_self_loops=True)
        builder.add_edge("A", "A")
        graph = builder.build()
        assert graph.number_of_edges() == 1
        assert graph.has_self_loop("A")

    def test_add_edges_from(self):
        builder = GraphBuilder()
        builder.add_edges_from([("A", "B"), ("B", "C")])
        assert builder.number_of_edges() == 2
        assert builder.number_of_nodes() == 3

    def test_explicit_add_node(self):
        builder = GraphBuilder()
        node = builder.add_node("A")
        assert node == 0
        assert builder.add_node("A") == 0
        assert builder.report.nodes_added == 1

    def test_skip_line_and_warnings(self):
        builder = GraphBuilder()
        builder.skip_line()
        builder.skip_line("bad line 3")
        builder.warn("something odd")
        report = builder.report
        assert report.lines_skipped == 2
        assert "bad line 3" in report.warnings
        assert "something odd" in report.warnings

    def test_build_can_only_be_called_once(self):
        builder = GraphBuilder()
        builder.add_edge("A", "B")
        builder.build()
        with pytest.raises(GraphError):
            builder.build()
        with pytest.raises(GraphError):
            builder.add_edge("B", "C")


class TestBuildReport:
    def test_merge_sums_fields(self):
        first = BuildReport(nodes_added=2, edges_added=3, warnings=["a"])
        second = BuildReport(nodes_added=1, duplicate_edges_skipped=4, warnings=["b"])
        merged = first.merge(second)
        assert merged.nodes_added == 3
        assert merged.edges_added == 3
        assert merged.duplicate_edges_skipped == 4
        assert merged.warnings == ["a", "b"]
