"""Tests for the observability layer (:mod:`repro.platform.telemetry`).

Covers the metrics registry (counters/gauges/histograms and the Prometheus
text exposition), span propagation through the thread-local seam, the
end-to-end trace a completed comparison reconstructs (gateway submit →
scheduler dispatch → batch execute → storage writes), the ``/metrics`` and
``/api/comparisons/<id>/trace`` REST endpoints, the ``telemetry`` stats
section, and a failover read's per-replica attempts under the fault
harness.  CI runs this file on all three storage topologies (single store,
4-shard, replicated — see ``conftest._sharded_default_datastore``).
"""

from __future__ import annotations

import json
import re
import urllib.error
import urllib.request

import pytest

from faults import FlakyStore

from repro.datasets.catalog import DatasetCatalog
from repro.exceptions import TaskNotFoundError
from repro.graph.generators import cycle_graph, star_graph
from repro.platform.datastore import DataStore
from repro.platform.gateway import ApiGateway
from repro.platform.restapi import RestApiServer
from repro.platform.telemetry import (
    MetricsRegistry,
    Tracer,
    add_span_event,
    child_span,
    current_span,
    trace_scope,
)
from repro.platform.webui import WebUI


def _catalog() -> DatasetCatalog:
    catalog = DatasetCatalog()
    catalog.register_graph(
        "tele-cycle", cycle_graph(8), family="synthetic",
        description="telemetry test cycle",
    )
    catalog.register_graph(
        "tele-star", star_graph(6, reciprocal=True), family="synthetic",
        description="telemetry test star",
    )
    return catalog


def _pagerank_query(alpha: float = 0.85, dataset: str = "tele-cycle") -> dict:
    return {
        "dataset_id": dataset,
        "algorithm": "pagerank",
        "source": None,
        "parameters": {"alpha": alpha},
    }


@pytest.fixture
def gateway():
    gw = ApiGateway(catalog=_catalog(), num_workers=2)
    yield gw
    gw.shutdown()


# --------------------------------------------------------------------------- #
# metrics registry
# --------------------------------------------------------------------------- #
class TestMetricsRegistry:
    def test_counters_accumulate_per_label_set(self):
        registry = MetricsRegistry()
        registry.counter_inc("requests", method="GET")
        registry.counter_inc("requests", method="GET")
        registry.counter_inc("requests", method="POST")
        snapshot = registry.snapshot()
        assert snapshot["requests"]['{method="GET"}'] == 2.0
        assert snapshot["requests"]['{method="POST"}'] == 1.0

    def test_unlabelled_scalar_snapshots_as_bare_value(self):
        registry = MetricsRegistry()
        registry.counter_inc("total", amount=3)
        assert registry.snapshot()["total"] == 3.0

    def test_gauge_set_overwrites(self):
        registry = MetricsRegistry()
        registry.gauge_set("depth", 4)
        registry.gauge_set("depth", 2)
        assert registry.snapshot()["depth"] == 2.0

    def test_histogram_percentiles_bracket_the_observations(self):
        registry = MetricsRegistry()
        for value in [1.0] * 90 + [400.0] * 10:
            registry.observe("latency_ms", value)
        summary = registry.snapshot()["latency_ms"]["_"]
        assert summary["count"] == 100
        assert summary["p50"] <= 25.0  # the 1ms mass lands in low buckets
        assert summary["p99"] >= 250.0  # the 400ms tail lands high

    def test_reusing_a_name_with_a_different_kind_raises(self):
        registry = MetricsRegistry()
        registry.counter_inc("thing")
        with pytest.raises(ValueError):
            registry.gauge_set("thing", 1)

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter_inc("requests")
        registry.gauge_set("depth", 1)
        registry.observe("latency_ms", 5.0)
        assert registry.snapshot() == {}
        assert registry.render_prometheus() == ""

    def test_render_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter_inc("odd", label='va"l\\ue')
        text = registry.render_prometheus()
        assert 'label="va\\"l\\\\ue"' in text

    def test_render_emits_help_and_type_once_per_metric(self):
        registry = MetricsRegistry()
        registry.counter_inc("requests", help="Requests served", method="GET")
        registry.counter_inc("requests", method="POST")
        text = registry.render_prometheus()
        assert text.count("# TYPE repro_requests counter") == 1
        assert text.count("# HELP repro_requests") == 1

    def test_callback_gauges_are_sampled_at_scrape_time(self):
        registry = MetricsRegistry()
        box = {"value": 1.0}
        registry.register_callback("box_level", lambda: box["value"])
        assert "repro_box_level 1" in registry.render_prometheus()
        box["value"] = 7.0
        assert "repro_box_level 7" in registry.render_prometheus()


# --------------------------------------------------------------------------- #
# span propagation
# --------------------------------------------------------------------------- #
class TestSpanPropagation:
    def test_child_span_is_a_noop_without_an_ambient_parent(self):
        assert current_span() is None
        with child_span("orphan") as span:
            assert span.recording is False
        add_span_event("ignored")  # must not raise

    def test_child_spans_nest_and_restore_the_ambient_parent(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry)
        root = tracer.start_trace("root")
        with trace_scope(root):
            with child_span("outer") as outer:
                assert current_span() is outer
                with child_span("inner") as inner:
                    assert inner.parent_id == outer.span_id
                assert current_span() is outer
            assert current_span() is root
        root.finish()
        tree = tracer.trace_tree(root.trace_id)
        names = {span["name"] for span in tree["roots"][0]["children"]}
        assert "outer" in names

    def test_escaping_exception_is_annotated_and_reraised(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry)
        root = tracer.start_trace("root")
        with trace_scope(root):
            with pytest.raises(ValueError):
                with child_span("doomed"):
                    raise ValueError("boom")
        root.finish()
        tree = tracer.trace_tree(root.trace_id)
        doomed = next(
            span for span in tree["roots"][0]["children"] if span["name"] == "doomed"
        )
        assert doomed["annotations"]["error"] == "ValueError"

    def test_slow_spans_land_in_the_bounded_ring(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry, slow_threshold_ms=0.000001)
        span = tracer.start_trace("slowpoke")
        span.finish()
        slow = tracer.stats()["slow_spans"]
        assert any(entry["span"] == "slowpoke" for entry in slow)

    def test_trace_store_is_bounded_lru(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry, max_traces=2)
        ids = []
        for _ in range(3):
            span = tracer.start_trace("t")
            span.finish()
            ids.append(span.trace_id)
        assert tracer.trace_tree(ids[0]) is None  # evicted
        assert tracer.trace_tree(ids[-1]) is not None


# --------------------------------------------------------------------------- #
# the end-to-end comparison trace
# --------------------------------------------------------------------------- #
class TestComparisonTrace:
    def test_completed_job_reconstructs_the_full_span_tree(self, gateway):
        cid = gateway.run_queries([_pagerank_query()], synchronous=True)
        envelope = gateway.get_trace(cid)
        assert envelope["state"] == "done"
        assert envelope["trace_id"]
        tree = envelope["trace"]
        assert tree is not None
        root = tree["roots"][0]
        assert root["name"] == "comparison"
        assert root["annotations"]["state"] == "done"
        assert root["duration_ms"] is not None

        def walk(node):
            yield node
            for child in node["children"]:
                yield from walk(child)

        spans = list(walk(root))
        names = {span["name"] for span in spans}
        assert {
            "comparison", "group_dispatch", "dataset_fetch",
            "cache_lookup", "batch_execute", "store_results",
        } <= names
        # Parent/child shape: dispatch under the root, execution under
        # dispatch — the gateway submit → scheduler → executor chain.
        dispatch = next(s for s in root["children"] if s["name"] == "group_dispatch")
        dispatch_children = {s["name"] for s in dispatch["children"]}
        assert "batch_execute" in dispatch_children
        assert "dataset_fetch" in dispatch_children

    def test_async_submission_traces_identically(self, gateway):
        cid = gateway.run_queries([_pagerank_query(0.5)], synchronous=False)
        gateway.wait_for(cid, timeout_seconds=30)
        envelope = gateway.get_trace(cid)
        tree = envelope["trace"]
        assert tree is not None
        names = {span["name"] for span in _flatten(tree["roots"])}
        assert "group_dispatch" in names
        assert "store_results" in names

    def test_events_carry_the_trace_id(self, gateway):
        cid = gateway.run_queries([_pagerank_query(0.6)], synchronous=True)
        trace_id = gateway.get_trace(cid)["trace_id"]
        events = gateway.get_events(cid)
        assert events, "expected at least submitted/task_done events"
        assert all(event["trace_id"] == trace_id for event in events)

    def test_unknown_comparison_raises(self, gateway):
        with pytest.raises(TaskNotFoundError):
            gateway.get_trace("no-such-comparison")

    def test_waterfall_renders_the_span_tree(self, gateway):
        cid = gateway.run_queries([_pagerank_query(0.7)], synchronous=True)
        text = WebUI(gateway).render_trace_waterfall(cid)
        assert f"Trace for comparison {cid}" in text
        assert "comparison" in text
        assert "group_dispatch" in text
        assert "ms" in text

    def test_disabled_telemetry_records_no_trace(self):
        gw = ApiGateway(catalog=_catalog(), telemetry_enabled=False)
        try:
            cid = gw.run_queries([_pagerank_query()], synchronous=True)
            envelope = gw.get_trace(cid)
            assert envelope["trace_id"] is None
            assert envelope["trace"] is None
            assert gw.render_metrics() == ""
        finally:
            gw.shutdown()


def _flatten(nodes):
    for node in nodes:
        yield node
        yield from _flatten(node["children"])


# --------------------------------------------------------------------------- #
# the telemetry stats section
# --------------------------------------------------------------------------- #
class TestTelemetryStatsSection:
    def test_platform_stats_expose_tracer_and_metrics(self, gateway):
        gateway.run_queries([_pagerank_query()], synchronous=True)
        stats = gateway.get_platform_stats()
        telemetry = stats["telemetry"]
        assert telemetry["tracer"]["enabled"] is True
        assert telemetry["tracer"]["spans_collected"] > 0
        assert telemetry["tracer"]["traces_tracked"] >= 1
        assert "span_duration_ms" in telemetry["metrics"]
        assert isinstance(telemetry["tracer"]["slow_spans"], list)

    def test_span_duration_summaries_carry_percentiles(self, gateway):
        gateway.run_queries([_pagerank_query()], synchronous=True)
        durations = gateway.get_platform_stats()["telemetry"]["metrics"][
            "span_duration_ms"
        ]
        comparison = durations['{span="comparison"}']
        assert comparison["count"] >= 1
        assert comparison["p50"] <= comparison["p95"] <= comparison["p99"]


# --------------------------------------------------------------------------- #
# the Prometheus exposition over REST
# --------------------------------------------------------------------------- #
_SAMPLE_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s(-?(?:[0-9.eE+-]+|\+Inf|NaN))$"
)


def _parse_exposition(text: str):
    """Validate and parse a Prometheus text exposition.

    Returns ``(types, samples)`` where ``types`` maps metric name to its
    declared kind and ``samples`` maps ``(name, labels)`` to the value.
    Raises ``AssertionError`` on malformed lines, duplicate samples or
    duplicate ``# TYPE`` declarations.
    """
    types: dict = {}
    samples: dict = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert name not in types, f"duplicate TYPE for {name}"
            assert kind in ("counter", "gauge", "histogram")
            types[name] = kind
            continue
        match = _SAMPLE_LINE.match(line)
        assert match, f"malformed exposition line: {line!r}"
        name, labels, value = match.group(1), match.group(2) or "", match.group(3)
        assert (name, labels) not in samples, f"duplicate sample {name}{labels}"
        samples[(name, labels)] = float(value)
    for name, labels in samples:
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        assert name in types or base in types, f"sample {name} has no TYPE"
    return types, samples


@pytest.fixture(scope="module")
def rest_server():
    gateway = ApiGateway(catalog=_catalog(), num_workers=2)
    api = RestApiServer(gateway)
    api.start()
    yield api
    api.stop()
    gateway.shutdown()


def _get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=15) as response:
        return response.status, response.headers, response.read().decode("utf-8")


def _post_json(server, path, payload):
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


class TestMetricsEndpoint:
    def test_exposition_is_valid_and_counters_are_monotone(self, rest_server):
        status, created = _post_json(
            rest_server, "/api/comparisons",
            {"queries": [_pagerank_query(0.81)], "synchronous": True},
        )
        assert status == 201

        status, headers, first = _get(rest_server, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        types_first, samples_first = _parse_exposition(first)
        assert types_first["repro_submissions_total"] == "counter"
        assert types_first["repro_span_duration_ms"] == "histogram"
        assert types_first["repro_http_requests_total"] == "counter"

        _post_json(
            rest_server, "/api/comparisons",
            {"queries": [_pagerank_query(0.82)], "synchronous": True},
        )
        _, _, second = _get(rest_server, "/metrics")
        types_second, samples_second = _parse_exposition(second)
        counters = {
            name for name, kind in types_second.items() if kind == "counter"
        }
        for (name, labels), value in samples_first.items():
            base = re.sub(r"_(bucket|sum|count)$", "", name)
            if name in counters or types_second.get(base) == "histogram":
                assert samples_second.get((name, labels), 0.0) >= value, (
                    f"{name}{labels} went backwards across scrapes"
                )
        assert (
            samples_second[("repro_submissions_total", "")]
            > samples_first[("repro_submissions_total", "")]
        )

    def test_runtime_gauges_mirror_platform_counters(self, rest_server):
        _post_json(
            rest_server, "/api/comparisons",
            {"queries": [_pagerank_query(0.83)], "synchronous": True},
        )
        _, _, text = _get(rest_server, "/metrics")
        types, samples = _parse_exposition(text)
        assert types["repro_batches_dispatched"] == "gauge"
        assert any(name == "repro_jobs" for name, _ in samples)

    def test_trace_endpoint_returns_the_span_tree(self, rest_server):
        status, created = _post_json(
            rest_server, "/api/comparisons",
            {"queries": [_pagerank_query(0.84)], "synchronous": True},
        )
        comparison_id = created["comparison_id"]
        status, _, body = _get(
            rest_server, f"/api/comparisons/{comparison_id}/trace"
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["comparison_id"] == comparison_id
        assert payload["trace_id"]
        names = {span["name"] for span in _flatten(payload["trace"]["roots"])}
        assert "comparison" in names
        assert "group_dispatch" in names

    def test_trace_endpoint_404s_on_unknown_comparison(self, rest_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(rest_server, "/api/comparisons/not-a-real-id/trace")
        assert excinfo.value.code == 404

    def test_stats_endpoint_includes_the_telemetry_section(self, rest_server):
        status, _, body = _get(rest_server, "/api/stats")
        assert status == 200
        payload = json.loads(body)
        assert payload["telemetry"]["tracer"]["enabled"] is True


# --------------------------------------------------------------------------- #
# failover reads under the fault harness
# --------------------------------------------------------------------------- #
class TestFailoverTrace:
    def test_failover_read_traces_per_replica_attempts(self):
        backends = [FlakyStore(DataStore()) for _ in range(4)]
        gw = ApiGateway(catalog=_catalog(), shards=backends, replicas=2)
        try:
            # First comparison materialises the dataset onto its replicas.
            gw.run_queries([_pagerank_query(0.5, "tele-star")], synchronous=True)
            store = gw.datastore
            primary = store.replica_shards_for("tele-star")[0]
            flaky = backends[int(primary.split("-")[1])]
            # Outlast the in-place retry attempts so the read fails over to
            # the next replica (mirrors TestFailoverReads in the replication
            # suite, but asserting on the recorded trace).
            flaky.fail_on(
                "fetch_compiled_with_version",
                times=store.retry_policy.max_attempts,
            )
            cid = gw.run_queries(
                [_pagerank_query(0.51, "tele-star")], synchronous=True
            )
            assert store.replication_stats()["failover_reads"] >= 1
            tree = gw.get_trace(cid)["trace"]
            assert tree is not None
            reads = [
                span for span in _flatten(tree["roots"])
                if span["name"] == "storage_read"
            ]
            failovers = [
                span for span in reads if span["annotations"].get("failover")
            ]
            assert failovers, "no storage_read span recorded a failover"
            attempts = [
                child for child in failovers[0]["children"]
                if child["name"] == "replica_attempt"
            ]
            assert len(attempts) >= 2, (
                "a failover read must record one replica_attempt per replica"
            )
            shards_tried = {span["annotations"]["shard"] for span in attempts}
            assert len(shards_tried) >= 2
            # The exhausted in-place retries show up as retry events on the
            # failed attempt's span.
            event_names = {
                event["name"]
                for span in attempts
                for event in span["events"]
            }
            assert "retry" in event_names
        finally:
            gw.shutdown()
