"""Unit tests for :mod:`repro.io.jsongraph`."""

from __future__ import annotations

import io
import json

import pytest

from repro.exceptions import GraphFormatError
from repro.io.jsongraph import (
    format_json_graph,
    parse_json_graph,
    read_json_graph,
    write_json_graph,
)


class TestParsing:
    def test_canonical_document(self):
        document = {
            "directed": True,
            "name": "toy",
            "nodes": [{"id": "A"}, {"id": "B"}],
            "links": [{"source": "A", "target": "B"}],
        }
        graph, _ = parse_json_graph(document)
        assert graph.name == "toy"
        assert graph.number_of_nodes() == 2
        assert graph.has_edge("A", "B")

    def test_parse_from_string(self):
        text = json.dumps({"nodes": ["A", "B"], "links": [{"source": "A", "target": "B"}]})
        graph, _ = parse_json_graph(text)
        assert graph.number_of_edges() == 1

    def test_nodes_as_strings_numbers_and_objects(self):
        document = {
            "nodes": ["A", 7, {"label": "C"}, {"name": "D"}],
            "links": [],
        }
        graph, _ = parse_json_graph(document)
        assert graph.has_label("A")
        assert graph.has_label("7")
        assert graph.has_label("C")
        assert graph.has_label("D")

    def test_integer_endpoints_index_into_nodes(self):
        document = {"nodes": ["A", "B", "C"], "links": [{"source": 0, "target": 2}]}
        graph, _ = parse_json_graph(document)
        assert graph.has_edge("A", "C")

    def test_edges_key_accepted(self):
        document = {"nodes": ["A", "B"], "edges": [{"source": "A", "target": "B"}]}
        graph, _ = parse_json_graph(document)
        assert graph.number_of_edges() == 1

    def test_links_may_create_nodes_by_label(self):
        document = {"nodes": [], "links": [{"source": "A", "target": "B"}]}
        graph, _ = parse_json_graph(document)
        assert graph.number_of_nodes() == 2

    def test_self_loops_dropped_by_default(self):
        document = {"nodes": ["A"], "links": [{"source": "A", "target": "A"}]}
        graph, builder = parse_json_graph(document)
        assert graph.number_of_edges() == 0
        assert builder.report.self_loops_skipped == 1

    def test_invalid_json_fails(self):
        with pytest.raises(GraphFormatError):
            parse_json_graph("{not json")

    def test_non_object_document_fails(self):
        with pytest.raises(GraphFormatError):
            parse_json_graph("[1, 2, 3]")

    def test_undirected_document_rejected(self):
        with pytest.raises(GraphFormatError):
            parse_json_graph({"directed": False, "nodes": [], "links": []})

    def test_bad_nodes_container_fails(self):
        with pytest.raises(GraphFormatError):
            parse_json_graph({"nodes": "A,B", "links": []})

    def test_bad_links_container_fails(self):
        with pytest.raises(GraphFormatError):
            parse_json_graph({"nodes": [], "links": {"source": "A"}})

    def test_node_object_without_identifier_fails(self):
        with pytest.raises(GraphFormatError):
            parse_json_graph({"nodes": [{"weight": 3}], "links": []})

    def test_link_without_endpoints_fails(self):
        with pytest.raises(GraphFormatError):
            parse_json_graph({"nodes": ["A"], "links": [{"source": "A"}]})

    def test_link_index_out_of_range_fails(self):
        with pytest.raises(GraphFormatError):
            parse_json_graph({"nodes": ["A"], "links": [{"source": 0, "target": 5}]})

    def test_boolean_endpoint_fails(self):
        with pytest.raises(GraphFormatError):
            parse_json_graph({"nodes": ["A"], "links": [{"source": True, "target": 0}]})


class TestRoundTrip:
    def test_format_and_reparse(self, two_triangles):
        text = format_json_graph(two_triangles)
        reparsed, _ = parse_json_graph(text)
        assert reparsed.number_of_edges() == two_triangles.number_of_edges()
        assert sorted(reparsed.labels()) == sorted(two_triangles.labels())

    def test_file_round_trip(self, tmp_path, mixed_graph):
        path = tmp_path / "graph.json"
        write_json_graph(mixed_graph, path)
        loaded = read_json_graph(path)
        assert loaded.number_of_edges() == mixed_graph.number_of_edges()
        assert loaded.name == "graph"

    def test_stream_round_trip(self, triangle):
        buffer = io.StringIO()
        write_json_graph(triangle, buffer)
        buffer.seek(0)
        loaded = read_json_graph(buffer, name="stream")
        assert loaded.number_of_edges() == 3
        assert loaded.name == "stream"

    def test_canonical_output_is_valid_json_with_expected_keys(self, triangle):
        document = json.loads(format_json_graph(triangle))
        assert document["directed"] is True
        assert {entry["id"] for entry in document["nodes"]} == {"A", "B", "C"}
        assert len(document["links"]) == 3

    def test_unicode_labels_survive(self, tmp_path):
        from repro.graph.digraph import DirectedGraph

        graph = DirectedGraph()
        graph.add_edge("Ère post-vérité", "Désinformation")
        path = tmp_path / "unicode.json"
        write_json_graph(graph, path)
        assert read_json_graph(path).has_label("Ère post-vérité")
