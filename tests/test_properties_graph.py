"""Hypothesis property tests for the graph substrate and file formats."""

from __future__ import annotations

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.components import condensation, strongly_connected_components
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DirectedGraph
from repro.graph.views import simplified, transpose
from repro.io.asd import parse_asd, format_asd
from repro.io.edgelist import format_edgelist, parse_edgelist
from repro.io.pajek import format_pajek, parse_pajek


@st.composite
def directed_graphs(draw, max_nodes: int = 12, max_edges: int = 40) -> DirectedGraph:
    """Strategy: a small directed graph with labelled nodes and no self loops."""
    num_nodes = draw(st.integers(min_value=1, max_value=max_nodes))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=num_nodes - 1),
                st.integers(min_value=0, max_value=num_nodes - 1),
            ).filter(lambda pair: pair[0] != pair[1]),
            max_size=max_edges,
        )
    )
    graph = DirectedGraph(name="hypothesis")
    for node in range(num_nodes):
        graph.add_node(f"node-{node}")
    graph.add_edges_from(edges)
    return graph


class TestGraphInvariants:
    @given(directed_graphs())
    @settings(max_examples=60, deadline=None)
    def test_transpose_is_involution(self, graph):
        assert transpose(transpose(graph)) == graph

    @given(directed_graphs())
    @settings(max_examples=60, deadline=None)
    def test_transpose_swaps_degree_sequences(self, graph):
        reversed_graph = transpose(graph)
        assert graph.in_degrees() == reversed_graph.out_degrees()
        assert graph.out_degrees() == reversed_graph.in_degrees()

    @given(directed_graphs())
    @settings(max_examples=60, deadline=None)
    def test_copy_equals_original(self, graph):
        assert graph.copy() == graph

    @given(directed_graphs())
    @settings(max_examples=60, deadline=None)
    def test_degree_sums_equal_edge_count(self, graph):
        assert sum(graph.out_degrees()) == graph.number_of_edges()
        assert sum(graph.in_degrees()) == graph.number_of_edges()

    @given(directed_graphs())
    @settings(max_examples=60, deadline=None)
    def test_simplified_is_idempotent(self, graph):
        once = simplified(graph)
        assert simplified(once) == once


class TestComponentInvariants:
    @given(directed_graphs())
    @settings(max_examples=60, deadline=None)
    def test_sccs_partition_the_nodes(self, graph):
        components = strongly_connected_components(graph)
        all_nodes = sorted(node for component in components for node in component)
        assert all_nodes == list(graph.nodes())

    @given(directed_graphs())
    @settings(max_examples=40, deadline=None)
    def test_condensation_is_acyclic(self, graph):
        dag, membership = condensation(graph)
        assert all(len(c) == 1 for c in strongly_connected_components(dag))
        assert set(membership) == set(graph.nodes())


class TestCsrInvariants:
    @given(directed_graphs())
    @settings(max_examples=60, deadline=None)
    def test_csr_round_trip(self, graph):
        assert CSRGraph.from_directed_graph(graph).to_directed_graph() == graph

    @given(directed_graphs())
    @settings(max_examples=60, deadline=None)
    def test_csr_preserves_counts_and_degrees(self, graph):
        csr = graph.to_csr()
        assert csr.number_of_nodes() == graph.number_of_nodes()
        assert csr.number_of_edges() == graph.number_of_edges()
        assert csr.out_degrees().tolist() == graph.out_degrees()
        assert csr.in_degrees().tolist() == graph.in_degrees()

    @given(directed_graphs())
    @settings(max_examples=40, deadline=None)
    def test_csr_transpose_matches_graph_transpose(self, graph):
        assert graph.to_csr().transpose() == graph.transpose().to_csr()


class TestFormatRoundTrips:
    @given(directed_graphs())
    @settings(max_examples=40, deadline=None)
    def test_edgelist_round_trip(self, graph):
        # The edgelist format cannot represent isolated nodes, so only the
        # labels of nodes with at least one edge are expected to survive.
        text = format_edgelist(graph)
        reparsed, _ = parse_edgelist(io.StringIO(text))
        connected_labels = sorted(
            graph.label_of(node)
            for node in graph.nodes()
            if graph.out_degree(node) + graph.in_degree(node) > 0
        )
        assert sorted(reparsed.labels()) == connected_labels
        assert reparsed.number_of_edges() == graph.number_of_edges()

    @given(directed_graphs())
    @settings(max_examples=40, deadline=None)
    def test_pajek_round_trip(self, graph):
        text = format_pajek(graph)
        reparsed, _ = parse_pajek(text.splitlines())
        assert reparsed.number_of_nodes() == graph.number_of_nodes()
        assert reparsed.number_of_edges() == graph.number_of_edges()
        assert sorted(reparsed.labels()) == sorted(graph.labels())

    @given(directed_graphs())
    @settings(max_examples=40, deadline=None)
    def test_asd_round_trip(self, graph):
        text = format_asd(graph)
        reparsed, _ = parse_asd(text.splitlines())
        assert reparsed.number_of_nodes() == graph.number_of_nodes()
        assert reparsed.number_of_edges() == graph.number_of_edges()
        assert sorted(reparsed.labels()) == sorted(graph.labels())

    @given(directed_graphs())
    @settings(max_examples=40, deadline=None)
    def test_edge_sets_preserved_by_every_format(self, graph):
        original_edges = {
            (graph.label_of(edge.source), graph.label_of(edge.target))
            for edge in graph.edges()
        }
        for text, parser in [
            (format_edgelist(graph), lambda t: parse_edgelist(io.StringIO(t))[0]),
            (format_pajek(graph), lambda t: parse_pajek(t.splitlines())[0]),
            (format_asd(graph), lambda t: parse_asd(t.splitlines())[0]),
        ]:
            reparsed = parser(text)
            reparsed_edges = {
                (reparsed.label_of(edge.source), reparsed.label_of(edge.target))
                for edge in reparsed.edges()
            }
            assert reparsed_edges == original_edges
