"""Unit tests for :mod:`repro.cli`.

The CLI commands that need a full-size catalog dataset would be slow to run
repeatedly, so these tests register a small uploaded dataset through a
monkeypatched default catalog where appropriate and otherwise exercise the
commands against the smallest catalog datasets.
"""

from __future__ import annotations

import os

import pytest

from repro.cli import DEFAULT_COMPARISON_ALGORITHMS, build_parser, main
from repro.datasets.catalog import DatasetCatalog


@pytest.fixture
def tiny_catalog(small_enwiki, small_amazon, two_triangles, monkeypatch) -> DatasetCatalog:
    """Patch the gateway's default catalog with a small, fast one."""
    from repro.datasets.wikipedia import generate_wikilink_graph

    catalog = DatasetCatalog()
    catalog.register_graph("enwiki-2018", small_enwiki, family="wikipedia",
                           description="small synthetic enwiki")
    catalog.register_graph(
        "dewiki-2018",
        generate_wikilink_graph("de", "2018-03-01", num_filler_articles=40, seed=3),
        family="wikipedia",
        description="small synthetic dewiki",
    )
    catalog.register_graph("amazon-copurchase", small_amazon, family="amazon",
                           description="small synthetic amazon")
    catalog.register_graph("toy", two_triangles, family="synthetic", description="toy")
    monkeypatch.setattr("repro.platform.gateway.default_catalog", lambda: catalog)
    return catalog


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_default_comparison_algorithms_match_paper_tables(self):
        assert DEFAULT_COMPARISON_ALGORITHMS == (
            "pagerank", "cyclerank", "personalized-pagerank"
        )

    def test_run_command_parsing(self):
        arguments = build_parser().parse_args(
            ["run", "enwiki-2018", "cyclerank", "--source", "Pasta", "--param", "k=3"]
        )
        assert arguments.command == "run"
        assert arguments.param == ["k=3"]


class TestCommands:
    def test_datasets_command(self, tiny_catalog, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "enwiki-2018" in output
        assert "amazon-copurchase" in output

    def test_datasets_command_family_filter(self, tiny_catalog, capsys):
        assert main(["datasets", "--family", "amazon"]) == 0
        output = capsys.readouterr().out
        assert "amazon-copurchase" in output
        assert "enwiki-2018" not in output

    def test_algorithms_command(self, tiny_catalog, capsys):
        assert main(["algorithms"]) == 0
        output = capsys.readouterr().out
        assert "Cyclerank" in output
        assert "Pers. PageRank" in output

    def test_summary_command(self, tiny_catalog, capsys):
        assert main(["summary", "toy"]) == 0
        output = capsys.readouterr().out
        assert "num_nodes" in output
        assert "reciprocity" in output

    def test_run_command(self, tiny_catalog, capsys):
        exit_code = main(
            ["run", "toy", "cyclerank", "--source", "R", "--param", "k=3", "--top", "3",
             "--scores"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "CycleRank" in output
        assert "R" in output

    def test_run_command_unknown_dataset_reports_error(self, tiny_catalog, capsys):
        exit_code = main(["run", "no-such-dataset", "pagerank"])
        assert exit_code == 1
        assert "error" in capsys.readouterr().err

    def test_run_command_bad_param_format_exits(self, tiny_catalog):
        with pytest.raises(SystemExit):
            main(["run", "toy", "cyclerank", "--source", "R", "--param", "k3"])

    def test_compare_command(self, tiny_catalog, capsys):
        exit_code = main(
            ["compare", "enwiki-2018", "--source", "Freddie Mercury", "--top", "5", "--logs"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Cyclerank" in output
        assert "PageRank" in output
        assert "Freddie Mercury" in output
        assert "[executor" in output or "scheduler" in output

    def test_cross_language_command(self, tiny_catalog, capsys):
        exit_code = main(
            ["cross-language", "--languages", "en", "de", "--snapshot-year", "2018",
             "--top", "3"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Fake news (en)" in output
        assert "Fake News (de)" in output

    def test_cross_language_skips_unknown_language(self, tiny_catalog, capsys):
        exit_code = main(
            ["cross-language", "--languages", "xx", "en", "--snapshot-year", "2018"]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "skipping unknown language" in captured.err


class TestStatsFlag:
    def test_run_command_prints_stats(self, tiny_catalog, capsys):
        exit_code = main(["run", "toy", "cyclerank", "--source", "R", "--stats"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "cache:" in output
        assert "batches:" in output
        assert "misses" in output

    def test_stats_include_overload_and_telemetry_sections(self, tiny_catalog, capsys):
        exit_code = main(["run", "toy", "cyclerank", "--source", "R", "--stats"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "admission: disabled" in output
        assert "deadlines:" in output
        assert "telemetry:" in output
        assert "span comparison:" in output
        assert "p95" in output

    def test_compare_command_prints_stats(self, tiny_catalog, capsys):
        exit_code = main(
            ["compare", "toy", "--source", "R", "--algorithms",
             "personalized-pagerank", "--stats"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "cache:" in output
        assert "1 dispatched" in output or "dispatched" in output

    def test_cache_stats_is_a_deprecated_alias(self, tiny_catalog, capsys):
        exit_code = main(
            ["run", "toy", "cyclerank", "--source", "R", "--cache-stats"]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "cache:" in captured.out
        assert "telemetry:" in captured.out
        assert "--cache-stats is deprecated" in captured.err

    def test_stats_are_omitted_without_the_flag(self, tiny_catalog, capsys):
        assert main(["run", "toy", "cyclerank", "--source", "R"]) == 0
        output = capsys.readouterr().out
        assert "cache:" not in output
        assert "telemetry:" not in output


class TestTraceFlag:
    def test_run_command_prints_the_span_waterfall(self, tiny_catalog, capsys):
        exit_code = main(["run", "toy", "cyclerank", "--source", "R", "--trace"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Trace for comparison" in output
        assert "trace_id:" in output
        assert "comparison" in output
        assert "group_dispatch" in output
        assert "batch_execute" in output

    def test_compare_command_prints_the_span_waterfall(self, tiny_catalog, capsys):
        exit_code = main(
            ["compare", "toy", "--source", "R", "--algorithms",
             "personalized-pagerank", "--trace"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Trace for comparison" in output
        assert "store_results" in output

    def test_trace_is_omitted_without_the_flag(self, tiny_catalog, capsys):
        assert main(["run", "toy", "cyclerank", "--source", "R"]) == 0
        assert "Trace for comparison" not in capsys.readouterr().out


class TestShardsFlag:
    def test_run_command_on_a_sharded_store(self, tiny_catalog, capsys):
        exit_code = main(
            ["run", "toy", "cyclerank", "--source", "R", "--shards", "3",
             "--cache-stats"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "CycleRank" in output
        assert "shards: 3 on the ring" in output
        assert "shard-0" in output

    def test_compare_command_on_a_sharded_store(self, tiny_catalog, capsys):
        exit_code = main(
            ["compare", "toy", "--source", "R", "--algorithms",
             "personalized-pagerank", "--shards", "2", "--cache-stats"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Pers. PageRank" in output
        assert "shards: 2 on the ring" in output

    @pytest.mark.skipif(
        bool(int(os.environ.get("REPRO_TEST_SHARDS", "0") or 0))
        or bool(int(os.environ.get("REPRO_TEST_REPLICAS", "0") or 0)),
        reason="the scaled-topology runs make every default gateway sharded",
    )
    def test_shard_line_is_omitted_on_a_single_store(self, tiny_catalog, capsys):
        assert main(["run", "toy", "cyclerank", "--source", "R", "--cache-stats"]) == 0
        assert "shards:" not in capsys.readouterr().out

    def test_non_positive_shards_is_rejected(self, tiny_catalog, capsys):
        assert main(["run", "toy", "cyclerank", "--source", "R", "--shards", "0"]) == 2
        assert "--shards" in capsys.readouterr().err


class TestReplicasFlag:
    def test_run_command_on_a_replicated_store(self, tiny_catalog, capsys, tmp_path):
        exit_code = main(
            ["run", "toy", "cyclerank", "--source", "R", "--shards", "3",
             "--replicas", "2", "--spill-dir", str(tmp_path), "--cache-stats"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "CycleRank" in output
        assert "shards: 3 on the ring" in output
        assert "replication: R=2 (quorum 2)" in output
        assert "spill: 0 dataset(s) on the file tier" in output

    def test_replicas_without_shards_builds_a_default_ring(self, tiny_catalog, capsys):
        exit_code = main(
            ["run", "toy", "cyclerank", "--source", "R", "--replicas", "2",
             "--cache-stats"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "shards: 3 on the ring" in output  # replicas + 1 backends
        assert "replication: R=2" in output
        assert "spill:" not in output  # no spill tier configured

    def test_non_positive_replicas_is_rejected(self, tiny_catalog, capsys):
        assert main(
            ["run", "toy", "cyclerank", "--source", "R", "--replicas", "0"]
        ) == 2
        assert "--replicas" in capsys.readouterr().err


class TestWaitFlags:
    def test_no_wait_prints_only_the_comparison_id(self, tiny_catalog, capsys):
        exit_code = main(["run", "toy", "cyclerank", "--source", "R", "--no-wait"])
        assert exit_code == 0
        output = capsys.readouterr().out.strip().splitlines()
        assert len(output) == 1
        # The only line is the permalink id (a UUID).
        import uuid

        uuid.UUID(output[0])

    def test_follow_streams_progress_then_prints_results(self, tiny_catalog, capsys):
        exit_code = main(
            ["run", "toy", "cyclerank", "--source", "R", "--param", "k=3",
             "--top", "3", "--follow"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "submitted 1 queries" in output
        assert "query 0 started: cyclerank on toy" in output
        assert "query 0 completed (1/1 done)" in output
        assert "comparison done (1/1 queries)" in output
        assert "CycleRank" in output  # the normal results still print

    def test_follow_and_no_wait_are_mutually_exclusive(self, tiny_catalog):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "toy", "pagerank", "--no-wait", "--follow"]
            )

    def test_follow_output_matches_the_blocking_results(self, tiny_catalog, capsys):
        blocking_code = main(
            ["run", "toy", "cyclerank", "--source", "R", "--param", "k=3",
             "--top", "5", "--scores"]
        )
        blocking_output = capsys.readouterr().out
        follow_code = main(
            ["run", "toy", "cyclerank", "--source", "R", "--param", "k=3",
             "--top", "5", "--scores", "--follow"]
        )
        follow_output = capsys.readouterr().out
        assert blocking_code == follow_code == 0
        # Strip the streamed progress prologue: everything from the ranking
        # header onwards must be bit-identical to the blocking run.
        marker = blocking_output.splitlines()[0]
        assert marker in follow_output
        follow_results = follow_output[follow_output.index(marker):]
        assert follow_results == blocking_output

    def test_compare_follow_renders_per_query_lines(self, tiny_catalog, capsys):
        exit_code = main(
            ["compare", "toy", "--source", "R", "--algorithms", "pagerank",
             "cyclerank", "--follow"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "query 0 started" in output
        assert "query 1 started" in output
        assert "comparison done (2/2 queries)" in output
        assert "Cyclerank" in output

    def test_compare_no_wait_prints_the_id(self, tiny_catalog, capsys):
        exit_code = main(["compare", "toy", "--source", "R", "--no-wait"])
        assert exit_code == 0
        import uuid

        uuid.UUID(capsys.readouterr().out.strip())
