"""Unit tests for :mod:`repro.graph.csr`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GraphError, NodeNotFoundError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DirectedGraph


class TestConstruction:
    def test_from_directed_graph_preserves_edges(self, mixed_graph):
        csr = CSRGraph.from_directed_graph(mixed_graph)
        assert csr.number_of_nodes() == mixed_graph.number_of_nodes()
        assert csr.number_of_edges() == mixed_graph.number_of_edges()
        for edge in mixed_graph.edges():
            assert csr.has_edge(edge.source, edge.target)

    def test_from_edges_collapses_duplicates(self):
        csr = CSRGraph.from_edges(3, [(0, 1), (0, 1), (1, 2)])
        assert csr.number_of_edges() == 2

    def test_from_edges_rejects_out_of_range(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(2, [(0, 5)])
        with pytest.raises(GraphError):
            CSRGraph.from_edges(2, [(-1, 0)])

    def test_from_edges_rejects_negative_node_count(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(-1, [])

    def test_invalid_indptr_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([1, 2]), np.array([0]))
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 2]), np.array([0]))
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 1]))

    def test_indices_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 1]), np.array([5]))

    def test_label_length_mismatch_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 1, 1]), np.array([1]), labels=["only-one"])

    def test_empty_graph(self):
        csr = CSRGraph.from_edges(0, [])
        assert csr.number_of_nodes() == 0
        assert csr.number_of_edges() == 0


class TestAccessors:
    def test_successors_and_degrees(self, reciprocal_star):
        csr = reciprocal_star.to_csr()
        hub = reciprocal_star.resolve("H")
        assert set(csr.successors(hub).tolist()) == reciprocal_star.successors(hub)
        assert csr.out_degree(hub) == 5
        assert csr.out_degrees().sum() == csr.number_of_edges()
        assert csr.in_degrees().sum() == csr.number_of_edges()

    def test_out_of_range_node_raises(self, triangle):
        csr = triangle.to_csr()
        with pytest.raises(NodeNotFoundError):
            csr.successors(10)
        with pytest.raises(NodeNotFoundError):
            csr.out_degree(-1)

    def test_edges_listing(self, triangle):
        csr = triangle.to_csr()
        sources, targets = csr.edges()
        assert len(sources) == len(targets) == 3
        pairs = set(zip(sources.tolist(), targets.tolist()))
        assert pairs == set(triangle.edge_list())

    def test_labels_round_trip(self, triangle):
        csr = triangle.to_csr()
        assert csr.labels() == triangle.labels()
        assert csr.label_of(0) == triangle.label_of(0)
        assert csr.node_for_label("A") == triangle.node_for_label("A")
        with pytest.raises(NodeNotFoundError):
            csr.node_for_label("missing")

    def test_labels_default_when_absent(self):
        csr = CSRGraph.from_edges(2, [(0, 1)])
        assert csr.labels() == ["#0", "#1"]
        assert csr.label_of(1) == "#1"


class TestConversions:
    def test_round_trip_to_directed_graph(self, mixed_graph):
        csr = mixed_graph.to_csr()
        back = csr.to_directed_graph()
        assert back == mixed_graph

    def test_transpose_matches_digraph_transpose(self, mixed_graph):
        csr_transposed = mixed_graph.to_csr().transpose()
        expected = mixed_graph.transpose().to_csr()
        assert csr_transposed == expected

    def test_to_scipy_adjacency(self, triangle):
        matrix = triangle.to_csr().to_scipy()
        assert matrix.shape == (3, 3)
        assert matrix.sum() == 3
        a, b = triangle.resolve("A"), triangle.resolve("B")
        assert matrix[a, b] == 1.0
        assert matrix[b, a] == 0.0

    def test_equality_and_repr(self, triangle):
        csr = triangle.to_csr()
        assert csr == triangle.to_csr()
        assert csr != CSRGraph.from_edges(3, [(0, 1)])
        assert csr != object()
        assert "3 nodes" in repr(csr)
        assert len(csr) == 3

    def test_csr_is_snapshot_not_view(self, triangle):
        csr = triangle.to_csr()
        triangle.add_edge("A", "C")
        assert not csr.has_edge(triangle.resolve("A"), triangle.resolve("C"))
