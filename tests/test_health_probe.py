"""Failure-detector tests: probe-driven mark_down/mark_up, no flap-storms.

The replicated store runs a lightweight failure detector: real request
outcomes feed per-shard consecutive-failure streaks, periodic pings
(:meth:`~repro.platform.replication.ReplicatedShardedDataStore.probe_shards`)
cover shards that see no traffic, and F consecutive failures auto-mark a
shard down — a later successful probe marks it back up.  No test in this
file ever calls ``mark_down``/``mark_up`` on a *failing* shard by hand:
the transitions the assertions observe are all automatic.  Flapping shards
are scripted through :class:`faults.ShardFlapper`, proving the transition
rate limit keeps a flapping backend from storming the topology epoch.
"""

from __future__ import annotations

import time

import pytest

from faults import FlakyStore, ShardFlapper, fault_rounds
from repro.exceptions import InvalidParameterError
from repro.graph.generators import cycle_graph
from repro.platform.datastore import DataStore
from repro.platform.gateway import ApiGateway
from repro.platform.replication import ReplicatedShardedDataStore


def _build(num_shards=4, replicas=2, **kwargs):
    backends = [FlakyStore(DataStore()) for _ in range(num_shards)]
    store = ReplicatedShardedDataStore(
        shards=backends, replicas=replicas, **kwargs
    )
    return backends, store


def _wait_until(predicate, *, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestRequestDrivenDetection:
    def test_consecutive_read_failures_auto_mark_the_shard_down(self):
        backends, store = _build(
            probe_failure_threshold=3, probe_transition_interval_seconds=0
        )
        store.store_dataset("ds", cycle_graph(4))
        primary = store.replica_shards_for("ds")[0]
        store.shard_stores()[primary].fail_on(
            "fetch_dataset_with_version", times=None
        )
        # Reads keep succeeding through failover while the streak builds.
        for _ in range(3):
            assert store.fetch_dataset("ds") is not None
        assert primary in store.marked_down()
        health = store.health_stats()
        assert primary in health["auto_down"]
        assert health["auto_downs"] == 1
        # The marked-down shard is skipped entirely: no more errors accrue.
        store.fetch_dataset("ds")
        assert store.replication_stats()["shard_errors"][primary] == 3

    def test_a_single_blip_below_the_threshold_does_not_transition(self):
        backends, store = _build(probe_failure_threshold=3)
        store.store_dataset("ds", cycle_graph(4))
        primary = store.replica_shards_for("ds")[0]
        store.shard_stores()[primary].fail_on(
            "fetch_dataset_with_version", times=2
        )
        store.fetch_dataset("ds")
        store.fetch_dataset("ds")
        # Two failures, then a success: the streak resets before the
        # threshold, so the shard never transitions.
        store.fetch_dataset("ds")
        assert store.marked_down() == []
        assert store.health_stats()["consecutive_failures"] == {}
        assert store.health_stats()["auto_downs"] == 0


class TestProbeDrivenDetection:
    def test_probe_detects_a_silent_outage_and_recovery(self):
        backends, store = _build(
            probe_failure_threshold=2, probe_transition_interval_seconds=0
        )
        store.store_dataset("ds", cycle_graph(4))
        victim_id = store.replica_shards_for("ds")[0]
        store.shard_stores()[victim_id].go_down()
        # No request traffic at all: only the pings see the outage.
        assert store.probe_shards() == []
        transitions = store.probe_shards()
        assert (victim_id, "down") in transitions
        assert victim_id in store.marked_down()
        store.shard_stores()[victim_id].come_up()
        transitions = store.probe_shards()
        assert (victim_id, "up") in transitions
        assert store.marked_down() == []
        health = store.health_stats()
        assert health["auto_downs"] == 1
        assert health["auto_ups"] == 1

    def test_manual_mark_down_is_sticky_against_probes(self):
        backends, store = _build(probe_transition_interval_seconds=0)
        store.mark_down("shard-1")  # an operator call, shard is healthy
        for _ in range(3):
            assert store.probe_shards() == []
        # Probes never un-mark an operator decision.
        assert "shard-1" in store.marked_down()
        store.mark_up("shard-1")
        assert store.marked_down() == []

    def test_listeners_receive_typed_transitions(self):
        backends, store = _build(
            probe_failure_threshold=1, probe_transition_interval_seconds=0
        )
        seen = []
        store.add_health_listener(
            lambda shard, transition, streak: seen.append(
                (shard, transition, streak)
            )
        )
        backends[0].go_down()
        store.probe_shards()
        backends[0].come_up()
        store.probe_shards()
        shard_id = seen[0][0]
        assert seen == [(shard_id, "down", 1), (shard_id, "up", 0)]

    def test_probe_parameters_are_validated(self):
        with pytest.raises(InvalidParameterError):
            _build(probe_failure_threshold=0)
        with pytest.raises(InvalidParameterError):
            _build(probe_transition_interval_seconds=-1)
        with pytest.raises(InvalidParameterError):
            _build(read_repair_queue_limit=0)


class TestFlapStormSuppression:
    def test_rapid_flapping_is_rate_limited(self):
        backends, store = _build(
            probe_failure_threshold=1,
            probe_transition_interval_seconds=3600,  # one transition, then hold
        )
        victim = backends[0]
        victim.go_down()
        assert len(store.probe_shards()) == 1  # the first transition lands
        for _ in range(fault_rounds(5)):
            victim.come_up()
            store.probe_shards()
            victim.go_down()
            store.probe_shards()
        health = store.health_stats()
        # One epoch bump total; every subsequent flip was suppressed.
        assert health["auto_downs"] == 1
        assert health["auto_ups"] == 0
        assert health["suppressed_transitions"] >= fault_rounds(5)
        assert len(health["auto_down"]) == 1

    def test_flapper_thread_cannot_storm_the_epoch(self):
        backends, store = _build(
            probe_failure_threshold=1,
            probe_transition_interval_seconds=10.0,
        )
        store.store_dataset("ds", cycle_graph(4))
        flaps = fault_rounds(30)
        with ShardFlapper(
            backends[0], cycles=flaps, down_for=0.002, up_for=0.002
        ):
            deadline = time.monotonic() + 0.3
            while time.monotonic() < deadline:
                store.probe_shards()
        health = store.health_stats()
        # Dozens of flaps; at most the initial down (and, after the
        # interval, one up) may land — far below the flap count.
        assert health["auto_downs"] + health["auto_ups"] <= 2


class TestGatewayHealthSurface:
    @pytest.fixture
    def catalog(self, community_graph):
        from repro.datasets.catalog import DatasetCatalog

        catalog = DatasetCatalog()
        catalog.register_graph("toy", community_graph, description="communities")
        return catalog

    def test_prober_marks_down_and_up_with_typed_events(self, catalog):
        backends = [FlakyStore(DataStore()) for _ in range(4)]
        store = ReplicatedShardedDataStore(
            shards=backends,
            replicas=2,
            probe_failure_threshold=2,
            probe_transition_interval_seconds=0.02,
        )
        with ApiGateway(
            catalog=catalog, datastore=store, probe_interval_seconds=0.01
        ) as gateway:
            backends[0].go_down()
            assert _wait_until(lambda: "shard-0" in store.marked_down())
            backends[0].come_up()
            assert _wait_until(lambda: store.marked_down() == [])
            events = gateway.health_events()
            kinds = [(event["type"], event["shard"]) for event in events]
            assert ("shard_down", "shard-0") in kinds
            assert ("shard_up", "shard-0") in kinds
            down = next(e for e in events if e["type"] == "shard_down")
            assert down["failures"] >= 2
            # The cursor works like every other event stream.
            assert gateway.health_events(after=events[-1]["seq"]) == []
            stats = gateway.get_platform_stats()
            health = stats["shards"]["health"]
            assert health["auto_downs"] >= 1
            assert health["auto_ups"] >= 1
            assert stats["shards"]["replication"]["marked_down"] == []

    def test_probe_interval_zero_disables_the_prober(self, catalog):
        with ApiGateway(
            catalog=catalog, shards=3, replicas=2, probe_interval_seconds=0
        ) as gateway:
            assert gateway._prober is None
        with pytest.raises(InvalidParameterError):
            ApiGateway(catalog=catalog, shards=3, replicas=2,
                       probe_interval_seconds=-0.5)
