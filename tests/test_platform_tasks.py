"""Unit tests for :mod:`repro.platform.tasks`."""

from __future__ import annotations

import uuid

import pytest

from repro.datasets.catalog import DatasetCatalog
from repro.exceptions import TaskError
from repro.platform.tasks import Query, QuerySet, Task, TaskBuilder, TaskState
from repro.ranking.result import Ranking


@pytest.fixture
def catalog(triangle, community_graph) -> DatasetCatalog:
    catalog = DatasetCatalog()
    catalog.register_graph("triangle", triangle)
    catalog.register_graph("communities", community_graph)
    return catalog


@pytest.fixture
def builder(catalog) -> TaskBuilder:
    return TaskBuilder(catalog)


class TestQuery:
    def test_describe_includes_every_field(self):
        query = Query("enwiki-2018", "cyclerank", source="Pasta", parameters={"k": 3})
        description = query.describe()
        assert "enwiki-2018" in description
        assert "cyclerank" in description
        assert "Pasta" in description
        assert "k=3" in description

    def test_describe_for_global_algorithm(self):
        query = Query("enwiki-2018", "pagerank")
        assert "source: -" in query.describe()
        assert "defaults" in query.describe()

    def test_as_dict(self):
        query = Query("d", "a", source="s", parameters={"k": 3})
        assert query.as_dict() == {
            "dataset_id": "d", "algorithm": "a", "source": "s", "parameters": {"k": 3}
        }


class TestQuerySet:
    def test_has_uuid_permalink(self):
        query_set = QuerySet()
        assert uuid.UUID(query_set.comparison_id)

    def test_ids_are_unique(self):
        assert QuerySet().comparison_id != QuerySet().comparison_id

    def test_add_remove_clear(self):
        query_set = QuerySet()
        index = query_set.add(Query("d", "pagerank"))
        assert index == 0
        assert len(query_set) == 1
        removed = query_set.remove(0)
        assert removed.algorithm == "pagerank"
        assert len(query_set) == 0
        query_set.add(Query("d", "pagerank"))
        query_set.clear()
        assert len(query_set) == 0

    def test_remove_out_of_range_fails(self):
        with pytest.raises(TaskError):
            QuerySet().remove(0)

    def test_iteration_and_serialisation(self):
        query_set = QuerySet([Query("d", "pagerank"), Query("d", "cheirank")])
        assert [q.algorithm for q in query_set] == ["pagerank", "cheirank"]
        payload = query_set.as_dict()
        assert payload["comparison_id"] == query_set.comparison_id
        assert len(payload["queries"]) == 2


class TestTaskBuilder:
    def test_build_valid_personalized_query(self, builder):
        query = builder.build_query(
            "triangle", "cyclerank", source="A", parameters={"k": "4"}
        )
        assert query.parameters["k"] == 4
        assert query.parameters["sigma"] == "exp"

    def test_build_valid_global_query(self, builder):
        query = builder.build_query("triangle", "pagerank", parameters={"alpha": 0.5})
        assert query.source is None
        assert query.parameters["alpha"] == 0.5

    def test_unknown_dataset_rejected(self, builder):
        with pytest.raises(TaskError):
            builder.build_query("nope", "pagerank")

    def test_unknown_algorithm_rejected(self, builder):
        with pytest.raises(KeyError):
            builder.build_query("triangle", "simrank")

    def test_missing_source_for_personalized_rejected(self, builder):
        with pytest.raises(TaskError):
            builder.build_query("triangle", "cyclerank")

    def test_unexpected_source_for_global_rejected(self, builder):
        with pytest.raises(TaskError):
            builder.build_query("triangle", "pagerank", source="A")

    def test_bad_parameter_rejected(self, builder):
        with pytest.raises(TaskError):
            builder.build_query("triangle", "cyclerank", source="A", parameters={"k": "one"})
        with pytest.raises(TaskError):
            builder.build_query("triangle", "pagerank", parameters={"beta": 0.1})

    def test_build_task_requires_nonempty_query_set(self, builder):
        with pytest.raises(TaskError):
            builder.build_task(builder.new_query_set())

    def test_build_task_shares_comparison_id(self, builder):
        query_set = builder.new_query_set()
        query_set.add(builder.build_query("triangle", "pagerank"))
        task = builder.build_task(query_set)
        assert task.task_id == query_set.comparison_id


class TestTaskLifecycle:
    def _task(self, n_queries: int = 2) -> Task:
        query_set = QuerySet([Query("d", "pagerank") for _ in range(n_queries)])
        return Task(query_set)

    def test_initial_state_is_pending(self):
        task = self._task()
        assert task.state is TaskState.PENDING
        assert not task.is_done()
        assert task.total_queries == 2

    def test_running_then_completed(self):
        task = self._task(2)
        task.mark_running()
        assert task.state is TaskState.RUNNING
        task.record_query_result(0, Ranking([1.0]))
        assert task.state is TaskState.RUNNING
        assert task.completed_queries == 1
        task.record_query_result(1, Ranking([1.0]))
        assert task.state is TaskState.COMPLETED
        assert task.is_done()
        assert set(task.rankings()) == {0, 1}

    def test_failure_is_terminal(self):
        task = self._task(2)
        task.mark_running()
        task.mark_failed("boom")
        assert task.state is TaskState.FAILED
        assert task.error == "boom"
        assert task.is_done()
        # A late result does not resurrect a failed task.
        task.record_query_result(0, Ranking([1.0]))
        task.record_query_result(1, Ranking([1.0]))
        assert task.state is TaskState.FAILED

    def test_mark_running_only_from_pending(self):
        task = self._task(1)
        task.mark_failed("boom")
        task.mark_running()
        assert task.state is TaskState.FAILED

    def test_terminal_state_helper(self):
        assert TaskState.COMPLETED.is_terminal()
        assert TaskState.FAILED.is_terminal()
        assert not TaskState.PENDING.is_terminal()
        assert not TaskState.RUNNING.is_terminal()

    def test_repr_shows_progress(self):
        task = self._task(2)
        assert "0/2" in repr(task)
