"""Unit tests for :mod:`repro.platform.executor`, ``scheduler`` and ``status``."""

from __future__ import annotations

import pytest

from repro.datasets.catalog import DatasetCatalog
from repro.exceptions import ExecutorError, InvalidParameterError, TaskError, TaskNotFoundError
from repro.platform.datastore import DataStore
from repro.platform.executor import ExecutorNode, ExecutorPool
from repro.platform.scheduler import Scheduler
from repro.platform.status import StatusComponent
from repro.platform.tasks import Query, QuerySet, Task, TaskBuilder, TaskState


@pytest.fixture
def catalog(triangle, community_graph, two_triangles) -> DatasetCatalog:
    catalog = DatasetCatalog()
    catalog.register_graph("triangle", triangle)
    catalog.register_graph("communities", community_graph)
    catalog.register_graph("two-triangles", two_triangles)
    return catalog


@pytest.fixture
def platform(catalog):
    datastore = DataStore()
    pool = ExecutorPool(datastore, num_workers=2)
    scheduler = Scheduler(datastore, catalog, pool)
    status = StatusComponent(scheduler, datastore)
    builder = TaskBuilder(catalog)
    yield datastore, pool, scheduler, status, builder
    pool.shutdown()


def make_task(builder, *specs) -> Task:
    query_set = builder.new_query_set()
    for dataset_id, algorithm, source, parameters in specs:
        query_set.add(
            builder.build_query(dataset_id, algorithm, source=source, parameters=parameters)
        )
    return builder.build_task(query_set)


class TestExecutorNode:
    def test_execute_produces_ranking_and_logs(self, triangle):
        datastore = DataStore()
        node = ExecutorNode(datastore, name="executor-7")
        outcome = node.execute(
            Query("triangle", "pagerank", parameters={"alpha": 0.5}), triangle, log_id="t"
        )
        assert outcome.ranking.algorithm == "PageRank"
        assert outcome.elapsed_seconds >= 0
        assert outcome.executor_name == "executor-7"
        assert node.executed_queries == 1
        logs = datastore.get_logs("t")
        assert any("start" in line for line in logs)
        assert any("done" in line for line in logs)

    def test_execute_failure_raises_and_logs(self, triangle):
        datastore = DataStore()
        node = ExecutorNode(datastore)
        bad_query = Query("triangle", "cyclerank", source="not-a-node", parameters={"k": 3})
        with pytest.raises(ExecutorError):
            node.execute(bad_query, triangle, log_id="t")
        assert any("FAILED" in line for line in datastore.get_logs("t"))
        assert node.executed_queries == 0


class TestExecutorPool:
    def test_submit_and_result(self, triangle):
        datastore = DataStore()
        pool = ExecutorPool(datastore, num_workers=2)
        try:
            future = pool.submit(Query("triangle", "pagerank"), triangle)
            outcome = future.result(timeout=30)
            assert outcome.ranking.total() == pytest.approx(1.0)
            assert pool.total_executed() == 1
        finally:
            pool.shutdown()

    def test_scale_to_changes_worker_count(self, triangle):
        datastore = DataStore()
        pool = ExecutorPool(datastore, num_workers=1)
        try:
            assert pool.num_workers == 1
            pool.scale_to(3)
            assert pool.num_workers == 3
            future = pool.submit(Query("triangle", "cheirank"), triangle)
            assert future.result(timeout=30).ranking.algorithm == "CheiRank"
        finally:
            pool.shutdown()

    def test_invalid_worker_count(self):
        datastore = DataStore()
        with pytest.raises(InvalidParameterError):
            ExecutorPool(datastore, num_workers=0)
        pool = ExecutorPool(datastore, num_workers=1)
        try:
            with pytest.raises(InvalidParameterError):
                pool.scale_to(0)
        finally:
            pool.shutdown()

    def test_execute_sync(self, triangle):
        datastore = DataStore()
        pool = ExecutorPool(datastore, num_workers=1)
        try:
            outcome = pool.execute_sync(Query("triangle", "pagerank"), triangle)
            assert outcome.ranking.algorithm == "PageRank"
        finally:
            pool.shutdown()


class TestScheduler:
    def test_asynchronous_submission_completes(self, platform):
        datastore, _, scheduler, status, builder = platform
        task = make_task(
            builder,
            ("triangle", "pagerank", None, {"alpha": 0.85}),
            ("two-triangles", "cyclerank", "R", {"k": 3}),
        )
        task_id = scheduler.submit(task)
        scheduler.wait(task_id, timeout=30)
        progress = status.poll_until_done(task_id, timeout_seconds=30)
        assert progress.state is TaskState.COMPLETED
        assert progress.completed_queries == 2
        assert progress.fraction_done == 1.0
        rankings = scheduler.rankings_for(task_id)
        assert rankings[0].algorithm == "PageRank"
        assert rankings[1].algorithm == "CycleRank"

    def test_results_and_logs_written_to_datastore(self, platform):
        datastore, _, scheduler, status, builder = platform
        task = make_task(builder, ("triangle", "pagerank", None, None))
        scheduler.submit(task)
        scheduler.wait(task.task_id, timeout=30)
        status.poll_until_done(task.task_id, timeout_seconds=30)
        stored = datastore.get_result(task.task_id)
        assert stored["comparison_id"] == task.task_id
        assert stored["state"] == "completed"
        assert "0" in stored["rankings"]
        assert any("scheduler" in line for line in status.logs(task.task_id))

    def test_stored_rankings_match_computed_ones(self, platform):
        from repro.ranking.result import Ranking

        datastore, _, scheduler, status, builder = platform
        task = make_task(builder, ("two-triangles", "cyclerank", "R", {"k": 3}))
        scheduler.run_synchronously(task)
        stored = datastore.get_result(task.task_id)
        restored = Ranking.from_dict(stored["rankings"]["0"])
        live = task.rankings()[0]
        assert restored.top_labels(5) == live.top_labels(5)

    def test_synchronous_run(self, platform):
        _, _, scheduler, _, builder = platform
        task = make_task(builder, ("communities", "personalized-pagerank", "c0-n0", None))
        finished = scheduler.run_synchronously(task)
        assert finished.state is TaskState.COMPLETED
        assert finished.rankings()[0].reference == "c0-n0"

    def test_failing_query_marks_task_failed(self, platform):
        _, _, scheduler, status, builder = platform
        # Build a structurally valid task, then sabotage the catalog lookup by
        # using a source node that does not exist in the dataset.
        task = make_task(builder, ("triangle", "cyclerank", "ghost-node", {"k": 3}))
        scheduler.submit(task)
        scheduler.wait(task.task_id, timeout=30)
        progress = status.poll_until_done(task.task_id, timeout_seconds=30)
        assert progress.state is TaskState.FAILED
        assert progress.error

    def test_unknown_task_lookup_fails(self, platform):
        _, _, scheduler, _, _ = platform
        with pytest.raises(TaskNotFoundError):
            scheduler.get_task("does-not-exist")

    def test_list_tasks(self, platform):
        _, _, scheduler, _, builder = platform
        task = make_task(builder, ("triangle", "pagerank", None, None))
        scheduler.run_synchronously(task)
        assert task in scheduler.list_tasks()


class TestStatusComponent:
    def test_poll_reports_progress_fields(self, platform):
        _, _, scheduler, status, builder = platform
        task = make_task(builder, ("triangle", "pagerank", None, None))
        scheduler.run_synchronously(task)
        progress = status.poll(task.task_id)
        assert progress.task_id == task.task_id
        assert progress.total_queries == 1
        assert "completed" in progress.describe()

    def test_poll_until_done_times_out(self, platform):
        _, _, scheduler, status, builder = platform
        # A task that is registered but never scheduled stays pending forever.
        task = make_task(builder, ("triangle", "pagerank", None, None))
        scheduler._tasks[task.task_id] = task
        with pytest.raises(TaskError):
            status.poll_until_done(task.task_id, interval_seconds=0.01, timeout_seconds=0.05)

    def test_stored_result_accessible_via_status(self, platform):
        _, _, scheduler, status, builder = platform
        task = make_task(builder, ("triangle", "cheirank", None, None))
        scheduler.run_synchronously(task)
        assert status.stored_result(task.task_id)["state"] == "completed"

    def test_empty_task_progress_fraction(self):
        from repro.platform.status import TaskProgress

        progress = TaskProgress("id", TaskState.COMPLETED, 0, 0)
        assert progress.fraction_done == 1.0
