"""Tests for the replicated, file-backed storage tier.

Covers the :meth:`~repro.platform.sharding.HashRing.successors` placement
properties the replicated store is built on (R distinct shards, deterministic
across processes, bounded movement on join/leave), the
:class:`~repro.platform.datastore.FileBackedDataStore` restart-recovery
contract, the :class:`~repro.platform.replication.ReplicatedShardedDataStore`
surface (quorum writes, failover reads, spill, repair/rebalance as
cancellable jobs) — exercised against fault-injected backends from the
shared :class:`conftest.FlakyStore` harness — and the scheduler's bounded
terminal task table with datastore-served permalinks.
"""

from __future__ import annotations

import string
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from faults import DownShard, FlakyStore, stale_primary
from repro.datasets.catalog import DatasetCatalog
from repro.exceptions import (
    DeadlineExceededError,
    InvalidParameterError,
    StorageError,
    TaskNotFoundError,
)
from repro.graph.generators import cycle_graph, reciprocal_communities_graph, star_graph
from repro.platform.datastore import DataStore, FileBackedDataStore
from repro.platform.gateway import ApiGateway
from repro.platform.jobs import JobRecord, JobState
from repro.platform.replication import ReplicatedShardedDataStore
from repro.platform.resilience import Deadline, deadline_scope
from repro.platform.sharding import HashRing

KEYS = [f"dataset-{index}" for index in range(600)]

shard_sets = st.sets(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8),
    min_size=3,
    max_size=12,
)


def _holders(store: ReplicatedShardedDataStore, dataset_id: str):
    return sorted(
        shard_id
        for shard_id, backend in store.shard_stores().items()
        if not getattr(backend, "is_down", False) and backend.has_dataset(dataset_id)
    )


def _result_holders(store: ReplicatedShardedDataStore, result_id: str):
    return sorted(
        shard_id
        for shard_id, backend in store.shard_stores().items()
        if not getattr(backend, "is_down", False) and backend.has_result(result_id)
    )


class TestSuccessorPlacementProperties:
    @settings(max_examples=50, deadline=None)
    @given(shards=shard_sets, replicas=st.integers(min_value=2, max_value=3))
    def test_r_successors_are_r_distinct_shards(self, shards, replicas):
        """Any topology with >= R shards yields exactly R distinct successors."""
        ring = HashRing(shards)
        for key in KEYS[:50]:
            successors = ring.successors(key, replicas)
            assert len(successors) == min(replicas, len(shards))
            assert len(set(successors)) == len(successors)
            assert successors[0] == ring.assign(key)

    @settings(max_examples=25, deadline=None)
    @given(shards=shard_sets)
    def test_placement_is_deterministic_across_instances(self, shards):
        """Two rings over the same shard set agree on every replica set."""
        ordered = sorted(shards)
        first = HashRing(ordered)
        second = HashRing(reversed(ordered))  # insertion order must not matter
        for key in KEYS[:50]:
            assert first.successors(key, 2) == second.successors(key, 2)

    def test_fewer_shards_than_replicas_returns_every_shard(self):
        ring = HashRing(["a", "b"])
        for key in KEYS[:20]:
            assert sorted(ring.successors(key, 3)) == ["a", "b"]

    def test_join_moves_only_a_bounded_interval_with_replicas(self):
        """A join changes few replica sets, and only by inserting the joiner."""
        ring = HashRing([f"shard-{i}" for i in range(8)])
        before = {key: ring.successors(key, 2) for key in KEYS}
        ring.add_shard("joiner")
        changed = 0
        for key in KEYS:
            after = ring.successors(key, 2)
            if after == before[key]:
                continue
            changed += 1
            # The survivors keep their relative order and the only new
            # member is the joiner: a join never reshuffles other shards.
            assert set(after) - set(before[key]) <= {"joiner"}
            kept = [shard for shard in after if shard != "joiner"]
            assert kept == [s for s in before[key] if s in set(kept)]
        # Expected moved fraction is ~R/N = 2/9; allow generous slack.
        assert changed / len(KEYS) < 2 * (2 / 9)

    def test_leave_keeps_unaffected_replica_sets_identical(self):
        ring = HashRing([f"shard-{i}" for i in range(8)])
        before = {key: ring.successors(key, 2) for key in KEYS}
        ring.remove_shard("shard-3")
        for key in KEYS:
            if "shard-3" not in before[key]:
                assert ring.successors(key, 2) == before[key]


class TestFileBackedDataStore:
    def test_round_trip_is_bit_identical(self, tmp_path):
        store = FileBackedDataStore(tmp_path)
        graph = reciprocal_communities_graph(3, 5, seed=9, name="communities")
        store.store_dataset("ds", graph)
        restored, version = store.fetch_dataset_with_version("ds")
        assert version == 1
        assert restored.name == graph.name
        assert restored.labels() == graph.labels()
        assert restored.edge_list() == graph.edge_list()

    def test_restart_recovers_datasets_results_and_artifacts(self, tmp_path):
        store = FileBackedDataStore(tmp_path)
        graph = star_graph(7, reciprocal=True)
        store.store_dataset("ds", graph)
        compiled, _ = store.fetch_compiled_with_version("ds")
        csr = compiled.to_csr()
        store.put_result("result-1", {"rows": [1, 2, 3], "nested": {"a": "b"}})
        store.append_log("log-1", "first line")

        recovered = FileBackedDataStore(tmp_path)
        graph_back, version = recovered.fetch_dataset_with_version("ds")
        assert version == 1
        assert graph_back.edge_list() == graph.edge_list()
        assert graph_back.labels() == graph.labels()
        compiled_back, _ = recovered.fetch_compiled_with_version("ds")
        # The persisted artifact pre-seeds the CSR (no reconversion) and is
        # structurally identical to the one compiled before the restart.
        assert compiled_back.csr_ready
        assert compiled_back.to_csr() == csr
        assert recovered.get_result("result-1") == {
            "rows": [1, 2, 3], "nested": {"a": "b"}
        }
        assert recovered.get_logs("log-1") == ["first line"]
        assert recovered.occupancy()["datasets"] == 1

    def test_versions_stay_monotonic_across_drop_and_restart(self, tmp_path):
        store = FileBackedDataStore(tmp_path)
        graph = cycle_graph(4)
        store.store_dataset("ds", graph)
        store.drop_dataset("ds")
        assert store.dataset_version("ds") == 2
        restarted = FileBackedDataStore(tmp_path)
        assert not restarted.has_dataset("ds")
        restarted.store_dataset("ds", graph)
        # A version minted before the drop can never collide after a restart.
        assert restarted.dataset_version("ds") == 3

    def test_reserved_looking_dataset_ids_round_trip(self, tmp_path):
        """No user-chosen id may collide with the store's own index files."""
        store = FileBackedDataStore(tmp_path)
        graph = cycle_graph(4)
        for dataset_id in ("_versions", "dataset_versions", "..", "a/b c%20d"):
            store.store_dataset(dataset_id, graph)
        recovered = FileBackedDataStore(tmp_path)
        assert recovered.list_datasets() == sorted(
            ["_versions", "dataset_versions", "..", "a/b c%20d"]
        )
        for dataset_id in recovered.list_datasets():
            restored, version = recovered.fetch_dataset_with_version(dataset_id)
            assert version == 1
            assert restored.edge_list() == graph.edge_list()

    def test_replace_invalidates_and_bumps(self, tmp_path):
        store = FileBackedDataStore(tmp_path)
        store.store_dataset("ds", cycle_graph(4))
        first, v1 = store.fetch_compiled_with_version("ds")
        store.store_dataset("ds", star_graph(5))
        second, v2 = store.fetch_compiled_with_version("ds")
        assert v2 == v1 + 1
        assert second.to_csr().number_of_nodes() == star_graph(5).number_of_nodes()


class TestReplicatedWrites:
    def test_dataset_lands_on_r_distinct_successors_with_equal_versions(self):
        store = ReplicatedShardedDataStore(num_shards=5, replicas=3)
        graph = star_graph(5)
        store.store_dataset("ds", graph)
        holders = _holders(store, "ds")
        assert holders == sorted(store.replica_shards_for("ds"))
        assert len(holders) == 3
        versions = {
            store.shard_stores()[shard_id].dataset_version("ds")
            for shard_id in holders
        }
        assert versions == {1}

    def test_write_quorum_failure_raises_and_does_not_ack(self):
        backends = [FlakyStore(DataStore()), FlakyStore(DataStore())]
        store = ReplicatedShardedDataStore(shards=backends, replicas=2)
        backends[0].go_down()
        # Two shards, R=2, quorum=2: with one shard down only one ack is
        # reachable, so the write must fail instead of acking a single copy.
        with pytest.raises(StorageError):
            store.store_dataset("ds", cycle_graph(3))
        with pytest.raises(StorageError):
            store.put_result("r", {"x": 1})

    def test_sloppy_handoff_keeps_two_live_copies(self):
        store = ReplicatedShardedDataStore(num_shards=4, replicas=2)
        primary = store.replica_shards_for("ds")[0]
        store.mark_down(primary)
        store.store_dataset("ds", cycle_graph(3))
        holders = _holders(store, "ds")
        assert len(holders) == 2
        assert primary not in holders
        assert store.replication_stats()["degraded_writes"] == 0

    def test_result_survives_the_loss_of_any_single_holder(self):
        backends = [FlakyStore(DataStore()) for _ in range(4)]
        store = ReplicatedShardedDataStore(shards=backends, replicas=2)
        store.put_result("res", {"value": 42})
        holders = _result_holders(store, "res")
        assert len(holders) == 2
        for victim in holders:
            index = int(victim.split("-")[1])
            backends[index].go_down()
            assert store.get_result("res") == {"value": 42}
            backends[index].come_up()


class TestFailoverReads:
    def test_transient_primary_fault_is_absorbed_by_in_place_retry(self):
        backends = [FlakyStore(DataStore()) for _ in range(4)]
        store = ReplicatedShardedDataStore(shards=backends, replicas=2)
        graph = star_graph(6)
        store.store_dataset("ds", graph)
        primary = store.replica_shards_for("ds")[0]
        flaky = backends[int(primary.split("-")[1])]
        # One transient blip: the shared retry policy re-sends to the same
        # source, so the primary still answers and no failover happens.
        # Every dataset read routes through the versioned fetch now.
        flaky.fail_on("fetch_dataset_with_version", times=1)
        assert store.fetch_dataset("ds").edge_list() == graph.edge_list()
        stats = store.replication_stats()
        assert stats["failover_reads"] == 0
        assert stats["retries"]["retries_spent"] >= 1

    def test_read_fails_over_when_the_primary_errors(self):
        backends = [FlakyStore(DataStore()) for _ in range(4)]
        store = ReplicatedShardedDataStore(shards=backends, replicas=2)
        graph = star_graph(6)
        store.store_dataset("ds", graph)
        primary = store.replica_shards_for("ds")[0]
        flaky = backends[int(primary.split("-")[1])]
        # Outlast the per-source retry attempts so the read fails over.
        flaky.fail_on(
            "fetch_dataset_with_version", times=store.retry_policy.max_attempts
        )
        assert store.fetch_dataset("ds").edge_list() == graph.edge_list()
        assert store.replication_stats()["failover_reads"] >= 1
        assert store.replication_stats()["shard_errors"].get(primary, 0) >= 1
        # The fault rule is exhausted: the primary serves again.
        assert store.fetch_dataset("ds").edge_list() == graph.edge_list()

    def test_read_fails_over_when_the_primary_is_marked_down(self):
        store = ReplicatedShardedDataStore(num_shards=4, replicas=2)
        graph = cycle_graph(5)
        store.store_dataset("ds", graph)
        primary = store.replica_shards_for("ds")[0]
        store.mark_down(primary)
        assert store.fetch_dataset("ds").edge_list() == graph.edge_list()
        assert store.has_dataset("ds")
        stats = store.shard_stats()
        assert stats["per_shard"][primary]["marked_down"] is True
        assert primary in stats["replication"]["marked_down"]
        store.mark_up(primary)
        assert store.shard_stats()["replication"]["marked_down"] == []


class TestSpillTier:
    def test_spill_demotes_the_coldest_and_serves_through(self, tmp_path):
        store = ReplicatedShardedDataStore(
            num_shards=3, replicas=2, spill_dir=str(tmp_path)
        )
        graphs = {f"ds-{i}": star_graph(4 + i) for i in range(3)}
        for dataset_id, graph in graphs.items():
            store.store_dataset(dataset_id, graph)
        # Touch two of them so ds-1 is the coldest.
        store.fetch_dataset("ds-0")
        store.fetch_dataset("ds-2")
        spilled = store.spill(max_resident=2)
        assert spilled == ["ds-1"]
        assert store.spill_store.has_dataset("ds-1")
        assert _holders(store, "ds-1") == []
        # Reads fail over to the file tier; listings still include it.
        assert store.fetch_dataset("ds-1").edge_list() == graphs["ds-1"].edge_list()
        assert "ds-1" in store.list_datasets()
        compiled, version = store.fetch_compiled_with_version("ds-1")
        assert version == store.spill_store.dataset_version("ds-1")
        assert store.spill_stats()["spilled_datasets"] == 1
        # A re-upload promotes the dataset back onto the memory ring.
        store.store_dataset("ds-1", graphs["ds-1"])
        assert len(_holders(store, "ds-1")) == 2
        assert not store.spill_store.has_dataset("ds-1")

    def test_spilled_data_survives_a_restart(self, tmp_path):
        store = ReplicatedShardedDataStore(
            num_shards=3, replicas=2, spill_dir=str(tmp_path)
        )
        graph = reciprocal_communities_graph(2, 4, seed=5)
        store.store_dataset("cold", graph)
        store.spill(dataset_ids=["cold"])
        # A fresh store over the same directory (new process) recovers it.
        rebooted = ReplicatedShardedDataStore(
            num_shards=3, replicas=2, spill_dir=str(tmp_path)
        )
        recovered = rebooted.fetch_dataset("cold")
        assert recovered.edge_list() == graph.edge_list()
        assert recovered.labels() == graph.labels()

    def test_spill_validation(self, tmp_path):
        bare = ReplicatedShardedDataStore(num_shards=3, replicas=2)
        with pytest.raises(InvalidParameterError):
            bare.spill(max_resident=1)
        store = ReplicatedShardedDataStore(
            num_shards=3, replicas=2, spill_dir=str(tmp_path)
        )
        with pytest.raises(InvalidParameterError):
            store.spill()
        with pytest.raises(InvalidParameterError):
            store.spill(max_resident=1, dataset_ids=["x"])


class TestMaintenanceJobs:
    def test_replicate_repairs_copies_after_an_outage(self):
        backends = [DownShard(DataStore()) for _ in range(4)]
        store = ReplicatedShardedDataStore(shards=backends, replicas=2)
        graphs = {f"ds-{i}": cycle_graph(3 + i) for i in range(4)}
        for dataset_id, graph in graphs.items():
            store.store_dataset(dataset_id, graph)
        store.put_result("res", {"x": 1})
        # Take one shard down: reads fail over, and the repair re-replicates
        # the lost copies onto the surviving live successors.
        victim = _holders(store, "ds-0")[0]
        backends[int(victim.split("-")[1])].go_down()
        store.mark_down(victim)
        outcome = store.replicate()
        assert outcome["datasets_repaired"] > 0  # the down shard's copies
        assert outcome["underreplicated"] == 0  # ...restored among survivors
        for dataset_id in graphs:
            assert len(_holders(store, dataset_id)) == 2
        # The shard comes back empty (a replaced node): a rebalance restores
        # canonical placement with R copies of everything.
        index = int(victim.split("-")[1])
        backends[index] = DownShard(DataStore())
        store._backends[victim] = backends[index]  # swap in the replacement
        store.mark_up(victim)
        store.rebalance()
        for dataset_id, graph in graphs.items():
            holders = _holders(store, dataset_id)
            assert len(holders) == 2
            assert sorted(holders) == sorted(store.replica_shards_for(dataset_id))
            for shard_id in holders:
                copy = store.shard_stores()[shard_id].fetch_dataset(dataset_id)
                assert copy.edge_list() == graph.edge_list()
        assert len(_result_holders(store, "res")) == 2
        outcome = store.replicate()
        assert outcome["underreplicated"] == 0
        assert outcome["datasets_repaired"] == 0  # rebalance left nothing to fix

    def test_repair_converges_replica_versions_when_a_counter_ran_ahead(self):
        """A target whose counter moved past the authoritative version must
        not end up holding a *different* version than its siblings — and the
        repair must converge instead of re-copying on every scan."""
        store = ReplicatedShardedDataStore(num_shards=3, replicas=2)
        graph = cycle_graph(4)
        store.store_dataset("ds", graph)
        targets = store.replica_shards_for("ds")
        stray = store.shard_stores()[targets[1]]
        # Simulate drop churn on one replica: its copy is gone but its
        # counter ran ahead of the authoritative version.
        for _ in range(3):
            stray.drop_dataset("ds")
        assert stray.dataset_version("ds") > store.shard_stores()[
            targets[0]
        ].dataset_version("ds")
        outcome = store.replicate()
        assert outcome["datasets_repaired"] > 0
        versions = {
            shard_id: store.shard_stores()[shard_id].dataset_version("ds")
            for shard_id in targets
        }
        assert len(set(versions.values())) == 1, versions  # replicas agree
        # Converged: a second scan has nothing left to repair.
        assert store.replicate()["datasets_repaired"] == 0

    def test_jobs_emit_ordered_progress_and_honour_cancellation(self):
        store = ReplicatedShardedDataStore(num_shards=4, replicas=2)
        for index in range(5):
            store.store_dataset(f"ds-{index}", cycle_graph(3))
        job = JobRecord("maintenance", 0, description="storage replicate")
        store.replicate(job=job)
        events = job.events()
        assert events, "replicate must report progress"
        assert [event.seq for event in events] == list(range(1, len(events) + 1))
        assert all(event.type == "progress" for event in events)
        assert events[-1].payload["completed"] == events[-1].payload["total"]
        assert job.state is JobState.RUNNING  # the caller finishes the job
        # Progress folds into the projected counters, so listings show real
        # x/y progress for storage jobs instead of 0/0.
        summary = job.summary()
        assert summary["total_queries"] == events[-1].payload["total"] > 0
        assert summary["completed_queries"] == summary["total_queries"]

        # Cancellation at the first item boundary stops the migration early.
        cancel_job = JobRecord("maintenance-2", 0)
        cancel_job.subscribe(
            lambda event: event.type == "progress" and cancel_job.request_cancel()
        )
        store.replicate(job=cancel_job)
        progress = [e for e in cancel_job.events() if e.type == "progress"]
        assert len(progress) == 1
        assert cancel_job.cancel_requested

    def test_rebalance_restores_placement_and_copies_after_churn(self):
        store = ReplicatedShardedDataStore(num_shards=3, replicas=2)
        graphs = {f"ds-{i}": star_graph(3 + i) for i in range(6)}
        for dataset_id, graph in graphs.items():
            store.store_dataset(dataset_id, graph)
        store.add_shard()
        store.rebalance()
        for dataset_id in graphs:
            assert sorted(_holders(store, dataset_id)) == sorted(
                store.replica_shards_for(dataset_id)
            )
        removed = store.remove_shard("shard-0")
        assert isinstance(removed, list)
        for dataset_id, graph in graphs.items():
            holders = _holders(store, dataset_id)
            assert len(holders) == 2
            assert store.fetch_dataset(dataset_id).edge_list() == graph.edge_list()

    def test_remove_shard_refuses_to_drop_below_replica_count(self):
        store = ReplicatedShardedDataStore(num_shards=2, replicas=2)
        with pytest.raises(InvalidParameterError):
            store.remove_shard("shard-0")


class TestGatewayIntegration:
    @pytest.fixture
    def catalog(self, community_graph):
        catalog = DatasetCatalog()
        catalog.register_graph("toy", community_graph, description="communities")
        return catalog

    def test_gateway_builds_a_replicated_store(self, catalog, tmp_path):
        with ApiGateway(
            catalog=catalog, shards=4, replicas=2, spill_dir=tmp_path
        ) as gateway:
            assert isinstance(gateway.datastore, ReplicatedShardedDataStore)
            assert gateway.datastore.replicas == 2
            assert gateway.datastore.num_shards == 4
            comparison = gateway.run_queries(
                [{"dataset_id": "toy", "algorithm": "pagerank"}], synchronous=True
            )
            assert gateway.get_rankings(comparison)
            stats = gateway.get_platform_stats()
            assert stats["shards"]["replication"]["replicas"] == 2
            assert stats["shards"]["spill"]["enabled"] is True

    def test_gateway_storage_jobs_run_on_the_registry(self, catalog, tmp_path):
        with ApiGateway(
            catalog=catalog, shards=3, replicas=2, spill_dir=tmp_path
        ) as gateway:
            gateway.run_queries(
                [{"dataset_id": "toy", "algorithm": "pagerank"}], synchronous=True
            )
            job_id = gateway.replicate_storage(wait=True)
            events = gateway.get_events(job_id)
            kinds = [event["type"] for event in events]
            assert kinds[0] == "submitted"
            assert kinds[-1] == "task_done"
            assert "progress" in kinds
            assert gateway.get_status(job_id).state.value == "completed"
            listing = {
                row["comparison_id"]: row for row in gateway.list_comparisons()
            }
            assert listing[job_id]["description"] == "storage replicate"

            spill_id = gateway.spill_storage(max_resident=0, wait=True)
            assert gateway.get_status(spill_id).state.value == "completed"
            assert (
                gateway.get_platform_stats()["shards"]["spill"]["spilled_datasets"]
                >= 1
            )
            rebalance_id = gateway.rebalance_storage(wait=True)
            assert gateway.get_status(rebalance_id).state.value == "completed"
            # Cancelling a finished maintenance job is refused, not an error.
            outcome = gateway.cancel_comparison(job_id)
            assert outcome["cancelled"] is False

    def test_storage_jobs_require_the_right_topology(self, catalog, tmp_path):
        # An explicit plain datastore, so the REPRO_TEST_SHARDS/REPLICAS
        # conftest override cannot turn this gateway into a sharded one.
        with ApiGateway(catalog=catalog, datastore=DataStore()) as gateway:
            with pytest.raises(InvalidParameterError):
                gateway.replicate_storage()
            with pytest.raises(InvalidParameterError):
                gateway.rebalance_storage()
        with ApiGateway(catalog=catalog, shards=3, replicas=2) as gateway:
            with pytest.raises(InvalidParameterError):
                gateway.spill_storage(max_resident=1)  # no spill tier
        with ApiGateway(
            catalog=catalog, shards=3, replicas=2, spill_dir=tmp_path
        ) as gateway:
            with pytest.raises(InvalidParameterError):
                gateway.spill_storage()  # neither policy
            with pytest.raises(InvalidParameterError):
                gateway.spill_storage(max_resident=1, dataset_ids=["toy"])


class TestBoundedTaskTable:
    @pytest.fixture
    def catalog(self, community_graph):
        catalog = DatasetCatalog()
        catalog.register_graph("toy", community_graph, description="communities")
        return catalog

    def test_terminal_tasks_age_out_and_permalinks_still_resolve(self, catalog):
        with ApiGateway(catalog=catalog, max_finished_tasks=2) as gateway:
            comparisons = [
                gateway.run_queries(
                    [
                        {
                            "dataset_id": "toy",
                            "algorithm": "personalized-pagerank",
                            "source": f"c{index % 4}-n{index % 8}",
                        }
                    ],
                    synchronous=True,
                )
                for index in range(5)
            ]
            expected = {
                comparison: gateway.get_rankings(comparison)[0].to_dict()
                for comparison in comparisons
            }
            # The table is bounded: eviction runs at each registration, so at
            # most max_finished_tasks + the newest submission stay hot — it
            # can never grow with lifetime submission count.
            assert len(gateway.scheduler.list_tasks()) <= 3
            table_stats = gateway.get_platform_stats()["tasks"]
            assert table_stats["tasks"] <= 3
            assert table_stats["evicted"] >= 2
            assert table_stats["max_finished_tasks"] == 2

            # Simulate a long-lived server where the job registry also aged
            # the records out, so every lookup goes through the datastore.
            gateway.scheduler.jobs._jobs.clear()

            for comparison in comparisons:
                progress = gateway.get_status(comparison)
                assert progress.state.value == "completed"
                assert progress.completed_queries == progress.total_queries == 1
                rankings = gateway.get_rankings(comparison)
                assert [r.to_dict() for r in rankings] == [expected[comparison]]
                table = gateway.get_comparison_table(comparison, k=3)
                assert table.columns == ["Pers. PageRank"]
                assert table.rows

    def test_evicted_failed_tasks_expire_for_real(self, catalog):
        with ApiGateway(catalog=catalog, max_finished_tasks=1) as gateway:
            failed = gateway.run_queries(
                [
                    {
                        "dataset_id": "toy",
                        "algorithm": "personalized-pagerank",
                        "source": "no-such-node",
                    }
                ],
                synchronous=True,
            )
            for _ in range(2):  # push the failed task out of the table
                gateway.run_queries(
                    [{"dataset_id": "toy", "algorithm": "pagerank"}],
                    synchronous=True,
                )
            gateway.scheduler.jobs._jobs.clear()
            # A failed task stored no result payload: once evicted, its
            # permalink genuinely expires instead of resolving to junk.
            with pytest.raises(TaskNotFoundError):
                gateway.get_status(failed)

    def test_active_tasks_are_never_evicted(self, catalog):
        with ApiGateway(catalog=catalog, max_finished_tasks=1) as gateway:
            ids = [
                gateway.run_queries(
                    [{"dataset_id": "toy", "algorithm": "pagerank"}],
                    synchronous=True,
                )
                for _ in range(3)
            ]
            # The newest terminal task survives in the table.
            assert gateway.scheduler.get_task(ids[-1]).task_id == ids[-1]


# --------------------------------------------------------------------------- #
# read-path version quorum
# --------------------------------------------------------------------------- #
class TestQuorumReads:
    """Digest-first quorum reads: a known-stale replica is never served."""

    def _stale_primary_store(self, *, read_consistency):
        backends = [FlakyStore(DataStore()) for _ in range(4)]
        store = ReplicatedShardedDataStore(
            shards=backends, replicas=2, read_consistency=read_consistency
        )
        old = cycle_graph(4)
        fresh = star_graph(6)
        store.store_dataset("ds", old)
        primary = stale_primary(store, "ds", fresh)
        return store, primary, old, fresh

    def test_invalid_modes_are_rejected(self):
        with pytest.raises(InvalidParameterError):
            ReplicatedShardedDataStore(
                num_shards=3, replicas=2, read_consistency="all"
            )
        store = ReplicatedShardedDataStore(num_shards=3, replicas=2)
        assert store.read_consistency == "one"
        with pytest.raises(InvalidParameterError):
            store.set_read_consistency("most")
        store.set_read_consistency("quorum")
        assert store.read_consistency == "quorum"
        assert store.replication_stats()["read_consistency"] == "quorum"

    def test_one_mode_detects_but_serves_the_stale_primary(self):
        store, primary, old, fresh = self._stale_primary_store(
            read_consistency="one"
        )
        # The documented pre-quorum gap: the recovered primary answers first
        # with the pre-outage copy, which is detected — and served anyway.
        graph, version = store.fetch_dataset_with_version("ds")
        assert version == 1
        assert graph.edge_list() == old.edge_list()
        stats = store.replication_stats()
        assert stats["stale_reads"] >= 1
        assert stats["stale_reads_prevented"] == 0
        assert stats["digest_reads"] == 0

    def test_quorum_read_never_serves_below_the_version_floor(self):
        store, primary, old, fresh = self._stale_primary_store(
            read_consistency="quorum"
        )
        graph, version = store.fetch_dataset_with_version("ds")
        assert version == 2
        assert graph.edge_list() == fresh.edge_list()
        stats = store.replication_stats()
        assert stats["digest_reads"] >= 1
        assert stats["stale_reads"] >= 1
        assert stats["stale_reads_prevented"] >= 1
        assert stats["version_conflicts_resolved"] >= 1

    def test_quorum_covers_the_unversioned_and_compiled_surfaces(self):
        store, primary, old, fresh = self._stale_primary_store(
            read_consistency="quorum"
        )
        # Plain fetch_dataset and the compiled-artifact path route through
        # the versioned fetch, so the floor check covers them too.
        assert store.fetch_dataset("ds").edge_list() == fresh.edge_list()
        _, compiled_version = store.fetch_compiled_with_version("ds")
        assert compiled_version == 2
        assert store.replication_stats()["stale_reads_prevented"] >= 1

    def test_quorum_divergence_is_flagged_and_repaired(self):
        store, primary, old, fresh = self._stale_primary_store(
            read_consistency="quorum"
        )
        store.fetch_dataset("ds")
        assert store.pending_read_repairs() >= 1
        store.drain_read_repairs()
        backend = store.shard_stores()[primary]
        assert backend.dataset_version("ds") == 2
        assert backend.fetch_dataset("ds").edge_list() == fresh.edge_list()

    def test_quorum_refuses_when_only_stale_copies_are_reachable(self):
        store, primary, old, fresh = self._stale_primary_store(
            read_consistency="quorum"
        )
        for shard_id in _holders(store, "ds"):
            if shard_id != primary:
                store.shard_stores()[shard_id].go_down()
        # Every reachable copy sits below the floor: refusing beats lying.
        with pytest.raises(StorageError):
            store.fetch_dataset_with_version("ds")
        assert store.replication_stats()["stale_reads_prevented"] >= 1


class TestDeadlineAttribution:
    """A caller's expired clock must never feed shard health streaks."""

    def test_expired_deadline_against_a_healthy_ring_moves_no_streaks(self):
        store = ReplicatedShardedDataStore(
            num_shards=4, replicas=2, read_consistency="quorum"
        )
        store.store_dataset("ds", cycle_graph(4))
        expired = Deadline.from_ms(1)
        time.sleep(0.005)
        with deadline_scope(expired):
            with pytest.raises(DeadlineExceededError):
                store.fetch_dataset("ds")
        # The first digest hop is always consulted; the expiry raised on the
        # hop after it is the caller's clock, not a shard fault — zero
        # streak/breaker movement on the healthy ring.
        assert store.health_stats()["consecutive_failures"] == {}
        assert store.replication_stats()["shard_errors"] == {}
        for breaker in store.breaker_stats().values():
            assert breaker["state"] == "closed"
            assert breaker["opens"] == 0

    def test_mid_attempt_deadline_error_is_reraised_not_attributed(self):
        backends = [FlakyStore(DataStore()) for _ in range(4)]
        store = ReplicatedShardedDataStore(shards=backends, replicas=2)
        store.store_dataset("ds", cycle_graph(4))
        primary = store.replica_shards_for("ds")[0]
        store.shard_stores()[primary].fail_on(
            "fetch_dataset_with_version",
            times=1,
            error=DeadlineExceededError("caller clock ran out mid-attempt"),
        )
        with pytest.raises(DeadlineExceededError):
            store.fetch_dataset("ds")
        assert store.replication_stats()["shard_errors"].get(primary, 0) == 0
        assert store.health_stats()["consecutive_failures"] == {}


class TestConcurrentReuploads:
    """CAS version reservations order racing re-uploads of one dataset."""

    def test_racing_reuploads_mint_distinct_versions_and_converge(self):
        store = ReplicatedShardedDataStore(
            num_shards=4, replicas=2, read_consistency="quorum"
        )
        store.store_dataset("ds", cycle_graph(3))
        graphs = [cycle_graph(5), star_graph(7), cycle_graph(8)]
        barrier = threading.Barrier(len(graphs))
        errors = []

        def upload(graph):
            barrier.wait()
            try:
                store.store_dataset("ds", graph)
            except StorageError as exc:  # pragma: no cover - would fail below
                errors.append(exc)

        threads = [
            threading.Thread(target=upload, args=(graph,)) for graph in graphs
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Three writers after v1 mint exactly v2, v3 and v4; every replica
        # converges on v4 with the max-minted writer's graph — no diverged
        # versions, no resurrected older content above the winner.
        holders = _holders(store, "ds")
        assert len(holders) == store.replicas
        versions = {
            store.shard_stores()[shard_id].dataset_version("ds")
            for shard_id in holders
        }
        assert versions == {4}
        contents = {
            tuple(sorted(store.shard_stores()[shard_id].fetch_dataset("ds").edge_list()))
            for shard_id in holders
        }
        assert len(contents) == 1
        assert contents.pop() in {
            tuple(sorted(graph.edge_list())) for graph in graphs
        }
        graph, version = store.fetch_dataset_with_version("ds")
        assert version == 4

    def test_failed_quorum_write_releases_its_version_reservation(self):
        backends = [FlakyStore(DataStore()) for _ in range(3)]
        store = ReplicatedShardedDataStore(shards=backends, replicas=2)
        store.store_dataset("ds", cycle_graph(3))
        for backend in backends:
            backend.go_down()
        with pytest.raises(StorageError):
            store.store_dataset("ds", star_graph(5))
        for backend in backends:
            backend.come_up()
        # The failed write landed nothing and released its reservation: the
        # next upload mints v2, no phantom version gaps the sequence.
        store.store_dataset("ds", star_graph(5))
        assert store.fetch_dataset_with_version("ds")[1] == 2


class TestGatewayReadConsistency:
    @pytest.fixture
    def catalog(self, community_graph):
        catalog = DatasetCatalog()
        catalog.register_graph("toy", community_graph, description="communities")
        return catalog

    def test_gateway_wires_the_knob_and_surfaces_the_counters(self, catalog):
        with ApiGateway(
            catalog=catalog,
            replicas=2,
            read_consistency="quorum",
            probe_interval_seconds=0,
        ) as gateway:
            assert gateway.datastore.read_consistency == "quorum"
            comparison = gateway.run_queries(
                [{"dataset_id": "toy", "algorithm": "pagerank"}], synchronous=True
            )
            assert gateway.get_rankings(comparison)
            stats = gateway.get_platform_stats()
            replication = stats["shards"]["replication"]
            assert replication["read_consistency"] == "quorum"
            assert replication["digest_reads"] >= 1
            storage = stats["overload"]["storage"]
            assert storage["read_consistency"] == "quorum"
            assert storage["stale_reads_prevented"] == 0
            rendered = gateway.render_metrics()
            assert "repro_storage_digest_reads" in rendered
            assert "repro_storage_stale_reads_prevented" in rendered

    def test_read_consistency_requires_a_replicated_store(self, catalog):
        # Pin an explicit single store so the CI topology fixtures (which
        # swap the *default* datastore) cannot turn this into a replicated
        # gateway.
        with pytest.raises(InvalidParameterError):
            ApiGateway(
                catalog=catalog, datastore=DataStore(), read_consistency="quorum"
            )
