"""Unit tests for :mod:`repro.algorithms.cyclerank`."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.algorithms.cyclerank import CycleRankStatistics, cyclerank
from repro.exceptions import InvalidParameterError, NodeNotFoundError
from repro.graph.components import strongly_connected_component_of
from repro.graph.digraph import DirectedGraph
from repro.graph.generators import complete_graph, cycle_graph, layered_dag
from repro.scoring import ConstantScoring, LinearScoring


class TestBasicProperties:
    def test_reference_node_has_maximum_score(self, two_triangles):
        ranking = cyclerank(two_triangles, "R", max_cycle_length=3)
        assert ranking.top_labels(1) == ["R"]
        assert ranking.score_of("R") == max(ranking.scores)

    def test_scores_are_non_negative(self, community_graph):
        ranking = cyclerank(community_graph, 0, max_cycle_length=3)
        assert all(score >= 0 for score in ranking.scores)

    def test_dag_gives_zero_to_everything(self):
        graph = layered_dag([3, 3, 3], seed=5)
        ranking = cyclerank(graph, 0, max_cycle_length=5)
        assert ranking.total() == 0.0

    def test_nodes_outside_reference_scc_score_zero(self, mixed_graph):
        ranking = cyclerank(mixed_graph, "X", max_cycle_length=4)
        scc = strongly_connected_component_of(mixed_graph, "X")
        for node in mixed_graph.nodes():
            if node not in scc:
                assert ranking.score_of(node) == 0.0

    def test_positive_score_means_node_on_cycle_with_reference(self, community_graph):
        ranking = cyclerank(community_graph, 0, max_cycle_length=3)
        scc = strongly_connected_component_of(community_graph, 0)
        for node in community_graph.nodes():
            if ranking.score_of(node) > 0:
                assert node in scc

    def test_triangle_scores_match_equation_one(self, triangle):
        # One cycle of length 3 through every node: each node scores e^-3.
        ranking = cyclerank(triangle, "A", max_cycle_length=3)
        for label in ["A", "B", "C"]:
            assert ranking.score_of(label) == pytest.approx(math.exp(-3))

    def test_reciprocal_star_hub_score(self, reciprocal_star):
        # The hub lies on five 2-cycles, each leaf on exactly one.
        ranking = cyclerank(reciprocal_star, "H", max_cycle_length=2)
        assert ranking.score_of("H") == pytest.approx(5 * math.exp(-2))
        for leaf in ["A", "B", "C", "D", "E"]:
            assert ranking.score_of(leaf) == pytest.approx(math.exp(-2))

    def test_complete_graph_scores_match_closed_form(self):
        # In K_4 with K=3: through the reference there are 3 two-cycles and
        # 6 three-cycles.  Reference score = 3e^-2 + 6e^-3; every other node
        # lies on 1 two-cycle and 4 three-cycles (2 per ordering) -> e^-2 + 4e^-3.
        graph = complete_graph(4)
        ranking = cyclerank(graph, 0, max_cycle_length=3)
        assert ranking.score_of(0) == pytest.approx(3 * math.exp(-2) + 6 * math.exp(-3))
        for node in range(1, 4):
            assert ranking.score_of(node) == pytest.approx(math.exp(-2) + 4 * math.exp(-3))


class TestParameters:
    def test_scores_monotonically_non_decreasing_in_k(self, community_graph):
        small = cyclerank(community_graph, 0, max_cycle_length=2)
        medium = cyclerank(community_graph, 0, max_cycle_length=3)
        large = cyclerank(community_graph, 0, max_cycle_length=4)
        assert np.all(medium.scores >= small.scores - 1e-12)
        assert np.all(large.scores >= medium.scores - 1e-12)

    def test_directed_cycle_needs_full_k(self):
        graph = cycle_graph(4)
        assert cyclerank(graph, 0, max_cycle_length=3).total() == 0.0
        assert cyclerank(graph, 0, max_cycle_length=4).total() > 0.0

    def test_scoring_function_changes_scores_not_support(self, community_graph):
        exponential = cyclerank(community_graph, 0, max_cycle_length=3, scoring="exp")
        constant = cyclerank(community_graph, 0, max_cycle_length=3, scoring=ConstantScoring())
        assert (exponential.scores > 0).tolist() == (constant.scores > 0).tolist()
        assert constant.total() > exponential.total()

    def test_scoring_by_name_and_instance_agree(self, two_triangles):
        by_name = cyclerank(two_triangles, "R", max_cycle_length=3, scoring="lin")
        by_instance = cyclerank(two_triangles, "R", max_cycle_length=3, scoring=LinearScoring())
        assert np.allclose(by_name.scores, by_instance.scores)

    def test_constant_scoring_counts_cycles(self, two_triangles):
        ranking = cyclerank(two_triangles, "R", max_cycle_length=3, scoring="const")
        assert ranking.score_of("R") == pytest.approx(2.0)
        assert ranking.score_of("A") == pytest.approx(1.0)

    def test_invalid_k_rejected(self, triangle):
        with pytest.raises(InvalidParameterError):
            cyclerank(triangle, "A", max_cycle_length=1)
        with pytest.raises(InvalidParameterError):
            cyclerank(triangle, "A", max_cycle_length=0)

    def test_unknown_scoring_rejected(self, triangle):
        with pytest.raises(InvalidParameterError):
            cyclerank(triangle, "A", scoring="no-such-sigma")

    def test_unknown_reference_rejected(self, triangle):
        with pytest.raises(NodeNotFoundError):
            cyclerank(triangle, "missing")


class TestStatisticsAndProvenance:
    def test_statistics_populated(self, two_triangles):
        statistics = CycleRankStatistics()
        cyclerank(two_triangles, "R", max_cycle_length=3, statistics=statistics)
        assert statistics.total_cycles == 2
        assert statistics.cycles_by_length == {3: 2}
        assert statistics.nodes_on_cycles == 5

    def test_provenance_fields(self, two_triangles):
        ranking = cyclerank(two_triangles, "R", max_cycle_length=4, scoring="exp")
        assert ranking.algorithm == "CycleRank"
        assert ranking.reference == "R"
        assert ranking.parameters == {"k": 4, "sigma": "exp"}
        assert ranking.graph_name == "two-triangles"

    def test_deterministic(self, community_graph):
        first = cyclerank(community_graph, 5, max_cycle_length=3)
        second = cyclerank(community_graph, 5, max_cycle_length=3)
        assert np.array_equal(first.scores, second.scores)


class TestQualitativeBehaviour:
    def test_ignores_popular_but_unreciprocated_nodes(self):
        """The motivating example of the paper: a node linked from the
        reference that never links back gets no CycleRank score, no matter how
        globally popular it is."""
        graph = DirectedGraph()
        # A tight topical community around the reference.
        for first, second in [("ref", "peer1"), ("peer1", "peer2"), ("peer2", "ref")]:
            graph.add_edge(first, second)
            graph.add_edge(second, first)
        # A hugely popular hub that everything links to (including the
        # reference) but that links back to nothing.
        for node in ["ref", "peer1", "peer2", "other1", "other2", "other3"]:
            graph.add_edge(node, "hub")
        ranking = cyclerank(graph, "ref", max_cycle_length=4)
        assert ranking.score_of("hub") == 0.0
        assert ranking.score_of("peer1") > 0.0
        assert ranking.score_of("peer2") > 0.0

    def test_topical_community_outranks_rest(self, small_enwiki):
        ranking = cyclerank(small_enwiki, "Freddie Mercury", max_cycle_length=3)
        top = ranking.top_labels(5, exclude=("Freddie Mercury",))
        topical = {
            "Queen (band)", "Brian May", "Roger Taylor", "John Deacon",
            "Bohemian Rhapsody", "A Night at the Opera",
        }
        assert set(top) <= topical
