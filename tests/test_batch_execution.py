"""Acceptance tests for the batched execution engine and the result cache.

Covers the PR's headline guarantees: batched PPR over 32 seeds on a
10k-node generated graph is at least 4x faster than 32 sequential
single-seed calls, a repeated identical query is served from the cache
without re-invoking the algorithm (asserted via the cache counters), and the
scheduler dispatches one batch per (dataset, algorithm, parameters) group.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.algorithms.personalized_pagerank import (
    personalized_pagerank,
    personalized_pagerank_batch,
)
from repro.datasets.catalog import DatasetCatalog
from repro.exceptions import ExecutorError
from repro.graph.generators import preferential_attachment_graph
from repro.platform.datastore import DataStore
from repro.platform.executor import ExecutorNode
from repro.platform.gateway import ApiGateway
from repro.platform.tasks import Query

NUM_SEEDS = 32
NUM_NODES = 10_000


@pytest.fixture(scope="module")
def large_graph():
    return preferential_attachment_graph(NUM_NODES, 3, seed=11, name="bench-10k")


class TestBatchSpeedup:
    # Wall-clock ratios are meaningless on oversubscribed shared CI runners;
    # the guarantee is asserted on dedicated hardware (local / benchmark runs).
    @pytest.mark.skipif(
        os.environ.get("CI") == "true",
        reason="timing ratio assertion is unreliable on shared CI runners",
    )
    def test_batched_ppr_is_at_least_4x_faster_than_sequential(self, large_graph):
        seeds = list(range(0, NUM_SEEDS * 100, 100))
        # Warm-up: pay scipy's lazy imports outside the timed sections.
        personalized_pagerank(large_graph, seeds[0])

        batch_times = []
        for _ in range(3):
            started = time.perf_counter()
            batched = personalized_pagerank_batch(large_graph, seeds)
            batch_times.append(time.perf_counter() - started)
        sequential_times = []
        for _ in range(2):
            started = time.perf_counter()
            singles = [personalized_pagerank(large_graph, seed) for seed in seeds]
            sequential_times.append(time.perf_counter() - started)

        # The bar was 5x when single-query runs rebuilt the CSR with a
        # per-node Python loop; the array-based conversion sped the
        # sequential baseline up by ~30%, so the same absolute batch
        # performance now measures as a smaller ratio.
        speedup = min(sequential_times) / min(batch_times)
        assert speedup >= 4.0, (
            f"batched PPR over {NUM_SEEDS} seeds is only {speedup:.1f}x faster "
            f"(batch {min(batch_times):.3f}s vs sequential {min(sequential_times):.3f}s)"
        )
        # The speedup must not come at the cost of accuracy.
        for batch_ranking, single_ranking in zip(batched, singles):
            assert np.allclose(batch_ranking.scores, single_ranking.scores, atol=1e-8)


@pytest.fixture
def toy_gateway(two_triangles):
    catalog = DatasetCatalog()
    catalog.register_graph("toy", two_triangles, description="two triangles")
    with ApiGateway(catalog=catalog, num_workers=2) as gateway:
        yield gateway


class TestCachedRepeatQueries:
    def test_repeat_query_is_served_from_cache_without_executing(self, toy_gateway):
        query = [
            {"dataset_id": "toy", "algorithm": "personalized-pagerank", "source": "R"}
        ]
        first = toy_gateway.run_queries(query, synchronous=True)
        stats = toy_gateway.get_platform_stats()
        assert stats["cache"]["misses"] >= 1
        executed_after_first = toy_gateway.executor_pool.total_executed()
        hits_before = stats["cache"]["hits"]

        second = toy_gateway.run_queries(query, synchronous=True)
        stats = toy_gateway.get_platform_stats()
        assert stats["cache"]["hits"] == hits_before + 1
        assert toy_gateway.executor_pool.total_executed() == executed_after_first
        assert np.array_equal(
            toy_gateway.get_rankings(first)[0].scores,
            toy_gateway.get_rankings(second)[0].scores,
        )


class TestSchedulerBatching:
    def test_same_parameter_queries_dispatch_as_one_batch(self, toy_gateway):
        sources = ["R", "A", "B", "C"]
        queries = [
            {"dataset_id": "toy", "algorithm": "personalized-pagerank", "source": source}
            for source in sources
        ]
        comparison_id = toy_gateway.run_queries(queries, synchronous=False)
        toy_gateway.wait_for(comparison_id, timeout_seconds=30.0)
        stats = toy_gateway.get_platform_stats()
        assert stats["batches"]["batches"] == 1
        assert stats["batches"]["batched_queries"] == len(sources)
        assert stats["batches"]["largest_batch"] == len(sources)
        rankings = toy_gateway.get_rankings(comparison_id)
        assert [ranking.reference for ranking in rankings] == sources

    def test_duplicate_queries_within_a_task_compute_once(self, toy_gateway):
        queries = [
            {"dataset_id": "toy", "algorithm": "personalized-pagerank", "source": "R"}
            for _ in range(4)
        ]
        comparison_id = toy_gateway.run_queries(queries, synchronous=False)
        toy_gateway.wait_for(comparison_id, timeout_seconds=30.0)
        stats = toy_gateway.get_platform_stats()
        assert stats["batches"]["batched_queries"] == 1
        rankings = toy_gateway.get_rankings(comparison_id)
        assert len(rankings) == 4
        reference_scores = rankings[0].scores
        for ranking in rankings[1:]:
            assert np.array_equal(ranking.scores, reference_scores)

    def test_distinct_parameter_groups_get_distinct_batches(self, toy_gateway):
        queries = [
            {"dataset_id": "toy", "algorithm": "personalized-pagerank", "source": "R",
             "parameters": {"alpha": 0.5}},
            {"dataset_id": "toy", "algorithm": "personalized-pagerank", "source": "A",
             "parameters": {"alpha": 0.5}},
            {"dataset_id": "toy", "algorithm": "personalized-pagerank", "source": "R",
             "parameters": {"alpha": 0.9}},
        ]
        comparison_id = toy_gateway.run_queries(queries, synchronous=False)
        toy_gateway.wait_for(comparison_id, timeout_seconds=30.0)
        stats = toy_gateway.get_platform_stats()
        assert stats["batches"]["batches"] == 2
        assert stats["batches"]["batched_queries"] == 3

    def test_synchronous_path_batches_too(self, toy_gateway):
        queries = [
            {"dataset_id": "toy", "algorithm": "personalized-pagerank", "source": source}
            for source in ["R", "A", "B"]
        ]
        comparison_id = toy_gateway.run_queries(queries, synchronous=True)
        stats = toy_gateway.get_platform_stats()
        assert stats["batches"]["batches"] == 1
        assert stats["batches"]["largest_batch"] == 3
        assert len(toy_gateway.get_rankings(comparison_id)) == 3


class TestExecutorBatchValidation:
    def test_mixed_algorithm_batches_are_rejected(self, two_triangles):
        datastore = DataStore()
        node = ExecutorNode(datastore)
        queries = [
            Query(dataset_id="toy", algorithm="personalized-pagerank", source="R"),
            Query(dataset_id="toy", algorithm="cyclerank", source="R"),
        ]
        with pytest.raises(ExecutorError):
            node.execute_batch(queries, two_triangles)

    def test_empty_batch_is_rejected(self, two_triangles):
        node = ExecutorNode(DataStore())
        with pytest.raises(ExecutorError):
            node.execute_batch([], two_triangles)


class TestBatchFailureIsolation:
    """One bad query in a batch must not poison its sibling queries."""

    def test_async_batch_with_bad_source_degrades_to_per_query(self, toy_gateway):
        queries = [
            {"dataset_id": "toy", "algorithm": "personalized-pagerank", "source": "R"},
            {"dataset_id": "toy", "algorithm": "personalized-pagerank", "source": "NoSuchNode"},
        ]
        comparison_id = toy_gateway.run_queries(queries, synchronous=False)
        toy_gateway.wait_for(comparison_id, timeout_seconds=30.0)
        task = toy_gateway.get_task(comparison_id)
        assert task.state.value == "failed"
        assert "NoSuchNode" in (task.error or "")
        # The healthy sibling was still computed and cached, so a follow-up
        # task asking only for it completes from cache without dispatching.
        executed = toy_gateway.executor_pool.total_executed()
        follow_up = toy_gateway.run_queries(
            [{"dataset_id": "toy", "algorithm": "personalized-pagerank", "source": "R"}],
            synchronous=False,
        )
        toy_gateway.wait_for(follow_up, timeout_seconds=30.0)
        assert toy_gateway.get_task(follow_up).state.value == "completed"
        assert toy_gateway.executor_pool.total_executed() == executed
        assert toy_gateway.get_rankings(follow_up)[0].reference == "R"

    def test_sync_batch_with_bad_source_degrades_to_per_query(self, toy_gateway):
        queries = [
            {"dataset_id": "toy", "algorithm": "personalized-pagerank", "source": "A"},
            {"dataset_id": "toy", "algorithm": "personalized-pagerank", "source": "AlsoMissing"},
        ]
        comparison_id = toy_gateway.run_queries(queries, synchronous=True)
        task = toy_gateway.get_task(comparison_id)
        assert task.state.value == "failed"
        executed = toy_gateway.executor_pool.total_executed()
        follow_up = toy_gateway.run_queries(
            [{"dataset_id": "toy", "algorithm": "personalized-pagerank", "source": "A"}],
            synchronous=True,
        )
        assert toy_gateway.get_task(follow_up).state.value == "completed"
        assert toy_gateway.executor_pool.total_executed() == executed


def _register_fallback_ppr(name: str):
    """Register a test-only personalized algorithm with no batch kernel.

    Every built-in registry algorithm now ships a native batch kernel, so
    the fallback path is exercised through a user-registered stand-in.
    """
    from repro.algorithms import registry as algorithm_registry
    from repro.algorithms.base import Algorithm, AlgorithmSpec

    class _FallbackPPR(Algorithm):
        spec = AlgorithmSpec(
            name=name,
            display_name="Fallback PPR",
            personalized=True,
            parameters=(),
            description="test-only algorithm without a native batch kernel",
        )

        def _execute(self, graph, *, source, parameters):
            return personalized_pagerank(graph, source)

    return algorithm_registry.register_algorithm(_FallbackPPR(), replace=True)


class TestFallbackParallelism:
    def test_native_batch_flag_detects_overrides(self):
        from repro.algorithms import registry as algorithm_registry
        from repro.algorithms.registry import get_algorithm

        # Every registry algorithm now carries a native batch kernel
        # (globals batch trivially by computing once and sharing).
        assert get_algorithm("personalized-pagerank").has_native_batch
        assert get_algorithm("personalized-cheirank").has_native_batch
        assert get_algorithm("cyclerank").has_native_batch
        assert get_algorithm("personalized-hits").has_native_batch
        assert get_algorithm("personalized-katz").has_native_batch
        # The flag still reports False for algorithms without an override.
        _register_fallback_ppr("fallback-flag-probe")
        try:
            assert not get_algorithm("fallback-flag-probe").has_native_batch
        finally:
            algorithm_registry._REGISTRY.pop("fallback-flag-probe", None)

    def test_fallback_algorithm_queries_spread_across_the_pool(self, toy_gateway):
        # An algorithm without a native batch kernel: a grouped dispatch
        # would serialise the queries on one worker, so the scheduler submits
        # them individually (visible as N batches of size 1).
        from repro.algorithms import registry as algorithm_registry

        _register_fallback_ppr("fallback-ppr")
        try:
            sources = ["R", "A", "B", "C"]
            queries = [
                {"dataset_id": "toy", "algorithm": "fallback-ppr", "source": source}
                for source in sources
            ]
            comparison_id = toy_gateway.run_queries(queries, synchronous=False)
            toy_gateway.wait_for(comparison_id, timeout_seconds=30.0)
            assert toy_gateway.get_task(comparison_id).state.value == "completed"
            stats = toy_gateway.get_platform_stats()
            assert stats["batches"]["batches"] == len(sources)
            assert stats["batches"]["largest_batch"] == 1
            assert [r.reference for r in toy_gateway.get_rankings(comparison_id)] == sources
        finally:
            algorithm_registry._REGISTRY.pop("fallback-ppr", None)


class TestMiscountingBatchKernel:
    def test_wrong_result_count_raises_instead_of_truncating(self, two_triangles):
        from repro.algorithms.base import Algorithm, AlgorithmSpec
        from repro.algorithms import registry as algorithm_registry

        class _Miscounting(Algorithm):
            spec = AlgorithmSpec(
                name="miscounting-batch",
                display_name="Miscounting",
                personalized=True,
                parameters=(),
                description="test-only kernel returning too few rankings",
            )

            def _execute(self, graph, *, source, parameters):
                raise AssertionError("unused")

            def _execute_batch(self, graph, *, sources, parameters):
                return []  # off by len(sources)

        algorithm_registry.register_algorithm(_Miscounting(), replace=True)
        try:
            node = ExecutorNode(DataStore())
            queries = [
                Query(dataset_id="toy", algorithm="miscounting-batch", source="R"),
                Query(dataset_id="toy", algorithm="miscounting-batch", source="A"),
            ]
            with pytest.raises(ExecutorError, match="returned 0 rankings"):
                node.execute_batch(queries, two_triangles)
        finally:
            algorithm_registry._REGISTRY.pop("miscounting-batch", None)


class TestRetryUsesTheRightGraph:
    def test_failed_batch_retry_runs_against_its_own_dataset(self, two_triangles, triangle):
        # A task spanning two datasets whose first group fails: the per-query
        # retry must run against the group's own graph, not whatever graph
        # the submit loop last fetched.  The kernel sleeps before failing so
        # the batch deterministically fails *after* the submit loop has moved
        # on to the second dataset (the exact window of the closure bug).
        from repro.algorithms import registry as algorithm_registry
        from repro.algorithms.base import Algorithm, AlgorithmSpec
        from repro.algorithms.personalized_pagerank import personalized_pagerank
        from repro.exceptions import NodeNotFoundError

        class _SlowFailingPPR(Algorithm):
            spec = AlgorithmSpec(
                name="slow-failing-ppr",
                display_name="Slow PPR",
                personalized=True,
                parameters=(),
                description="test-only kernel that fails a batch slowly",
            )

            def _execute(self, graph, *, source, parameters):
                return personalized_pagerank(graph, source)

            def _execute_batch(self, graph, *, sources, parameters):
                time.sleep(0.2)
                for source in sources:
                    if not graph.has_label(source):
                        raise NodeNotFoundError(source)
                return [self._execute(graph, source=s, parameters=parameters) for s in sources]

        algorithm_registry.register_algorithm(_SlowFailingPPR(), replace=True)
        try:
            catalog = DatasetCatalog()
            catalog.register_graph("first", two_triangles, description="two triangles")
            catalog.register_graph("second", triangle, description="triangle")
            with ApiGateway(catalog=catalog, num_workers=2) as gateway:
                queries = [
                    {"dataset_id": "first", "algorithm": "slow-failing-ppr", "source": "R"},
                    {"dataset_id": "first", "algorithm": "slow-failing-ppr", "source": "Missing"},
                    {"dataset_id": "second", "algorithm": "slow-failing-ppr", "source": "A"},
                ]
                comparison_id = gateway.run_queries(queries, synchronous=False)
                gateway.wait_for(comparison_id, timeout_seconds=30.0)
                task = gateway.get_task(comparison_id)
                assert task.state.value == "failed"  # the Missing source
                deadline = time.monotonic() + 10.0
                while 0 not in task.rankings() and time.monotonic() < deadline:
                    time.sleep(0.01)
                rankings = task.rankings()
                # The healthy query of the failed group was retried on *its* graph.
                assert 0 in rankings
                assert rankings[0].graph_name == "two-triangles"
                assert len(rankings[0]) == two_triangles.number_of_nodes()
        finally:
            algorithm_registry._REGISTRY.pop("slow-failing-ppr", None)


class TestProcessPoolBitIdentity:
    """The process executor tier is a pure transport: same bits, other core."""

    def test_gateway_rankings_identical_across_executor_modes(self, two_triangles):
        def run_all(executor_mode):
            catalog = DatasetCatalog()
            catalog.register_graph("toy", two_triangles, description="two triangles")
            with ApiGateway(
                catalog=catalog, executor_mode=executor_mode, num_workers=2
            ) as gateway:
                queries = [
                    {"dataset_id": "toy", "algorithm": "pagerank"},
                    {"dataset_id": "toy", "algorithm": "cyclerank",
                     "source": "R", "parameters": {"k": 3}},
                    {"dataset_id": "toy", "algorithm": "personalized-pagerank",
                     "source": "R"},
                ]
                comparison_id = gateway.run_queries(queries, synchronous=True)
                return gateway.get_rankings(comparison_id)

        via_process = run_all("process")
        via_thread = run_all("thread")
        assert len(via_process) == len(via_thread) == 3
        for ours, theirs in zip(via_process, via_thread):
            assert ours.algorithm == theirs.algorithm
            assert np.array_equal(ours.scores, theirs.scores)
            assert list(ours) == list(theirs)
