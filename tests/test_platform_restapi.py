"""Integration tests for the HTTP/JSON front-end (:mod:`repro.platform.restapi`)."""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.datasets.catalog import DatasetCatalog
from repro.platform.gateway import ApiGateway
from repro.platform.restapi import RestApiServer


@pytest.fixture(scope="module")
def server(small_enwiki, small_amazon):
    catalog = DatasetCatalog()
    catalog.register_graph("enwiki-2018", small_enwiki, family="wikipedia",
                           description="small synthetic enwiki")
    catalog.register_graph("amazon-copurchase", small_amazon, family="amazon",
                           description="small synthetic amazon")
    gateway = ApiGateway(catalog=catalog, num_workers=2)
    api = RestApiServer(gateway)
    api.start()
    yield api
    api.stop()
    gateway.shutdown()


def get_json(server, path):
    with urllib.request.urlopen(server.url + path, timeout=10) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def post_json(server, path, payload):
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


class TestDiscoveryEndpoints:
    def test_index_page_lists_datasets_and_algorithms(self, server):
        with urllib.request.urlopen(server.url + "/", timeout=10) as response:
            html = response.read().decode("utf-8")
        assert "enwiki-2018" in html
        assert "cyclerank" in html

    def test_list_datasets(self, server):
        status, payload = get_json(server, "/api/datasets")
        assert status == 200
        assert {entry["dataset_id"] for entry in payload} == {
            "enwiki-2018", "amazon-copurchase"
        }

    def test_dataset_summary(self, server):
        status, payload = get_json(server, "/api/datasets/enwiki-2018/summary")
        assert status == 200
        assert payload["num_nodes"] > 0
        assert "reciprocity" in payload

    def test_list_algorithms(self, server):
        status, payload = get_json(server, "/api/algorithms")
        assert status == 200
        names = {entry["name"] for entry in payload}
        assert "cyclerank" in names
        assert "personalized-pagerank" in names

    def test_unknown_resource_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(server, "/api/nonsense")
        assert excinfo.value.code == 404

    def test_unknown_dataset_summary_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(server, "/api/datasets/never-heard-of-it/summary")
        assert excinfo.value.code == 404


class TestComparisonEndpoints:
    def test_submit_and_fetch_results(self, server):
        status, created = post_json(
            server,
            "/api/comparisons",
            {
                "queries": [
                    {"dataset_id": "enwiki-2018", "algorithm": "cyclerank",
                     "source": "Freddie Mercury", "parameters": {"k": 3}},
                    {"dataset_id": "enwiki-2018", "algorithm": "personalized-pagerank",
                     "source": "Freddie Mercury", "parameters": {"alpha": 0.3}},
                ],
                "synchronous": True,
            },
        )
        assert status == 201
        comparison_id = created["comparison_id"]

        status, progress = get_json(server, f"/api/comparisons/{comparison_id}/status")
        assert status == 200
        assert progress["state"] == "completed"
        assert progress["completed_queries"] == 2

        status, table = get_json(server, f"/api/comparisons/{comparison_id}/results?k=5")
        assert status == 200
        assert table["columns"] == ["Cyclerank", "Pers. PageRank"]
        assert table["rows"][0] == ["Freddie Mercury", "Freddie Mercury"]

        status, logs = get_json(server, f"/api/comparisons/{comparison_id}/logs")
        assert status == 200
        assert any("done" in line for line in logs["lines"])

    def test_asynchronous_submission_with_polling(self, server):
        _, created = post_json(
            server,
            "/api/comparisons",
            {
                "queries": [
                    {"dataset_id": "amazon-copurchase", "algorithm": "cyclerank",
                     "source": "1984", "parameters": {"k": 3}},
                ],
            },
        )
        comparison_id = created["comparison_id"]
        deadline = time.monotonic() + 30
        state = "pending"
        while time.monotonic() < deadline:
            _, progress = get_json(server, f"/api/comparisons/{comparison_id}/status")
            state = progress["state"]
            if state in ("completed", "failed"):
                break
            time.sleep(0.05)
        assert state == "completed"
        _, table = get_json(server, f"/api/comparisons/{comparison_id}/results?k=3")
        assert table["rows"][0] == ["1984"]

    def test_unknown_comparison_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(server, "/api/comparisons/not-a-comparison/status")
        assert excinfo.value.code == 404

    def test_invalid_query_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(
                server,
                "/api/comparisons",
                {"queries": [{"dataset_id": "missing", "algorithm": "pagerank"}]},
            )
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read().decode("utf-8"))
        assert "error" in body

    def test_empty_queries_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(server, "/api/comparisons", {"queries": []})
        assert excinfo.value.code == 400

    def test_malformed_json_body_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/api/comparisons",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_post_to_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(server, "/api/not-a-thing", {})
        assert excinfo.value.code == 404


class TestServerLifecycle:
    def test_context_manager_and_own_gateway(self, small_enwiki):
        catalog = DatasetCatalog()
        catalog.register_graph("enwiki-2018", small_enwiki)
        gateway = ApiGateway(catalog=catalog, num_workers=1)
        with RestApiServer(gateway) as api:
            host, port = api.address
            assert port > 0
            assert api.url.startswith("http://")
        gateway.shutdown()

    def test_address_requires_started_server(self):
        api = RestApiServer(ApiGateway(catalog=DatasetCatalog(), num_workers=1))
        with pytest.raises(RuntimeError):
            _ = api.address
        api.gateway.shutdown()

    def test_start_twice_is_idempotent(self, server):
        assert server.start() == server.address

    def test_access_log_recorded_in_datastore(self, server):
        get_json(server, "/api/datasets")
        assert server.gateway.datastore.get_logs("restapi")


class TestStatsEndpoint:
    def test_stats_exposes_cache_and_batch_counters(self, server):
        status, payload = get_json(server, "/api/stats")
        assert status == 200
        # A "shards" section joins these three when the gateway runs on a
        # ShardedDataStore (e.g. the REPRO_TEST_SHARDS=4 CI topology).
        assert set(payload) >= {"cache", "batches", "artifacts"}
        for counter in ("capacity", "size", "hits", "misses", "hit_rate",
                        "evictions", "invalidations"):
            assert counter in payload["cache"]
        for counter in ("batches", "batched_queries", "largest_batch",
                        "mean_batch_size", "inflight_queries"):
            assert counter in payload["batches"]
        for counter in ("compiled", "hits", "misses", "hit_rate", "invalidations"):
            assert counter in payload["artifacts"]

    def test_stats_reflect_cache_hits_after_a_repeat_comparison(self, server):
        body = {
            "queries": [
                {
                    "dataset_id": "enwiki-2018",
                    "algorithm": "personalized-pagerank",
                    "source": "Pasta",
                }
            ],
            "synchronous": True,
        }
        post_json(server, "/api/comparisons", body)
        _, before = get_json(server, "/api/stats")
        post_json(server, "/api/comparisons", body)
        _, after = get_json(server, "/api/stats")
        assert after["cache"]["hits"] == before["cache"]["hits"] + 1
        assert after["batches"]["batches"] == before["batches"]["batches"]


def delete_json(server, path):
    request = urllib.request.Request(server.url + path, method="DELETE")
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


@pytest.fixture
def gate_pair():
    from repro.algorithms import registry as algorithm_registry

    from conftest import register_gated_algorithm

    gates = [register_gated_algorithm("gated-a"), register_gated_algorithm("gated-b")]
    try:
        yield gates
    finally:
        for _, release in gates:
            release.set()
        algorithm_registry._REGISTRY.pop("gated-a", None)
        algorithm_registry._REGISTRY.pop("gated-b", None)


class TestJobEndpoints:
    def test_job_listing_reports_submitted_comparisons(self, server):
        _, created = post_json(
            server,
            "/api/comparisons",
            {
                "queries": [{"dataset_id": "enwiki-2018", "algorithm": "pagerank"}],
                "synchronous": True,
            },
        )
        status, listing = get_json(server, "/api/comparisons")
        assert status == 200
        rows = {row["comparison_id"]: row for row in listing}
        assert created["comparison_id"] in rows
        row = rows[created["comparison_id"]]
        assert row["state"] == "done"
        assert row["completed_queries"] == row["total_queries"] == 1

    def test_results_of_unfinished_comparison_is_409(self, server, gate_pair):
        # Both executor workers are pinned by gated comparisons, so a third
        # submission stays queued: its results endpoint must say so instead
        # of assembling a partial/empty table.
        (started_a, release_a), (started_b, release_b) = gate_pair
        running = []
        for name, started in (("gated-a", started_a), ("gated-b", started_b)):
            _, created = post_json(
                server,
                "/api/comparisons",
                {
                    "queries": [
                        {"dataset_id": "enwiki-2018", "algorithm": name,
                         "source": "Pasta"},
                    ],
                    "synchronous": False,
                },
            )
            running.append(created["comparison_id"])
            assert started.wait(timeout=10.0)
        _, created = post_json(
            server,
            "/api/comparisons",
            {
                "queries": [{"dataset_id": "enwiki-2018", "algorithm": "cheirank"}],
                "synchronous": False,
            },
        )
        queued_id = created["comparison_id"]
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(server, f"/api/comparisons/{queued_id}/results")
        assert excinfo.value.code == 409
        body = json.loads(excinfo.value.read().decode("utf-8"))
        assert body["state"] == "pending"
        assert body["completed_queries"] == 0
        assert body["total_queries"] == 1
        # A running (gated) comparison 409s with its own state too.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(server, f"/api/comparisons/{running[0]}/results")
        assert excinfo.value.code == 409
        assert json.loads(excinfo.value.read().decode("utf-8"))["state"] == "running"
        release_a.set()
        release_b.set()
        for comparison_id in running + [queued_id]:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                _, progress = get_json(server, f"/api/comparisons/{comparison_id}/status")
                if progress["state"] in ("completed", "failed"):
                    break
                time.sleep(0.05)
            assert progress["state"] == "completed"

    def test_delete_cancels_a_running_comparison(self, server, gate_pair):
        # Three distinct dispatch groups on a two-worker pool: two occupy
        # the workers (blocked on their gates), the third sits queued — the
        # cancel must stop it at the dispatch boundary.
        (started_a, release_a), (started_b, release_b) = gate_pair
        _, created = post_json(
            server,
            "/api/comparisons",
            {
                "queries": [
                    # Sources unique to this test: a cache hit from an
                    # earlier module test would skip the gate entirely.
                    {"dataset_id": "enwiki-2018", "algorithm": "gated-a",
                     "source": "London", "parameters": {}},
                    {"dataset_id": "amazon-copurchase", "algorithm": "gated-b",
                     "source": "1984", "parameters": {}},
                    {"dataset_id": "enwiki-2018", "algorithm": "gated-b",
                     "source": "France", "parameters": {}},
                ],
                "synchronous": False,
            },
        )
        comparison_id = created["comparison_id"]
        assert started_a.wait(timeout=10.0)
        assert started_b.wait(timeout=10.0)
        status, outcome = delete_json(server, f"/api/comparisons/{comparison_id}")
        assert status == 200
        assert outcome["cancelled"] is True
        release_a.set()
        release_b.set()
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            _, progress = get_json(server, f"/api/comparisons/{comparison_id}/status")
            if progress["state"] in ("completed", "failed", "cancelled"):
                break
            time.sleep(0.05)
        assert progress["state"] == "cancelled"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(server, f"/api/comparisons/{comparison_id}/results")
        assert excinfo.value.code == 409

    def test_delete_of_finished_comparison_reports_not_cancelled(self, server):
        _, created = post_json(
            server,
            "/api/comparisons",
            {
                "queries": [{"dataset_id": "enwiki-2018", "algorithm": "pagerank"}],
                "synchronous": True,
            },
        )
        status, outcome = delete_json(server, f"/api/comparisons/{created['comparison_id']}")
        assert status == 200
        assert outcome["cancelled"] is False
        assert outcome["state"] == "completed"

    def test_delete_unknown_comparison_is_404(self, server):
        request = urllib.request.Request(
            server.url + "/api/comparisons/never-submitted", method="DELETE"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 404

    def test_long_poll_delivers_the_event_log(self, server):
        _, created = post_json(
            server,
            "/api/comparisons",
            {
                "queries": [
                    {"dataset_id": "enwiki-2018", "algorithm": "personalized-pagerank",
                     "source": "Freddie Mercury"},
                ],
                "synchronous": True,
            },
        )
        comparison_id = created["comparison_id"]
        status, payload = get_json(server, f"/api/comparisons/{comparison_id}/events?after=0")
        assert status == 200
        assert payload["state"] == "completed"
        types = [event["type"] for event in payload["events"]]
        assert types[0] == "submitted"
        assert types[-1] == "task_done"
        assert payload["next_after"] == payload["events"][-1]["seq"]
        # Resuming past the end returns immediately with no events.
        status, tail = get_json(
            server,
            f"/api/comparisons/{comparison_id}/events?after={payload['next_after']}",
        )
        assert tail["events"] == []
        assert tail["next_after"] == payload["next_after"]

    def test_event_stream_sse_content_type_and_frames(self, server):
        _, created = post_json(
            server,
            "/api/comparisons",
            {
                "queries": [{"dataset_id": "enwiki-2018", "algorithm": "2drank"}],
                "synchronous": False,
            },
        )
        comparison_id = created["comparison_id"]
        url = f"{server.url}/api/comparisons/{comparison_id}/events?stream=sse"
        frames = []
        with urllib.request.urlopen(url, timeout=30) as response:
            assert response.headers["Content-Type"].startswith("text/event-stream")
            for raw in response:
                line = raw.decode("utf-8").strip()
                if line.startswith("data: "):
                    frames.append(json.loads(line[len("data: "):]))
        assert frames[0]["type"] == "submitted"
        assert frames[-1]["type"] == "task_done"
        assert [frame["seq"] for frame in frames] == list(range(1, len(frames) + 1))

    def test_sse_of_unknown_comparison_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(server, "/api/comparisons/never-submitted/events?stream=sse")
        assert excinfo.value.code == 404

    def test_idle_sse_stream_emits_keepalive_pings_and_resumes(self, server):
        """An idle stream writes ``: ping`` comments; ``after=N`` resumes it.

        A gated algorithm holds the job idle so the stream has nothing to
        deliver: the keep-alive comments are what keeps proxies from reaping
        the connection.  After the gate opens, the remaining events arrive in
        ``seq`` order, and a client that only saw part of the stream resumes
        losslessly from its last cursor over the long-poll endpoint.
        """
        from conftest import register_gated_algorithm
        from repro.algorithms import registry as algorithm_registry

        started, release = register_gated_algorithm("gated-keepalive")
        try:
            _, created = post_json(
                server,
                "/api/comparisons",
                {
                    "queries": [
                        {
                            "dataset_id": "enwiki-2018",
                            "algorithm": "gated-keepalive",
                            "source": "Freddie Mercury",
                        }
                    ],
                    "synchronous": False,
                },
            )
            comparison_id = created["comparison_id"]
            assert started.wait(10.0)
            url = (
                f"{server.url}/api/comparisons/{comparison_id}/events"
                "?stream=sse&keepalive=0.2"
            )
            pings = 0
            frames = []
            with urllib.request.urlopen(url, timeout=30) as response:
                assert response.headers["Content-Type"].startswith("text/event-stream")
                for raw in response:
                    line = raw.decode("utf-8").rstrip("\n")
                    if line == ": ping":
                        pings += 1
                        if pings == 2:
                            release.set()  # idle proven; let the job finish
                    elif line.startswith("data: "):
                        frames.append(json.loads(line[len("data: "):]))
            assert pings >= 2
            assert frames[-1]["type"] == "task_done"
            seqs = [frame["seq"] for frame in frames]
            assert seqs == sorted(seqs)
            # Resume from a mid-stream cursor: exactly the tail comes back.
            cursor = seqs[0]
            status, body = get_json(
                server,
                f"/api/comparisons/{comparison_id}/events?after={cursor}&timeout=5",
            )
            assert status == 200
            assert [event["seq"] for event in body["events"]] == seqs[1:]
        finally:
            release.set()
            algorithm_registry._REGISTRY.pop("gated-keepalive", None)


class TestResultsOfTerminalFailures:
    def test_failed_comparison_results_409_carries_the_error(self, server):
        _, created = post_json(
            server,
            "/api/comparisons",
            {
                "queries": [
                    {"dataset_id": "enwiki-2018", "algorithm": "cyclerank",
                     "source": "No Such Article", "parameters": {"k": 3}},
                ],
                "synchronous": True,
            },
        )
        comparison_id = created["comparison_id"]
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(server, f"/api/comparisons/{comparison_id}/results")
        assert excinfo.value.code == 409
        body = json.loads(excinfo.value.read().decode("utf-8"))
        assert body["state"] == "failed"
        assert "finished failed" in body["error"]
        assert body["task_error"]
