"""Integration tests for the HTTP/JSON front-end (:mod:`repro.platform.restapi`)."""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.datasets.catalog import DatasetCatalog
from repro.platform.gateway import ApiGateway
from repro.platform.restapi import RestApiServer


@pytest.fixture(scope="module")
def server(small_enwiki, small_amazon):
    catalog = DatasetCatalog()
    catalog.register_graph("enwiki-2018", small_enwiki, family="wikipedia",
                           description="small synthetic enwiki")
    catalog.register_graph("amazon-copurchase", small_amazon, family="amazon",
                           description="small synthetic amazon")
    gateway = ApiGateway(catalog=catalog, num_workers=2)
    api = RestApiServer(gateway)
    api.start()
    yield api
    api.stop()
    gateway.shutdown()


def get_json(server, path):
    with urllib.request.urlopen(server.url + path, timeout=10) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def post_json(server, path, payload):
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


class TestDiscoveryEndpoints:
    def test_index_page_lists_datasets_and_algorithms(self, server):
        with urllib.request.urlopen(server.url + "/", timeout=10) as response:
            html = response.read().decode("utf-8")
        assert "enwiki-2018" in html
        assert "cyclerank" in html

    def test_list_datasets(self, server):
        status, payload = get_json(server, "/api/datasets")
        assert status == 200
        assert {entry["dataset_id"] for entry in payload} == {
            "enwiki-2018", "amazon-copurchase"
        }

    def test_dataset_summary(self, server):
        status, payload = get_json(server, "/api/datasets/enwiki-2018/summary")
        assert status == 200
        assert payload["num_nodes"] > 0
        assert "reciprocity" in payload

    def test_list_algorithms(self, server):
        status, payload = get_json(server, "/api/algorithms")
        assert status == 200
        names = {entry["name"] for entry in payload}
        assert "cyclerank" in names
        assert "personalized-pagerank" in names

    def test_unknown_resource_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(server, "/api/nonsense")
        assert excinfo.value.code == 404

    def test_unknown_dataset_summary_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(server, "/api/datasets/never-heard-of-it/summary")
        assert excinfo.value.code == 404


class TestComparisonEndpoints:
    def test_submit_and_fetch_results(self, server):
        status, created = post_json(
            server,
            "/api/comparisons",
            {
                "queries": [
                    {"dataset_id": "enwiki-2018", "algorithm": "cyclerank",
                     "source": "Freddie Mercury", "parameters": {"k": 3}},
                    {"dataset_id": "enwiki-2018", "algorithm": "personalized-pagerank",
                     "source": "Freddie Mercury", "parameters": {"alpha": 0.3}},
                ],
                "synchronous": True,
            },
        )
        assert status == 201
        comparison_id = created["comparison_id"]

        status, progress = get_json(server, f"/api/comparisons/{comparison_id}/status")
        assert status == 200
        assert progress["state"] == "completed"
        assert progress["completed_queries"] == 2

        status, table = get_json(server, f"/api/comparisons/{comparison_id}/results?k=5")
        assert status == 200
        assert table["columns"] == ["Cyclerank", "Pers. PageRank"]
        assert table["rows"][0] == ["Freddie Mercury", "Freddie Mercury"]

        status, logs = get_json(server, f"/api/comparisons/{comparison_id}/logs")
        assert status == 200
        assert any("done" in line for line in logs["lines"])

    def test_asynchronous_submission_with_polling(self, server):
        _, created = post_json(
            server,
            "/api/comparisons",
            {
                "queries": [
                    {"dataset_id": "amazon-copurchase", "algorithm": "cyclerank",
                     "source": "1984", "parameters": {"k": 3}},
                ],
            },
        )
        comparison_id = created["comparison_id"]
        deadline = time.monotonic() + 30
        state = "pending"
        while time.monotonic() < deadline:
            _, progress = get_json(server, f"/api/comparisons/{comparison_id}/status")
            state = progress["state"]
            if state in ("completed", "failed"):
                break
            time.sleep(0.05)
        assert state == "completed"
        _, table = get_json(server, f"/api/comparisons/{comparison_id}/results?k=3")
        assert table["rows"][0] == ["1984"]

    def test_unknown_comparison_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(server, "/api/comparisons/not-a-comparison/status")
        assert excinfo.value.code == 404

    def test_invalid_query_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(
                server,
                "/api/comparisons",
                {"queries": [{"dataset_id": "missing", "algorithm": "pagerank"}]},
            )
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read().decode("utf-8"))
        assert "error" in body

    def test_empty_queries_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(server, "/api/comparisons", {"queries": []})
        assert excinfo.value.code == 400

    def test_malformed_json_body_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/api/comparisons",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_post_to_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(server, "/api/not-a-thing", {})
        assert excinfo.value.code == 404


class TestServerLifecycle:
    def test_context_manager_and_own_gateway(self, small_enwiki):
        catalog = DatasetCatalog()
        catalog.register_graph("enwiki-2018", small_enwiki)
        gateway = ApiGateway(catalog=catalog, num_workers=1)
        with RestApiServer(gateway) as api:
            host, port = api.address
            assert port > 0
            assert api.url.startswith("http://")
        gateway.shutdown()

    def test_address_requires_started_server(self):
        api = RestApiServer(ApiGateway(catalog=DatasetCatalog(), num_workers=1))
        with pytest.raises(RuntimeError):
            _ = api.address
        api.gateway.shutdown()

    def test_start_twice_is_idempotent(self, server):
        assert server.start() == server.address

    def test_access_log_recorded_in_datastore(self, server):
        get_json(server, "/api/datasets")
        assert server.gateway.datastore.get_logs("restapi")


class TestStatsEndpoint:
    def test_stats_exposes_cache_and_batch_counters(self, server):
        status, payload = get_json(server, "/api/stats")
        assert status == 200
        # A "shards" section joins these three when the gateway runs on a
        # ShardedDataStore (e.g. the REPRO_TEST_SHARDS=4 CI topology).
        assert set(payload) >= {"cache", "batches", "artifacts"}
        for counter in ("capacity", "size", "hits", "misses", "hit_rate",
                        "evictions", "invalidations"):
            assert counter in payload["cache"]
        for counter in ("batches", "batched_queries", "largest_batch",
                        "mean_batch_size", "inflight_queries"):
            assert counter in payload["batches"]
        for counter in ("compiled", "hits", "misses", "hit_rate", "invalidations"):
            assert counter in payload["artifacts"]

    def test_stats_reflect_cache_hits_after_a_repeat_comparison(self, server):
        body = {
            "queries": [
                {
                    "dataset_id": "enwiki-2018",
                    "algorithm": "personalized-pagerank",
                    "source": "Pasta",
                }
            ],
            "synchronous": True,
        }
        post_json(server, "/api/comparisons", body)
        _, before = get_json(server, "/api/stats")
        post_json(server, "/api/comparisons", body)
        _, after = get_json(server, "/api/stats")
        assert after["cache"]["hits"] == before["cache"]["hits"] + 1
        assert after["batches"]["batches"] == before["batches"]["batches"]
