"""Cache semantics: counters, LRU eviction order, and dataset invalidation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.catalog import DatasetCatalog
from repro.exceptions import InvalidParameterError
from repro.graph.digraph import DirectedGraph
from repro.platform.cache import ResultCache
from repro.platform.datastore import DataStore
from repro.platform.gateway import ApiGateway
from repro.ranking.result import Ranking


def _ranking(score: float = 1.0) -> Ranking:
    return Ranking([score, 1.0 - score], labels=["a", "b"], algorithm="test")


def _key(dataset: str = "ds", source: str = "a", **parameters) -> tuple:
    return ResultCache.key_for(dataset, "algo", parameters or {"alpha": 0.85}, source)


class TestCounters:
    def test_fresh_cache_is_empty_with_zeroed_counters(self):
        cache = ResultCache(capacity=4)
        stats = cache.stats()
        assert len(cache) == 0
        assert stats == {
            "capacity": 4,
            "size": 0,
            "hits": 0,
            "misses": 0,
            "hit_rate": 0.0,
            "evictions": 0,
            "invalidations": 0,
            "ttl_seconds": None,
            "expirations": 0,
            "admit_on_second_miss": False,
            "admissions_deferred": 0,
        }

    def test_hits_and_misses_are_counted(self):
        cache = ResultCache(capacity=4)
        key = _key()
        assert cache.get(key) is None
        cache.put(key, _ranking())
        assert cache.get(key) is not None
        assert cache.get(key) is not None
        stats = cache.stats()
        assert stats["hits"] == 2
        assert stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(2 / 3)

    def test_peek_does_not_touch_counters(self):
        cache = ResultCache(capacity=4)
        key = _key()
        cache.put(key, _ranking())
        assert cache.peek(key) is not None
        assert cache.peek(_key(source="b")) is None
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(InvalidParameterError):
            ResultCache(capacity=0)


class TestKeyCanonicalisation:
    def test_parameter_order_does_not_matter(self):
        first = ResultCache.key_for("ds", "algo", {"alpha": 0.85, "max_iter": 100}, "a")
        second = ResultCache.key_for("ds", "algo", {"max_iter": 100, "alpha": 0.85}, "a")
        assert first == second

    def test_distinct_queries_get_distinct_keys(self):
        base = _key()
        assert _key(dataset="other") != base
        assert _key(source="b") != base
        assert _key(alpha=0.5) != base


class TestLruEviction:
    def test_least_recently_used_entry_is_evicted_first(self):
        cache = ResultCache(capacity=2)
        key_a, key_b, key_c = _key(source="a"), _key(source="b"), _key(source="c")
        cache.put(key_a, _ranking(0.1))
        cache.put(key_b, _ranking(0.2))
        # Touch A so B becomes the least recently used entry.
        assert cache.get(key_a) is not None
        cache.put(key_c, _ranking(0.3))
        assert cache.peek(key_b) is None
        assert cache.peek(key_a) is not None
        assert cache.peek(key_c) is not None
        assert cache.stats()["evictions"] == 1

    def test_put_refreshes_recency(self):
        cache = ResultCache(capacity=2)
        key_a, key_b, key_c = _key(source="a"), _key(source="b"), _key(source="c")
        cache.put(key_a, _ranking(0.1))
        cache.put(key_b, _ranking(0.2))
        cache.put(key_a, _ranking(0.4))  # re-put: A is now most recent
        cache.put(key_c, _ranking(0.3))
        assert cache.peek(key_b) is None
        assert cache.peek(key_a).score_of("a") == pytest.approx(0.4)

    def test_eviction_keeps_size_bounded(self):
        cache = ResultCache(capacity=3)
        for index in range(10):
            cache.put(_key(source=f"s{index}"), _ranking())
        assert len(cache) == 3
        assert cache.stats()["evictions"] == 7


class TestInvalidation:
    def test_invalidate_dataset_drops_only_that_dataset(self):
        cache = ResultCache(capacity=8)
        cache.put(_key(dataset="one", source="a"), _ranking())
        cache.put(_key(dataset="one", source="b"), _ranking())
        cache.put(_key(dataset="two", source="a"), _ranking())
        dropped = cache.invalidate_dataset("one")
        assert dropped == 2
        assert cache.peek(_key(dataset="one", source="a")) is None
        assert cache.peek(_key(dataset="two", source="a")) is not None
        assert cache.stats()["invalidations"] == 2

    def test_clear_empties_the_cache(self):
        cache = ResultCache(capacity=8)
        cache.put(_key(), _ranking())
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["invalidations"] == 1


class TestDataStoreWiring:
    def test_datastore_owns_a_default_cache(self):
        assert isinstance(DataStore().result_cache, ResultCache)

    def test_replacing_a_dataset_invalidates_its_entries(self, triangle):
        datastore = DataStore()
        datastore.store_dataset("toy", triangle)
        datastore.result_cache.put(_key(dataset="toy"), _ranking())
        datastore.result_cache.put(_key(dataset="other"), _ranking())
        datastore.store_dataset("toy", triangle.copy())
        assert datastore.result_cache.peek(_key(dataset="toy")) is None
        assert datastore.result_cache.peek(_key(dataset="other")) is not None

    def test_first_store_does_not_invalidate(self, triangle):
        datastore = DataStore()
        datastore.result_cache.put(_key(dataset="toy"), _ranking())
        datastore.store_dataset("toy", triangle)
        # A first materialisation is not a re-upload; the entry survives.
        assert datastore.result_cache.peek(_key(dataset="toy")) is not None

    def test_drop_dataset_invalidates(self, triangle):
        datastore = DataStore()
        datastore.store_dataset("toy", triangle)
        datastore.result_cache.put(_key(dataset="toy"), _ranking())
        datastore.drop_dataset("toy")
        assert datastore.result_cache.peek(_key(dataset="toy")) is None


class TestGatewayReupload:
    def _uploaded_graph(self, *, with_z: bool) -> DirectedGraph:
        graph = DirectedGraph(name="uploaded")
        graph.add_edge("x", "y")
        graph.add_edge("y", "x")
        if with_z:
            # The re-upload routes all of y's mass through a new node z, so
            # the same query must produce visibly different scores.
            graph.add_node("z")
            graph.remove_edge("y", "x")
            graph.add_edge("y", "z")
            graph.add_edge("z", "x")
        return graph

    def test_reupload_through_gateway_invalidates_and_recomputes(self):
        catalog = DatasetCatalog()
        with ApiGateway(catalog=catalog, num_workers=1) as gateway:
            gateway.upload_dataset("uploaded", self._uploaded_graph(with_z=False))
            query = [
                {
                    "dataset_id": "uploaded",
                    "algorithm": "personalized-pagerank",
                    "source": "x",
                }
            ]
            first = gateway.run_queries(query, synchronous=True)
            first_scores = gateway.get_rankings(first)[0].scores

            # The repeat is served from the cache: no executor dispatch.
            executed = gateway.executor_pool.total_executed()
            hits_before = gateway.datastore.result_cache.stats()["hits"]
            repeat = gateway.run_queries(query, synchronous=True)
            assert gateway.executor_pool.total_executed() == executed
            assert gateway.datastore.result_cache.stats()["hits"] == hits_before + 1
            assert np.array_equal(gateway.get_rankings(repeat)[0].scores, first_scores)

            # Re-uploading the dataset invalidates the entry; the same query
            # now recomputes against the new graph and yields new scores.
            invalidations_before = gateway.datastore.result_cache.stats()["invalidations"]
            gateway.upload_dataset(
                "uploaded", self._uploaded_graph(with_z=True), replace=True
            )
            assert (
                gateway.datastore.result_cache.stats()["invalidations"]
                > invalidations_before
            )
            second = gateway.run_queries(query, synchronous=True)
            second_scores = gateway.get_rankings(second)[0].scores
            assert gateway.executor_pool.total_executed() == executed + 1
            assert second_scores.size == 3  # the new upload's z node is ranked
            assert not np.allclose(first_scores, second_scores[:2])


class TestDatasetVersioning:
    def test_versions_count_uploads_and_drops(self, triangle):
        datastore = DataStore()
        assert datastore.dataset_version("toy") == 0
        datastore.store_dataset("toy", triangle)
        assert datastore.dataset_version("toy") == 1
        datastore.store_dataset("toy", triangle.copy())
        assert datastore.dataset_version("toy") == 2
        datastore.drop_dataset("toy")
        assert datastore.dataset_version("toy") == 3

    def test_fetch_with_version_is_consistent(self, triangle):
        datastore = DataStore()
        datastore.store_dataset("toy", triangle)
        graph, version = datastore.fetch_dataset_with_version("toy")
        assert graph is triangle
        assert version == 1

    def test_keys_from_different_versions_do_not_collide(self):
        # A stale in-flight computation caches under the old version, so a
        # re-uploaded dataset can never be served rankings of the old graph.
        old = ResultCache.key_for("ds", "algo", {"alpha": 0.85}, "a", version=1)
        new = ResultCache.key_for("ds", "algo", {"alpha": 0.85}, "a", version=2)
        assert old != new
        cache = ResultCache(capacity=4)
        cache.put(old, _ranking())
        assert cache.peek(new) is None
        assert cache.invalidate_dataset("ds") == 1


class _FakeClock:
    """Injectable monotonic clock for deterministic TTL tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTimeToLive:
    def test_entries_expire_after_the_ttl(self):
        clock = _FakeClock()
        cache = ResultCache(capacity=4, ttl_seconds=10.0, clock=clock)
        key = _key()
        cache.put(key, _ranking())
        clock.advance(9.0)
        assert cache.get(key) is not None
        clock.advance(2.0)  # 11s since insertion
        assert cache.get(key) is None
        stats = cache.stats()
        assert stats["expirations"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 0

    def test_put_refreshes_the_clock(self):
        clock = _FakeClock()
        cache = ResultCache(capacity=4, ttl_seconds=10.0, clock=clock)
        key = _key()
        cache.put(key, _ranking())
        clock.advance(8.0)
        cache.put(key, _ranking(0.5))  # re-insert restarts the TTL
        clock.advance(8.0)
        assert cache.get(key) is not None

    def test_peek_does_not_serve_expired_entries(self):
        clock = _FakeClock()
        cache = ResultCache(capacity=4, ttl_seconds=1.0, clock=clock)
        key = _key()
        cache.put(key, _ranking())
        clock.advance(2.0)
        assert cache.peek(key) is None
        # peek never touches the counters.
        assert cache.stats()["expirations"] == 0
        assert cache.stats()["misses"] == 0

    def test_no_ttl_means_no_expiry(self):
        clock = _FakeClock()
        cache = ResultCache(capacity=4, clock=clock)
        key = _key()
        cache.put(key, _ranking())
        clock.advance(1e9)
        assert cache.get(key) is not None

    def test_invalid_ttl_rejected(self):
        with pytest.raises(InvalidParameterError):
            ResultCache(capacity=4, ttl_seconds=0.0)
        with pytest.raises(InvalidParameterError):
            ResultCache(capacity=4, ttl_seconds=-1.0)


class TestAdmitOnSecondMiss:
    def test_first_put_is_deferred_second_is_admitted(self):
        cache = ResultCache(capacity=4, admit_on_second_miss=True)
        key = _key()
        assert cache.put(key, _ranking()) is False
        assert cache.get(key) is None  # not admitted yet
        assert cache.put(key, _ranking()) is True
        assert cache.get(key) is not None
        stats = cache.stats()
        assert stats["admit_on_second_miss"] is True
        assert stats["admissions_deferred"] == 1

    def test_scan_workload_does_not_evict_the_working_set(self):
        cache = ResultCache(capacity=2, admit_on_second_miss=True)
        hot_first, hot_second = _key(source="hot-1"), _key(source="hot-2")
        for key in (hot_first, hot_second):
            cache.put(key, _ranking())
            cache.put(key, _ranking())
        # A one-off scan over many distinct keys: none are admitted, so the
        # hot entries survive untouched.
        for index in range(50):
            cache.put(_key(source=f"scan-{index}"), _ranking())
        assert cache.peek(hot_first) is not None
        assert cache.peek(hot_second) is not None
        assert cache.stats()["evictions"] == 0

    def test_admitted_entry_updates_normally(self):
        cache = ResultCache(capacity=4, admit_on_second_miss=True)
        key = _key()
        cache.put(key, _ranking())
        cache.put(key, _ranking())
        # Once resident, a refresh put stores immediately.
        assert cache.put(key, _ranking(0.25)) is True
        assert cache.get(key).scores[0] == 0.25

    def test_invalidation_purges_the_ghost_list(self):
        cache = ResultCache(capacity=4, admit_on_second_miss=True)
        key = _key(dataset="ds")
        cache.put(key, _ranking())  # deferred; key sits in the ghost list
        cache.invalidate_dataset("ds")
        # After invalidation the admission accounting restarts: the next put
        # is a first sighting again.
        assert cache.put(key, _ranking()) is False

    def test_default_policy_admits_immediately(self):
        cache = ResultCache(capacity=4)
        key = _key()
        assert cache.put(key, _ranking()) is True
        assert cache.get(key) is not None


class TestDataStoreCacheKnobs:
    def test_knobs_configure_the_internal_cache(self):
        datastore = DataStore(cache_ttl_seconds=30.0, cache_admit_on_second_miss=True)
        stats = datastore.result_cache.stats()
        assert stats["ttl_seconds"] == 30.0
        assert stats["admit_on_second_miss"] is True

    def test_defaults_preserve_seed_behaviour(self):
        datastore = DataStore()
        stats = datastore.result_cache.stats()
        assert stats["ttl_seconds"] is None
        assert stats["admit_on_second_miss"] is False
