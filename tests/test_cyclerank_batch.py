"""Acceptance tests for the CSR-native CycleRank hot path.

Covers this PR's headline guarantees: ``cyclerank_batch`` over 16 references
on a ~5k-node generated graph (K=3) is at least 4x faster than the seed
per-reference loop, the CSR-native single-reference CycleRank beats the seed
implementation on the same graph, and batched runs return rankings *exactly*
equal to per-reference runs for CycleRank, rooted HITS and personalized Katz.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.algorithms.cyclerank import cyclerank, cyclerank_batch, cyclerank_reference
from repro.algorithms.registry import get_algorithm, run_batch
from repro.graph.generators import preferential_attachment_graph

NUM_REFERENCES = 16
NUM_NODES = 5_000
K = 3


def seed_cyclerank(graph, reference, max_cycle_length=K):
    """The seed (pre-CSR) CycleRank baseline, shared with the benchmark."""
    return cyclerank_reference(graph, reference, max_cycle_length=max_cycle_length)


@pytest.fixture(scope="module")
def hotpath_graph():
    """A ~5k-node heavy-tailed graph with plentiful reciprocated edges."""
    return preferential_attachment_graph(
        NUM_NODES, out_degree=10, reciprocation_probability=0.5, seed=11,
        name="cyclerank-hotpath",
    )


@pytest.fixture(scope="module")
def hub_references(hotpath_graph):
    """The 16 most-linked nodes — the popular queries of a real workload."""
    in_degrees = np.asarray(hotpath_graph.in_degrees())
    return [int(node) for node in np.argsort(in_degrees)[::-1][:NUM_REFERENCES]]


class TestHotPathSpeedup:
    # Wall-clock ratios are meaningless on oversubscribed shared CI runners;
    # the guarantee is asserted on dedicated hardware (local / benchmark runs).
    @pytest.mark.skipif(
        os.environ.get("CI") == "true",
        reason="timing ratio assertion is unreliable on shared CI runners",
    )
    def test_batch_is_at_least_4x_faster_than_seed_loop(
        self, hotpath_graph, hub_references
    ):
        # Warm-up pays NumPy/scipy lazy costs outside the timed sections.
        cyclerank_batch(hotpath_graph, hub_references[:1])

        started = time.perf_counter()
        seed_rankings = [
            seed_cyclerank(hotpath_graph, reference) for reference in hub_references
        ]
        seed_elapsed = time.perf_counter() - started

        batch_times = []
        for _ in range(3):
            started = time.perf_counter()
            batched = cyclerank_batch(hotpath_graph, hub_references)
            batch_times.append(time.perf_counter() - started)

        speedup = seed_elapsed / min(batch_times)
        assert speedup >= 4.0, (
            f"cyclerank_batch over {NUM_REFERENCES} references is only "
            f"{speedup:.1f}x faster than the seed loop "
            f"(batch {min(batch_times):.3f}s vs seed {seed_elapsed:.3f}s)"
        )
        # The speedup must not come at the cost of accuracy: the counting
        # kernel agrees with the seed's per-cycle accumulation to rounding.
        # (Scores agree to relative rounding; tie-break order between
        # near-equal scores may differ by design, so only scores compare.)
        for seed_ranking, batch_ranking in zip(seed_rankings, batched):
            assert np.allclose(
                seed_ranking.scores, batch_ranking.scores, rtol=1e-12, atol=0
            )

    @pytest.mark.skipif(
        os.environ.get("CI") == "true",
        reason="timing ratio assertion is unreliable on shared CI runners",
    )
    def test_csr_native_single_beats_seed_implementation(
        self, hotpath_graph, hub_references
    ):
        cyclerank(hotpath_graph, hub_references[0])  # warm-up

        started = time.perf_counter()
        for reference in hub_references:
            seed_cyclerank(hotpath_graph, reference)
        seed_elapsed = time.perf_counter() - started

        started = time.perf_counter()
        for reference in hub_references:
            cyclerank(hotpath_graph, reference)
        native_elapsed = time.perf_counter() - started

        assert native_elapsed < seed_elapsed, (
            f"CSR-native single-reference CycleRank ({native_elapsed:.3f}s for "
            f"{NUM_REFERENCES} calls) does not beat the seed implementation "
            f"({seed_elapsed:.3f}s)"
        )


class TestBatchExactlyEqualsSingle:
    """Batched rankings must be bit-identical to per-reference runs."""

    def _assert_exactly_equal(self, batched, singles):
        for batch_ranking, single_ranking in zip(batched, singles):
            assert np.array_equal(batch_ranking.scores, single_ranking.scores)
            assert batch_ranking.ordered_nodes() == single_ranking.ordered_nodes()
            assert batch_ranking.reference == single_ranking.reference

    @pytest.fixture(scope="class")
    def small_graph(self):
        graph = preferential_attachment_graph(
            400, out_degree=4, reciprocation_probability=0.4, seed=3
        )
        for node in graph.nodes():
            graph.set_label(node, f"node-{node}")
        return graph

    @pytest.fixture(scope="class")
    def references(self, small_graph):
        in_degrees = np.asarray(small_graph.in_degrees())
        return [int(node) for node in np.argsort(in_degrees)[::-1][:8]]

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_cyclerank_batch_equals_singles(self, small_graph, references, k):
        # k <= 3 exercises the counting kernel, k = 4 the shared DFS engine.
        batched = cyclerank_batch(small_graph, references, max_cycle_length=k)
        singles = [
            cyclerank(small_graph, reference, max_cycle_length=k)
            for reference in references
        ]
        self._assert_exactly_equal(batched, singles)

    @pytest.mark.parametrize(
        "name, parameters",
        [
            ("cyclerank", {"k": 3}),
            ("personalized-hits", {"max_iter": 5000}),
            ("personalized-katz", {"beta": 0.01}),
        ],
    )
    def test_registry_batch_equals_singles(self, small_graph, references, name, parameters):
        algorithm = get_algorithm(name)
        labels = [small_graph.label_of(reference) for reference in references]
        batched = run_batch(name, small_graph, sources=labels, parameters=parameters)
        singles = [
            algorithm.run(small_graph, source=label, parameters=parameters)
            for label in labels
        ]
        self._assert_exactly_equal(batched, singles)
