"""Unit tests for :mod:`repro.graph.traversal`."""

from __future__ import annotations

import pytest

from repro.exceptions import NodeNotFoundError
from repro.graph.digraph import DirectedGraph
from repro.graph.generators import cycle_graph, path_graph
from repro.graph.traversal import (
    ancestors,
    bfs_order,
    bfs_tree,
    descendants,
    dfs_order,
    nodes_within_distance,
    shortest_path_lengths,
)


class TestBfs:
    def test_bfs_order_on_path(self):
        graph = path_graph(5)
        assert bfs_order(graph, 0) == [0, 1, 2, 3, 4]

    def test_bfs_order_only_reaches_descendants(self):
        graph = path_graph(5)
        assert bfs_order(graph, 3) == [3, 4]

    def test_bfs_tree_parents(self):
        graph = DirectedGraph()
        graph.add_edges_from([("A", "B"), ("A", "C"), ("B", "D")])
        parents = bfs_tree(graph, "A")
        assert parents[graph.resolve("A")] is None
        assert parents[graph.resolve("D")] == graph.resolve("B")
        assert len(parents) == 4

    def test_bfs_unknown_source_fails(self, triangle):
        with pytest.raises(NodeNotFoundError):
            bfs_order(triangle, "missing")


class TestDfs:
    def test_dfs_order_visits_all_reachable(self, two_triangles):
        order = dfs_order(two_triangles, "R")
        assert set(order) == set(two_triangles.nodes())
        assert order[0] == two_triangles.resolve("R")

    def test_dfs_prefers_smaller_ids(self):
        graph = DirectedGraph()
        graph.add_edges_from([("A", "B"), ("A", "C"), ("B", "D"), ("C", "E")])
        order = dfs_order(graph, "A")
        labels = [graph.label_of(node) for node in order]
        assert labels == ["A", "B", "D", "C", "E"]


class TestReachability:
    def test_descendants_and_ancestors(self):
        graph = path_graph(4)
        assert descendants(graph, 0) == {1, 2, 3}
        assert descendants(graph, 3) == set()
        assert ancestors(graph, 3) == {0, 1, 2}
        assert ancestors(graph, 0) == set()

    def test_cycle_everything_reaches_everything(self):
        graph = cycle_graph(4)
        assert descendants(graph, 0) == {1, 2, 3}
        assert ancestors(graph, 0) == {1, 2, 3}


class TestShortestPaths:
    def test_distances_on_cycle(self):
        graph = cycle_graph(5)
        distances = shortest_path_lengths(graph, 0)
        assert distances == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_reverse_distances(self):
        graph = cycle_graph(5)
        distances = shortest_path_lengths(graph, 0, reverse=True)
        assert distances == {0: 0, 4: 1, 3: 2, 2: 3, 1: 4}

    def test_cutoff_limits_expansion(self):
        graph = path_graph(10)
        distances = shortest_path_lengths(graph, 0, cutoff=3)
        assert max(distances.values()) == 3
        assert len(distances) == 4

    def test_unreachable_nodes_absent(self):
        graph = DirectedGraph()
        graph.add_edge("A", "B")
        graph.add_node("island")
        distances = shortest_path_lengths(graph, "A")
        assert graph.resolve("island") not in distances

    def test_nodes_within_distance(self):
        graph = path_graph(10)
        assert nodes_within_distance(graph, 0, 2) == {0, 1, 2}
        assert nodes_within_distance(graph, 9, 2, reverse=True) == {9, 8, 7}

    def test_shortest_paths_pick_minimum(self):
        graph = DirectedGraph()
        # Two routes A -> D: direct and through B, C.
        graph.add_edges_from([("A", "D"), ("A", "B"), ("B", "C"), ("C", "D")])
        distances = shortest_path_lengths(graph, "A")
        assert distances[graph.resolve("D")] == 1
