"""Reusable fault-injection scenario library for the storage suites.

Grown out of the ``FlakyStore``/``DownShard`` helpers that used to live in
``conftest.py``: every platform suite that scripts an outage imports from
here.  The library provides

:class:`FlakyStore`
    The wrapper itself — per-method fault rules, wholesale outages
    (:meth:`~FlakyStore.go_down`/:meth:`~FlakyStore.come_up`) and injected
    latency (:meth:`~FlakyStore.slow_down`) over any ``DataStore``.
:class:`ShardFlapper`
    A background thread flapping one shard down/up on a fixed cadence — the
    scenario the health prober's rate limit is proven against.
:func:`partition`
    Context manager taking a group of shards down for the duration of a
    block (partition-then-recover timelines).
:func:`fault_rounds`
    Scenario scaling: the fault suites always run; the dedicated CI job
    sets ``REPRO_TEST_FAULTS`` to multiply iteration counts so the
    timelines run longer there without slowing the default suite.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from collections import Counter
from typing import Any, Dict, Iterator, Optional, Sequence

__all__ = [
    "DownShard",
    "FlakyStore",
    "ShardFlapper",
    "fault_rounds",
    "partition",
    "stale_primary",
]

#: Environment variable scaling the scripted outage scenarios (see CI's
#: dedicated fault job).
FAULTS_ENV = "REPRO_TEST_FAULTS"


def fault_rounds(base: int) -> int:
    """Return ``base`` iterations, multiplied under the fault CI job.

    ``REPRO_TEST_FAULTS=K`` multiplies scenario lengths by ``K`` (``1``
    simply marks the job; any unparseable value counts as ``1``), so the
    same tests serve as quick local checks and as the longer CI sweep.
    """
    raw = os.environ.get(FAULTS_ENV, "")
    try:
        factor = int(raw) if raw else 1
    except ValueError:
        factor = 1
    return base * max(1, factor)


class FlakyStore:
    """Fault-injection wrapper: make any :class:`DataStore` raise on demand.

    Wraps a real datastore and forwards everything; failures are injected
    per method and per call count through :meth:`fail_on`, or wholesale
    through :meth:`go_down` (every *method call* raises until
    :meth:`come_up`; plain attributes such as ``result_cache`` keep
    forwarding, mirroring a node whose process is dead but whose state is
    not).  :meth:`slow_down` injects latency instead of failure — the
    slow-shard scenario.  Reusable by every platform suite: wrap the
    backends handed to a ``ShardedDataStore``/``ReplicatedShardedDataStore``
    (or a gateway's ``datastore``) and script the outage.

    Examples
    --------
    >>> backend = FlakyStore(DataStore())         # doctest: +SKIP
    >>> backend.fail_on("put_result", times=2)    # next two writes raise
    >>> backend.go_down()                         # everything raises now
    >>> backend.slow_down("fetch_dataset", seconds=0.05)
    """

    def __init__(self, inner) -> None:
        self._inner = inner
        self._flaky_lock = threading.Lock()
        self._rules: Dict[str, Dict[str, Any]] = {}
        self._delays: Dict[str, float] = {}
        self._is_down = False
        #: Per-method call counts (attempted calls, including failed ones).
        self.calls: Counter = Counter()

    # -- scripting ----------------------------------------------------- #
    def fail_on(
        self,
        method: str,
        *,
        times: Optional[int] = 1,
        after: int = 0,
        error: Optional[BaseException] = None,
    ) -> None:
        """Make ``method`` raise: skip ``after`` calls, then fail ``times``
        calls (``times=None`` fails forever).  ``error`` defaults to a
        ``RuntimeError`` — an *infrastructure* failure, distinct from the
        ``StorageError`` a store uses for a genuinely absent key."""
        with self._flaky_lock:
            self._rules[method] = {"after": after, "times": times, "error": error}

    def clear_faults(self, method: Optional[str] = None) -> None:
        """Drop one method's injected faults (or all of them)."""
        with self._flaky_lock:
            if method is None:
                self._rules.clear()
            else:
                self._rules.pop(method, None)

    def slow_down(self, method: Optional[str] = None, *, seconds: float) -> None:
        """Inject latency: ``method`` (or, with ``None``, every method call)
        sleeps ``seconds`` before executing — the slow-shard scenario, where
        a replica answers but degrades tail latency."""
        with self._flaky_lock:
            self._delays["*" if method is None else method] = seconds

    def clear_delays(self, method: Optional[str] = None) -> None:
        """Drop one method's injected latency (or all of it)."""
        with self._flaky_lock:
            if method is None:
                self._delays.clear()
            else:
                self._delays.pop(method, None)

    def go_down(self) -> None:
        """Take the whole store down: every method call raises until come_up()."""
        with self._flaky_lock:
            self._is_down = True

    def come_up(self) -> None:
        """Bring the store back (injected per-method faults stay in place)."""
        with self._flaky_lock:
            self._is_down = False

    @property
    def is_down(self) -> bool:
        with self._flaky_lock:
            return self._is_down

    # -- forwarding ---------------------------------------------------- #
    def _check(self, name: str) -> float:
        """Apply the fault rules for one call; return the latency to inject."""
        with self._flaky_lock:
            self.calls[name] += 1
            delay = self._delays.get(name, self._delays.get("*", 0.0))
            if self._is_down:
                raise RuntimeError(f"injected outage: shard is down ({name})")
            rule = self._rules.get(name)
            if rule is None:
                return delay
            if rule["after"] > 0:
                rule["after"] -= 1
                return delay
            if rule["times"] is None:
                pass  # fail forever
            elif rule["times"] > 0:
                rule["times"] -= 1
                if rule["times"] == 0:
                    del self._rules[name]
            else:
                return delay
            error = rule["error"]
            raise error if error is not None else RuntimeError(
                f"injected fault in {name}"
            )

    def __getattr__(self, name: str):
        attribute = getattr(self._inner, name)
        if not callable(attribute):
            return attribute

        def wrapper(*args, **kwargs):
            delay = self._check(name)
            if delay:
                time.sleep(delay)
            return attribute(*args, **kwargs)

        return wrapper

    def __repr__(self) -> str:
        return f"<FlakyStore over {self._inner!r}{' DOWN' if self._is_down else ''}>"


#: Alias for tests that script a permanent shard loss rather than flakiness.
DownShard = FlakyStore


class ShardFlapper(threading.Thread):
    """Flap one :class:`FlakyStore` down/up on a fixed cadence.

    Each cycle takes the shard down for ``down_for`` seconds and brings it
    back for ``up_for`` seconds, for ``cycles`` cycles (scaled through
    :func:`fault_rounds` by the caller when desired).  Use as a context
    manager; on exit the thread is joined and the shard left up.
    """

    def __init__(
        self,
        shard: FlakyStore,
        *,
        cycles: int = 10,
        down_for: float = 0.01,
        up_for: float = 0.01,
    ) -> None:
        super().__init__(name="shard-flapper", daemon=True)
        self._shard = shard
        self._cycles = cycles
        self._down_for = down_for
        self._up_for = up_for
        self._halt = threading.Event()

    def run(self) -> None:
        for _ in range(self._cycles):
            if self._halt.is_set():
                break
            self._shard.go_down()
            if self._halt.wait(self._down_for):
                break
            self._shard.come_up()
            if self._halt.wait(self._up_for):
                break
        self._shard.come_up()

    def stop(self) -> None:
        self._halt.set()

    def __enter__(self) -> "ShardFlapper":
        self.start()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.stop()
        self.join(timeout=10.0)
        self._shard.come_up()


def stale_primary(store, dataset_id: str, graph) -> str:
    """Script the outage that leaves ``dataset_id``'s primary stale.

    The canonical quorum-read scenario: the primary's backend (which must
    be a :class:`FlakyStore`) goes physically down, a re-upload of
    ``graph`` lands the next version on the surviving successors via
    hinted handoff, and the primary comes back holding the pre-outage
    copy — below the version floor the write established.  A
    ``read_consistency="one"`` store now serves that stale copy (counted
    as ``stale_reads``); a ``"quorum"`` store's digest round withholds it.
    Returns the primary's shard id.
    """
    primary = store.replica_shards_for(dataset_id)[0]
    backend = store.shard_stores()[primary]
    backend.go_down()
    try:
        store.store_dataset(dataset_id, graph)
    finally:
        backend.come_up()
    return primary


@contextlib.contextmanager
def partition(*shards: FlakyStore) -> Iterator[Sequence[FlakyStore]]:
    """Take a group of shards down for the duration of the block.

    The partition-then-recover timeline: everything inside the ``with``
    sees the shards unreachable; on exit they all come back (even if the
    block raises), ready for the recovery assertions.
    """
    for shard in shards:
        shard.go_down()
    try:
        yield shards
    finally:
        for shard in shards:
            shard.come_up()
