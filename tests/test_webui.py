"""Unit tests for the Web UI renderer (:mod:`repro.platform.webui`).

The renderer is deterministic (plain text and HTML fragments over gateway
payloads), so these tests pin the three classic views (pickers, task
builder, results), the HTML index served at ``/``, and the job-centric
views added with the event-driven lifecycle: the job listing and the
per-comparison progress fragment.
"""

from __future__ import annotations

import pytest

from repro.datasets.catalog import DatasetCatalog
from repro.platform.gateway import ApiGateway
from repro.platform.webui import WebUI


@pytest.fixture
def gateway(two_triangles, small_enwiki):
    catalog = DatasetCatalog()
    catalog.register_graph("toy", two_triangles, family="synthetic",
                           description="two triangles sharing R")
    catalog.register_graph("enwiki-small", small_enwiki, family="wikipedia",
                           description="small synthetic enwiki")
    with ApiGateway(catalog=catalog, num_workers=2) as gateway:
        yield gateway


@pytest.fixture
def ui(gateway):
    return WebUI(gateway)


class TestPickers:
    def test_dataset_picker_lists_datasets(self, ui):
        rendered = ui.render_dataset_picker()
        assert "Available datasets" in rendered
        assert "toy" in rendered
        assert "two triangles sharing R" in rendered

    def test_dataset_picker_filters_by_family(self, ui):
        rendered = ui.render_dataset_picker(family="wikipedia")
        assert "enwiki-small" in rendered
        assert "two triangles sharing R" not in rendered

    def test_algorithm_picker_lists_parameters(self, ui):
        rendered = ui.render_algorithm_picker()
        assert "Cyclerank" in rendered
        assert "personalized" in rendered
        assert "· k" in rendered


class TestTaskBuilder:
    def test_render_task_builder_rows(self, ui, gateway):
        query_set = gateway.new_query_set()
        gateway.add_query(query_set, "toy", "cyclerank", source="R",
                          parameters={"k": 3})
        rendered = ui.render_task_builder(query_set)
        assert query_set.comparison_id in rendered
        assert "cyclerank" in rendered
        assert "[✕]" in rendered

    def test_render_empty_task_builder(self, ui, gateway):
        rendered = ui.render_task_builder(gateway.new_query_set())
        assert "query set is empty" in rendered


class TestResultsView:
    def test_render_results_of_finished_comparison(self, ui, gateway):
        comparison = gateway.run_queries(
            [{"dataset_id": "toy", "algorithm": "cyclerank", "source": "R",
              "parameters": {"k": 3}}],
            synchronous=True,
        )
        rendered = ui.render_results(comparison, k=3, include_logs=True)
        assert "completed" in rendered
        assert "Execution log" in rendered
        html_fragment = ui.render_results_html(comparison, k=3)
        assert "<table>" in html_fragment


class TestJobListing:
    def test_empty_job_list(self, ui):
        rendered = ui.render_job_list()
        assert "no comparisons submitted yet" in rendered

    def test_job_list_reports_states_and_progress(self, ui, gateway):
        comparison = gateway.run_queries(
            [{"dataset_id": "toy", "algorithm": "pagerank"}], synchronous=True
        )
        rendered = ui.render_job_list()
        assert comparison in rendered
        assert "done" in rendered
        assert "1/1" in rendered

    def test_job_list_html_rows(self, ui, gateway):
        comparison = gateway.run_queries(
            [{"dataset_id": "toy", "algorithm": "pagerank"}], synchronous=True
        )
        fragment = ui.render_job_list_html()
        assert "<table class='jobs'>" in fragment
        assert comparison in fragment
        assert "data-state='done'" in fragment


class TestProgressFragment:
    def test_progress_fragment_of_finished_comparison(self, ui, gateway):
        comparison = gateway.run_queries(
            [{"dataset_id": "toy", "algorithm": "pagerank"}], synchronous=True
        )
        fragment = ui.render_progress_html(comparison)
        assert f"data-comparison='{comparison}'" in fragment
        assert "data-state='completed'" in fragment
        assert "<progress max='1' value='1'>" in fragment
        assert "(100%)" in fragment

    def test_progress_fragment_carries_errors(self, ui, gateway):
        comparison = gateway.run_queries(
            [{"dataset_id": "toy", "algorithm": "cyclerank", "source": "ghost",
              "parameters": {"k": 3}}],
            synchronous=True,
        )
        fragment = ui.render_progress_html(comparison)
        assert "data-state='failed'" in fragment
        assert "class='error'" in fragment


class TestIndex:
    def test_index_lists_datasets_algorithms_and_jobs(self, ui, gateway):
        comparison = gateway.run_queries(
            [{"dataset_id": "toy", "algorithm": "pagerank"}], synchronous=True
        )
        page = ui.render_index()
        assert page.startswith("<!DOCTYPE html>")
        assert "toy" in page
        assert "cyclerank" in page
        assert "synchronous" in page  # documents the non-blocking submission
        assert comparison in page  # the job listing fragment is embedded
