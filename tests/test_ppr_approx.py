"""Unit tests for the approximate PPR solvers (forward push and Monte Carlo)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.personalized_pagerank import personalized_pagerank
from repro.algorithms.ppr_montecarlo import ppr_montecarlo
from repro.algorithms.ppr_push import ppr_push
from repro.exceptions import InvalidParameterError, NodeNotFoundError
from repro.graph.digraph import DirectedGraph
from repro.graph.generators import cycle_graph
from repro.ranking.metrics import precision_at_k


class TestForwardPush:
    def test_scores_form_distribution(self, community_graph):
        ranking = ppr_push(community_graph, 0, alpha=0.85, epsilon=1e-6)
        assert ranking.total() == pytest.approx(1.0)
        assert all(score >= 0 for score in ranking.scores)

    def test_close_to_exact_ppr(self, community_graph):
        exact = personalized_pagerank(community_graph, 0, alpha=0.85)
        approx = ppr_push(community_graph, 0, alpha=0.85, epsilon=1e-8)
        assert np.abs(exact.scores - approx.scores).max() < 1e-3

    def test_top_k_agrees_with_exact(self, small_enwiki):
        exact = personalized_pagerank(small_enwiki, "Pasta", alpha=0.5)
        approx = ppr_push(small_enwiki, "Pasta", alpha=0.5, epsilon=1e-8)
        assert precision_at_k(approx, exact.top_labels(5), k=5) >= 0.8

    def test_larger_epsilon_means_fewer_pushes(self, community_graph):
        fine = ppr_push(community_graph, 0, alpha=0.85, epsilon=1e-8)
        coarse = ppr_push(community_graph, 0, alpha=0.85, epsilon=1e-3)
        assert coarse.parameters["pushes"] <= fine.parameters["pushes"]

    def test_locality_support_is_small_for_coarse_epsilon(self, small_enwiki):
        coarse = ppr_push(small_enwiki, "Pasta", alpha=0.5, epsilon=1e-2)
        assert coarse.nonzero_count() < small_enwiki.number_of_nodes()

    def test_dangling_reference(self):
        graph = DirectedGraph()
        graph.add_edge("A", "B")  # B dangles
        ranking = ppr_push(graph, "B", alpha=0.85)
        assert ranking.total() == pytest.approx(1.0)
        assert ranking.score_of("B") > 0

    def test_reference_recorded(self, triangle):
        ranking = ppr_push(triangle, "A")
        assert ranking.algorithm == "PPR (forward push)"
        assert ranking.reference == "A"

    def test_invalid_parameters(self, triangle):
        with pytest.raises(InvalidParameterError):
            ppr_push(triangle, "A", alpha=2.0)
        with pytest.raises(InvalidParameterError):
            ppr_push(triangle, "A", epsilon=0.0)
        with pytest.raises(NodeNotFoundError):
            ppr_push(triangle, "missing")


class TestMonteCarlo:
    def test_scores_form_distribution(self, community_graph):
        ranking = ppr_montecarlo(community_graph, 0, alpha=0.85, num_walks=2000, seed=1)
        assert ranking.total() == pytest.approx(1.0)
        assert all(score >= 0 for score in ranking.scores)

    def test_deterministic_per_seed(self, community_graph):
        first = ppr_montecarlo(community_graph, 0, num_walks=500, seed=7)
        second = ppr_montecarlo(community_graph, 0, num_walks=500, seed=7)
        third = ppr_montecarlo(community_graph, 0, num_walks=500, seed=8)
        assert np.array_equal(first.scores, second.scores)
        assert not np.array_equal(first.scores, third.scores)

    def test_reference_has_top_score(self, community_graph):
        ranking = ppr_montecarlo(community_graph, 0, alpha=0.5, num_walks=2000, seed=2)
        assert ranking.rank_of(0) == 1

    def test_approximates_exact_ppr_on_cycle(self):
        graph = cycle_graph(5)
        exact = personalized_pagerank(graph, 0, alpha=0.5)
        approx = ppr_montecarlo(graph, 0, alpha=0.5, num_walks=50_000, seed=3)
        assert np.abs(exact.scores - approx.scores).max() < 0.02

    def test_more_walks_reduce_error(self, community_graph):
        exact = personalized_pagerank(community_graph, 0, alpha=0.85)
        few = ppr_montecarlo(community_graph, 0, alpha=0.85, num_walks=200, seed=4)
        many = ppr_montecarlo(community_graph, 0, alpha=0.85, num_walks=20_000, seed=4)
        error_few = np.abs(exact.scores - few.scores).sum()
        error_many = np.abs(exact.scores - many.scores).sum()
        assert error_many < error_few

    def test_alpha_zero_never_leaves_reference(self, community_graph):
        ranking = ppr_montecarlo(community_graph, 0, alpha=0.0, num_walks=100, seed=5)
        assert ranking.score_of(0) == pytest.approx(1.0)

    def test_dangling_node_terminates_walks(self):
        graph = DirectedGraph()
        graph.add_edge("A", "B")  # B dangles: walks from A must stop there
        ranking = ppr_montecarlo(graph, "A", alpha=0.9, num_walks=500, seed=6)
        assert ranking.total() == pytest.approx(1.0)

    def test_invalid_parameters(self, triangle):
        with pytest.raises(InvalidParameterError):
            ppr_montecarlo(triangle, "A", num_walks=0)
        with pytest.raises(InvalidParameterError):
            ppr_montecarlo(triangle, "A", alpha=-0.5)
        with pytest.raises(InvalidParameterError):
            ppr_montecarlo(triangle, "A", max_walk_length=0)
