"""Unit tests for :mod:`repro.ranking.comparison`."""

from __future__ import annotations

import pytest

from repro.ranking.comparison import ComparisonTable, algorithm_comparison, dataset_comparison
from repro.ranking.result import Ranking


def ranking(labels_in_order, *, algorithm="Algo", reference=None, graph_name="g"):
    scores = list(range(len(labels_in_order), 0, -1))
    return Ranking(
        scores,
        labels=labels_in_order,
        algorithm=algorithm,
        reference=reference,
        graph_name=graph_name,
    )


class TestComparisonTable:
    def test_from_rankings_basic_shape(self):
        table = ComparisonTable.from_rankings(
            {
                "First": ranking(["a", "b", "c", "d"]),
                "Second": ranking(["d", "c", "b", "a"]),
            },
            k=3,
            title="demo",
        )
        assert table.columns == ["First", "Second"]
        assert len(table.rows) == 3
        assert table.column("First") == ["a", "b", "c"]
        assert table.column("Second") == ["d", "c", "b"]
        assert table.scores[0][0] == pytest.approx(4.0)

    def test_exclude_reference(self):
        table = ComparisonTable.from_rankings(
            {"Col": ranking(["ref", "x", "y"], reference="ref")},
            k=2,
            exclude_reference=True,
        )
        assert table.column("Col") == ["x", "y"]

    def test_short_rankings_padded_with_dash(self):
        table = ComparisonTable.from_rankings({"Col": ranking(["a"])}, k=3)
        assert table.column("Col") == ["a", "-", "-"]
        assert table.scores[1][0] is None

    def test_to_text_contains_every_cell(self):
        table = ComparisonTable.from_rankings(
            {"First": ranking(["a", "b"]), "Second": ranking(["b", "a"])}, k=2, title="T"
        )
        text = table.to_text()
        assert "T" in text
        assert "First" in text and "Second" in text
        assert "a" in text and "b" in text

    def test_to_text_with_scores(self):
        table = ComparisonTable.from_rankings({"Col": ranking(["a", "b"])}, k=2)
        text = table.to_text(show_scores=True)
        assert "(" in text

    def test_to_markdown_structure(self):
        table = ComparisonTable.from_rankings({"Col": ranking(["a", "b"])}, k=2, title="T")
        markdown = table.to_markdown()
        assert markdown.count("|") >= 9
        assert "**T**" in markdown

    def test_str_is_text_rendering(self):
        table = ComparisonTable.from_rankings({"Col": ranking(["a"])}, k=1)
        assert str(table) == table.to_text()

    def test_as_dict_round_trip(self):
        table = ComparisonTable.from_rankings(
            {"Col": ranking(["a", "b"])}, k=2, title="T", metadata={"x": 1}
        )
        restored = ComparisonTable.from_dict(table.as_dict())
        assert restored.title == "T"
        assert restored.columns == table.columns
        assert restored.rows == table.rows
        assert restored.metadata == {"x": 1}

    def test_unknown_column_fails(self):
        table = ComparisonTable.from_rankings({"Col": ranking(["a"])}, k=1)
        with pytest.raises(ValueError):
            table.column("Other")


class TestUseCaseHelpers:
    def test_algorithm_comparison_from_mapping(self):
        table = algorithm_comparison(
            {
                "Cyclerank": ranking(["r", "a"], algorithm="CycleRank", reference="r"),
                "Pers.PageRank": ranking(["r", "b"], algorithm="PPR", reference="r"),
            },
            k=2,
        )
        assert table.metadata["use_case"] == "algorithm comparison"
        assert "r" in table.title
        assert table.rows[0] == ["r", "r"]

    def test_algorithm_comparison_from_sequence_derives_headers(self):
        table = algorithm_comparison(
            [
                ranking(["a"], algorithm="PageRank"),
                ranking(["b"], algorithm="CheiRank"),
            ],
            k=1,
        )
        assert table.columns == ["PageRank", "CheiRank"]

    def test_algorithm_comparison_duplicate_headers_disambiguated(self):
        table = algorithm_comparison(
            [
                ranking(["a"], algorithm="PageRank"),
                ranking(["b"], algorithm="PageRank"),
            ],
            k=1,
        )
        assert len(table.columns) == 2
        assert len(set(table.columns)) == 2

    def test_dataset_comparison_metadata(self):
        table = dataset_comparison(
            {
                "fake news (de)": ranking(["x"], algorithm="CycleRank", graph_name="dewiki"),
                "fake news (en)": ranking(["y"], algorithm="CycleRank", graph_name="enwiki"),
            },
            k=1,
        )
        assert table.metadata["use_case"] == "dataset comparison"
        assert table.metadata["datasets"] == ["fake news (de)", "fake news (en)"]
        assert "CycleRank" in table.title
