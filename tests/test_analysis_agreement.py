"""Unit tests for :mod:`repro.analysis.agreement`."""

from __future__ import annotations

import pytest

from repro.analysis.agreement import AGREEMENT_MEASURES, agreement_matrix
from repro.algorithms.cheirank import cheirank
from repro.algorithms.cyclerank import cyclerank
from repro.algorithms.pagerank import pagerank
from repro.algorithms.personalized_pagerank import personalized_pagerank
from repro.exceptions import InvalidParameterError
from repro.ranking.result import Ranking


def ranking_from_order(labels, name="r"):
    return Ranking(list(range(len(labels), 0, -1)), labels=labels, algorithm=name)


LABELS = [f"n{i}" for i in range(12)]


class TestAgreementMatrix:
    def test_matrix_is_symmetric_with_unit_diagonal(self):
        matrix = agreement_matrix(
            {
                "a": ranking_from_order(LABELS),
                "b": ranking_from_order(list(reversed(LABELS))),
                "c": ranking_from_order(LABELS[6:] + LABELS[:6]),
            },
            measure="overlap",
            k=5,
        )
        assert matrix.names == ["a", "b", "c"]
        for i in range(3):
            assert matrix.values[i][i] == 1.0
            for j in range(3):
                assert matrix.values[i][j] == pytest.approx(matrix.values[j][i])

    def test_identical_rankings_have_full_agreement(self):
        matrix = agreement_matrix(
            {"a": ranking_from_order(LABELS), "b": ranking_from_order(LABELS)},
            measure="jaccard",
            k=5,
        )
        assert matrix.value("a", "b") == 1.0

    @pytest.mark.parametrize("measure", sorted(AGREEMENT_MEASURES))
    def test_every_measure_runs(self, measure):
        matrix = agreement_matrix(
            {
                "same": ranking_from_order(LABELS),
                "shifted": ranking_from_order(LABELS[3:] + LABELS[:3]),
            },
            measure=measure,
            k=5,
        )
        value = matrix.value("same", "shifted")
        assert -1.0 <= value <= 1.0

    def test_pairs_and_extremes(self):
        matrix = agreement_matrix(
            {
                "a": ranking_from_order(LABELS),
                "b": ranking_from_order(LABELS),            # identical to a
                "c": ranking_from_order(list(reversed(LABELS))),
            },
            measure="overlap",
            k=5,
        )
        pairs = matrix.pairs_by_agreement()
        assert len(pairs) == 3
        assert matrix.most_similar_pair()[:2] == ("a", "b")
        least = matrix.least_similar_pair()
        assert "c" in least[:2]

    def test_text_rendering_and_serialisation(self):
        matrix = agreement_matrix(
            {"a": ranking_from_order(LABELS), "b": ranking_from_order(LABELS)},
            measure="overlap",
            k=5,
        )
        text = matrix.to_text()
        assert "overlap" in text
        assert "a" in text and "b" in text
        payload = matrix.as_dict()
        assert payload["measure"] == "overlap"
        assert payload["values"][0][1] == 1.0

    def test_too_few_rankings_rejected(self):
        with pytest.raises(InvalidParameterError):
            agreement_matrix({"only": ranking_from_order(LABELS)})

    def test_unknown_measure_rejected(self):
        with pytest.raises(InvalidParameterError):
            agreement_matrix(
                {"a": ranking_from_order(LABELS), "b": ranking_from_order(LABELS)},
                measure="cosine",
            )


class TestAgreementOnRealAlgorithms:
    def test_ppr_agrees_more_with_global_pagerank_than_cyclerank_does(self, small_enwiki):
        """The paper's observation, in matrix form."""
        reference = "Freddie Mercury"
        matrix = agreement_matrix(
            {
                "PageRank": pagerank(small_enwiki, alpha=0.85),
                "CycleRank": cyclerank(small_enwiki, reference, max_cycle_length=3),
                "PPR": personalized_pagerank(small_enwiki, reference, alpha=0.85),
            },
            measure="overlap",
            k=10,
        )
        assert matrix.value("PPR", "PageRank") > matrix.value("CycleRank", "PageRank")

    def test_cheirank_and_pagerank_disagree_on_asymmetric_graph(self, small_twitter):
        matrix = agreement_matrix(
            {
                "PageRank": pagerank(small_twitter),
                "CheiRank": cheirank(small_twitter),
            },
            measure="overlap",
            k=10,
        )
        assert matrix.value("PageRank", "CheiRank") < 1.0
