"""Unit tests for :mod:`repro.algorithms.cheirank`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.cheirank import cheirank, personalized_cheirank
from repro.algorithms.pagerank import pagerank
from repro.algorithms.personalized_pagerank import personalized_pagerank
from repro.graph.digraph import DirectedGraph
from repro.graph.generators import star_graph


class TestCheiRank:
    def test_equals_pagerank_of_transpose(self, mixed_graph):
        chei = cheirank(mixed_graph, alpha=0.85)
        pr_transposed = pagerank(mixed_graph.transpose(), alpha=0.85)
        assert np.allclose(chei.scores, pr_transposed.scores, atol=1e-12)

    def test_equals_pagerank_of_transpose_on_dataset(self, small_amazon):
        chei = cheirank(small_amazon, alpha=0.5)
        pr_transposed = pagerank(small_amazon.transpose(), alpha=0.5)
        assert np.allclose(chei.scores, pr_transposed.scores, atol=1e-12)

    def test_rewards_outgoing_connections(self):
        # The hub points at every leaf but receives nothing: CheiRank must
        # favour it while PageRank must not.
        graph = star_graph(8, reciprocal=False)
        chei = cheirank(graph)
        pr = pagerank(graph)
        assert chei.rank_of(0) == 1
        assert pr.rank_of(0) == len(graph)

    def test_scores_sum_to_one(self, community_graph):
        assert cheirank(community_graph).total() == pytest.approx(1.0)

    def test_provenance(self, triangle):
        ranking = cheirank(triangle, alpha=0.7)
        assert ranking.algorithm == "CheiRank"
        assert ranking.parameters["alpha"] == 0.7
        assert ranking.graph_name == "triangle"

    def test_symmetric_graph_cheirank_equals_pagerank(self, reciprocal_star):
        chei = cheirank(reciprocal_star)
        pr = pagerank(reciprocal_star)
        assert np.allclose(chei.scores, pr.scores, atol=1e-9)


class TestPersonalizedCheiRank:
    def test_equals_ppr_on_transpose(self, mixed_graph):
        pchei = personalized_cheirank(mixed_graph, "X", alpha=0.6)
        ppr_transposed = personalized_pagerank(mixed_graph.transpose(), "X", alpha=0.6)
        assert np.allclose(pchei.scores, ppr_transposed.scores, atol=1e-12)

    def test_reference_recorded(self, mixed_graph):
        ranking = personalized_cheirank(mixed_graph, "X")
        assert ranking.algorithm == "Personalized CheiRank"
        assert ranking.reference == "X"

    def test_follows_outgoing_links_of_reference(self):
        graph = DirectedGraph()
        graph.add_edge("query", "cited")
        graph.add_edge("citer", "query")
        ranking = personalized_cheirank(graph, "query", alpha=0.85)
        # Personalized CheiRank walks the reversed edges, so it flows towards
        # the node that links *to* the query.
        assert ranking.score_of("citer") > ranking.score_of("cited")

    def test_scores_sum_to_one(self, small_twitter):
        ranking = personalized_cheirank(small_twitter, "@climate_voice")
        assert ranking.total() == pytest.approx(1.0)
