"""Unit and property tests for the consistent-hash sharded storage layer.

Covers the three :class:`~repro.platform.sharding.HashRing` guarantees the
subsystem is built on — deterministic routing, near-uniform spread, and
minimal key movement on topology changes — plus the
:class:`~repro.platform.sharding.ShardedDataStore` surface: keyed routing,
fan-out listings, shard-local cache/artifact invalidation, rebalancing and
shard add/remove migration.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, StorageError
from repro.graph.generators import cycle_graph, star_graph
from repro.platform.cache import ResultCache
from repro.platform.datastore import DataStore
from repro.platform.sharding import HashRing, ShardedDataStore
from repro.ranking.result import Ranking

KEYS = [f"dataset-{index}" for index in range(2000)]


def _ranking(n: int = 4) -> Ranking:
    scores = np.arange(1, n + 1, dtype=np.float64)
    return Ranking(
        scores / scores.sum(),
        labels=[f"n{i}" for i in range(n)],
        algorithm="test",
        parameters={},
    )


class TestHashRingRouting:
    def test_assignment_is_deterministic_across_instances(self):
        first = HashRing(["a", "b", "c"])
        second = HashRing(["c", "a", "b"])  # insertion order must not matter
        for key in KEYS[:500]:
            assert first.assign(key) == second.assign(key)

    def test_assignment_is_stable_for_repeat_calls(self):
        ring = HashRing(["a", "b", "c", "d"])
        assignments = {key: ring.assign(key) for key in KEYS[:200]}
        for key, shard in assignments.items():
            assert ring.assign(key) == shard

    def test_empty_ring_raises(self):
        ring = HashRing()
        with pytest.raises(StorageError):
            ring.assign("anything")

    def test_duplicate_and_unknown_shards_raise(self):
        ring = HashRing(["a"])
        with pytest.raises(InvalidParameterError):
            ring.add_shard("a")
        with pytest.raises(InvalidParameterError):
            ring.remove_shard("zzz")
        with pytest.raises(InvalidParameterError):
            ring.add_shard("")

    def test_shards_listing(self):
        ring = HashRing(["b", "a"])
        assert ring.shards() == ["a", "b"]
        assert len(ring) == 2
        assert "a" in ring and "zzz" not in ring

    def test_assignments_helper_matches_assign(self):
        ring = HashRing(["a", "b"])
        table = ring.assignments(KEYS[:50])
        assert table == {key: ring.assign(key) for key in KEYS[:50]}


class TestHashRingSpread:
    @pytest.mark.parametrize("num_shards", [2, 4, 8])
    def test_spread_is_near_uniform(self, num_shards):
        """Chi-square-ish bound: no shard strays far from the uniform share."""
        shard_ids = [f"shard-{i}" for i in range(num_shards)]
        ring = HashRing(shard_ids)
        counts = Counter(ring.assign(key) for key in KEYS)
        expected = len(KEYS) / num_shards
        assert set(counts) == set(shard_ids)
        chi_square = sum(
            (count - expected) ** 2 / expected for count in counts.values()
        )
        # A grossly skewed ring (every shard off by 50% of its share) would
        # score 0.25 * N; a healthy virtual-node spread stays far below.
        assert chi_square < 0.1 * len(KEYS)
        for count in counts.values():
            assert count > expected * 0.45

    @pytest.mark.parametrize("num_shards", [3, 4, 6])
    def test_join_moves_at_most_2_over_n(self, num_shards):
        ring = HashRing([f"shard-{i}" for i in range(num_shards)])
        before = {key: ring.assign(key) for key in KEYS}
        ring.add_shard("joiner")
        after = {key: ring.assign(key) for key in KEYS}
        moved = [key for key in KEYS if before[key] != after[key]]
        # Only keys adopted by the joining shard may move, and no more than
        # ~2/N of them (the consistent-hashing movement bound; the
        # expectation is 1/(N+1)).
        assert all(after[key] == "joiner" for key in moved)
        assert len(moved) <= 2 * len(KEYS) / (num_shards + 1)

    @pytest.mark.parametrize("num_shards", [3, 4, 6])
    def test_leave_moves_only_the_leavers_keys(self, num_shards):
        ring = HashRing([f"shard-{i}" for i in range(num_shards)])
        before = {key: ring.assign(key) for key in KEYS}
        ring.remove_shard("shard-0")
        after = {key: ring.assign(key) for key in KEYS}
        moved = {key for key in KEYS if before[key] != after[key]}
        # Exactly the departed shard's keys move, nothing else.
        assert moved == {key for key in KEYS if before[key] == "shard-0"}
        assert len(moved) <= 2 * len(KEYS) / num_shards

    def test_join_then_leave_restores_prior_assignments(self):
        """Join-then-leave is a no-op: untouched keys never churn."""
        ring = HashRing(["a", "b", "c"])
        before = {key: ring.assign(key) for key in KEYS[:500]}
        ring.add_shard("d")
        ring.remove_shard("d")
        assert {key: ring.assign(key) for key in KEYS[:500]} == before


@pytest.fixture
def sharded_store() -> ShardedDataStore:
    return ShardedDataStore(num_shards=4)


class TestShardedDataStoreConstruction:
    def test_requires_exactly_one_of_shards_and_num_shards(self):
        with pytest.raises(InvalidParameterError):
            ShardedDataStore()
        with pytest.raises(InvalidParameterError):
            ShardedDataStore([DataStore()], num_shards=2)
        with pytest.raises(InvalidParameterError):
            ShardedDataStore([])

    def test_cache_policy_applies_to_internal_shards_only(self):
        store = ShardedDataStore(num_shards=2, cache_ttl_seconds=60.0)
        for backend in store.shard_stores().values():
            assert backend.result_cache.ttl_seconds == 60.0
        with pytest.raises(InvalidParameterError):
            ShardedDataStore([DataStore()], cache_ttl_seconds=60.0)

    def test_provided_backends_are_used(self):
        backends = [DataStore(), DataStore(), DataStore()]
        store = ShardedDataStore(backends)
        assert store.num_shards == 3
        assert list(store.shard_stores().values()) == backends

    def test_unknown_shard_lookup_raises(self, sharded_store):
        with pytest.raises(StorageError):
            sharded_store.shard_store("no-such-shard")


class TestShardedDataStoreRouting:
    def test_dataset_operations_route_to_one_owner(self, sharded_store):
        graph = cycle_graph(5)
        for index in range(12):
            sharded_store.store_dataset(f"ds-{index}", graph)
        assert sharded_store.list_datasets() == sorted(f"ds-{i}" for i in range(12))
        for index in range(12):
            dataset_id = f"ds-{index}"
            owner = sharded_store.shard_for(dataset_id)
            assert sharded_store.has_dataset(dataset_id)
            assert sharded_store.fetch_dataset(dataset_id) is graph
            fetched, version = sharded_store.fetch_dataset_with_version(dataset_id)
            assert fetched is graph and version == 1
            assert sharded_store.dataset_version(dataset_id) == 1
            # Exactly one backend holds the dataset: the ring's owner.
            holders = [
                shard_id
                for shard_id, backend in sharded_store.shard_stores().items()
                if backend.has_dataset(dataset_id)
            ]
            assert holders == [owner]
        # With 12 datasets over 4 shards the spread must reach >= 2 shards
        # (the end-to-end test asserts >= 3 over its own fixed workload).
        owners = {sharded_store.shard_for(f"ds-{i}") for i in range(12)}
        assert len(owners) >= 2

    def test_missing_dataset_raises_storage_error(self, sharded_store):
        with pytest.raises(StorageError):
            sharded_store.fetch_dataset("nope")
        assert not sharded_store.has_dataset("nope")
        sharded_store.drop_dataset("nope")  # no error, mirrors DataStore

    def test_results_and_logs_route_by_their_own_id(self, sharded_store):
        for index in range(10):
            sharded_store.put_result(f"task-{index}", {"value": index})
            sharded_store.append_log(f"task-{index}", f"line {index}")
        assert sharded_store.list_results() == sorted(f"task-{i}" for i in range(10))
        assert sharded_store.list_logs() == sorted(f"task-{i}" for i in range(10))
        for index in range(10):
            result_id = f"task-{index}"
            assert sharded_store.has_result(result_id)
            assert sharded_store.get_result(result_id) == {"value": index}
            assert sharded_store.get_logs(result_id) == [f"line {index}"]
            holders = [
                shard_id
                for shard_id, backend in sharded_store.shard_stores().items()
                if backend.has_result(result_id)
            ]
            assert holders == [sharded_store.shard_for(result_id)]
        sharded_store.drop_result("task-0")
        assert not sharded_store.has_result("task-0")
        sharded_store.drop_logs("task-1")
        assert sharded_store.get_logs("task-1") == []

    def test_compiled_artifacts_live_with_their_dataset(self, sharded_store):
        graph = star_graph(6, reciprocal=True)
        sharded_store.store_dataset("starred", graph)
        compiled, version = sharded_store.fetch_compiled_with_version("starred")
        assert version == 1
        assert sharded_store.fetch_compiled("starred") is compiled
        owner = sharded_store.shard_for("starred")
        for shard_id, backend in sharded_store.shard_stores().items():
            expected = 1 if shard_id == owner else 0
            assert backend.artifact_stats()["compiled"] == expected
        stats = sharded_store.artifact_stats()
        assert stats["compiled"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert set(stats["shards"]) == set(sharded_store.shard_ids())


class TestShardedResultCache:
    def test_entries_live_on_the_owning_shard(self, sharded_store):
        graph = cycle_graph(4)
        sharded_store.store_dataset("cached", graph)
        key = ResultCache.key_for("cached", "pagerank", {"alpha": 0.85}, None, version=1)
        ranking = _ranking()
        assert sharded_store.result_cache.put(key, ranking)
        assert sharded_store.result_cache.get(key) is ranking
        assert sharded_store.result_cache.peek(key) is ranking
        owner = sharded_store.shard_for("cached")
        for shard_id, backend in sharded_store.shard_stores().items():
            assert len(backend.result_cache) == (1 if shard_id == owner else 0)
        assert len(sharded_store.result_cache) == 1

    def test_invalidation_stays_shard_local(self, sharded_store):
        graph = cycle_graph(4)
        ranking = _ranking()
        for index in range(8):
            dataset_id = f"inv-{index}"
            sharded_store.store_dataset(dataset_id, graph)
            key = ResultCache.key_for(dataset_id, "pagerank", {}, None, version=1)
            sharded_store.result_cache.put(key, ranking)
        target = "inv-0"
        owner = sharded_store.shard_for(target)
        others_before = {
            shard_id: backend.result_cache.stats()
            for shard_id, backend in sharded_store.shard_stores().items()
            if shard_id != owner
        }
        # Re-upload: the owning shard must invalidate, siblings must not see
        # any counter move at all.
        sharded_store.store_dataset(target, cycle_graph(4))
        key = ResultCache.key_for(target, "pagerank", {}, None, version=1)
        assert sharded_store.result_cache.peek(key) is None
        assert sharded_store.shard_store(owner).result_cache.stats()["invalidations"] >= 1
        for shard_id, before in others_before.items():
            assert sharded_store.shard_store(shard_id).result_cache.stats() == before

    def test_stats_aggregate_and_break_down(self, sharded_store):
        graph = cycle_graph(4)
        sharded_store.store_dataset("stat", graph)
        key = ResultCache.key_for("stat", "pagerank", {}, None, version=1)
        assert sharded_store.result_cache.get(key) is None  # one miss
        sharded_store.result_cache.put(key, _ranking())
        assert sharded_store.result_cache.get(key) is not None  # one hit
        stats = sharded_store.result_cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["size"] == 1
        assert set(stats["shards"]) == set(sharded_store.shard_ids())
        per_shard_hits = sum(s["hits"] for s in stats["shards"].values())
        assert per_shard_hits == 1
        sharded_store.result_cache.clear()
        assert len(sharded_store.result_cache) == 0

    def test_key_for_matches_result_cache(self):
        store = ShardedDataStore(num_shards=2)
        assert store.result_cache.key_for("d", "a", {"x": 1}, "s", version=3) == (
            ResultCache.key_for("d", "a", {"x": 1}, "s", version=3)
        )


class TestTopologyChanges:
    def test_add_shard_assigns_fresh_id(self, sharded_store):
        new_id = sharded_store.add_shard()
        assert new_id == "shard-4"
        assert sharded_store.num_shards == 5
        assert new_id in sharded_store.shard_ids()
        with pytest.raises(InvalidParameterError):
            sharded_store.add_shard(shard_id="shard-4")

    def test_rebalance_moves_exactly_the_reassigned_datasets(self):
        store = ShardedDataStore(num_shards=4)
        graph = cycle_graph(5)
        dataset_ids = [f"move-{index}" for index in range(64)]
        for dataset_id in dataset_ids:
            store.store_dataset(dataset_id, graph)
        before = {dataset_id: store.shard_for(dataset_id) for dataset_id in dataset_ids}
        new_shard = store.add_shard()
        after = {dataset_id: store.shard_for(dataset_id) for dataset_id in dataset_ids}
        expected_moves = sorted(d for d in dataset_ids if before[d] != after[d])
        moved = sorted(store.rebalance())
        assert moved == expected_moves
        assert all(after[d] == new_shard for d in moved)
        # Minimal movement: well under the 2/N bound, nothing else relocated.
        assert len(moved) <= 2 * len(dataset_ids) / store.num_shards
        for dataset_id in dataset_ids:
            assert store.fetch_dataset(dataset_id) is graph
            holders = [
                shard_id
                for shard_id, backend in store.shard_stores().items()
                if backend.has_dataset(dataset_id)
            ]
            assert holders == [after[dataset_id]]
        stats = store.shard_stats()
        assert stats["rebalances"] == 1
        assert stats["datasets_migrated"] == len(moved)

    def test_rebalance_drops_derived_caches_of_moved_datasets(self):
        store = ShardedDataStore(num_shards=4)
        graph = cycle_graph(5)
        dataset_ids = [f"derived-{index}" for index in range(64)]
        for dataset_id in dataset_ids:
            store.store_dataset(dataset_id, graph)
            store.fetch_compiled(dataset_id)
            key = ResultCache.key_for(dataset_id, "pagerank", {}, None, version=1)
            store.result_cache.put(key, _ranking())
        store.add_shard()
        moved = store.rebalance()
        assert moved, "expected at least one dataset to relocate"
        for dataset_id in moved:
            # The new owner has no derived state yet; a fresh artifact is
            # compiled on demand and the old ranking is gone.
            key = ResultCache.key_for(dataset_id, "pagerank", {}, None, version=1)
            assert store.result_cache.peek(key) is None
            compiled, version = store.fetch_compiled_with_version(dataset_id)
            # The version advances monotonically across the move, so keys
            # minted against the pre-move copy can never collide.
            assert version > 1
        for dataset_id in set(dataset_ids) - set(moved):
            key = ResultCache.key_for(dataset_id, "pagerank", {}, None, version=1)
            assert store.result_cache.peek(key) is not None

    def test_rebalance_migrates_results_and_logs(self):
        store = ShardedDataStore(num_shards=4)
        for index in range(32):
            store.put_result(f"res-{index}", {"index": index})
            store.append_log(f"res-{index}", f"log {index}")
        store.add_shard()
        store.rebalance()
        for index in range(32):
            result_id = f"res-{index}"
            assert store.get_result(result_id) == {"index": index}
            assert store.get_logs(result_id) == [f"log {index}"]
            holders = [
                shard_id
                for shard_id, backend in store.shard_stores().items()
                if backend.has_result(result_id)
            ]
            assert holders == [store.shard_for(result_id)]

    def test_remove_shard_migrates_everything_off_it(self):
        store = ShardedDataStore(num_shards=4)
        graph = cycle_graph(5)
        dataset_ids = [f"leave-{index}" for index in range(48)]
        for dataset_id in dataset_ids:
            store.store_dataset(dataset_id, graph)
            store.put_result(f"{dataset_id}-result", {"id": dataset_id})
        victim = store.shard_for(dataset_ids[0])
        moved = store.remove_shard(victim)
        assert victim not in store.shard_ids()
        assert store.num_shards == 3
        assert dataset_ids[0] in moved
        for dataset_id in dataset_ids:
            assert store.fetch_dataset(dataset_id) is graph
            assert store.get_result(f"{dataset_id}-result") == {"id": dataset_id}

    def test_cannot_remove_last_or_unknown_shard(self):
        store = ShardedDataStore(num_shards=1)
        with pytest.raises(InvalidParameterError):
            store.remove_shard("shard-0")
        with pytest.raises(InvalidParameterError):
            store.remove_shard("missing")

    def test_reupload_before_rebalance_survives_shard_removal(self):
        """A re-upload that landed on the new ring owner must not be
        overwritten by a stale copy when either shard leaves."""
        store = ShardedDataStore(num_shards=2)
        old_graph = cycle_graph(3)
        new_graph = star_graph(4)
        # Find a dataset id whose owner changes when a third shard joins.
        store_probe = ShardedDataStore(num_shards=2)
        store_probe.add_shard()
        dataset_id = next(
            f"mv-{i}" for i in range(1000)
            if store.shard_for(f"mv-{i}") != store_probe.shard_for(f"mv-{i}")
        )
        store.store_dataset(dataset_id, old_graph)
        first_owner = store.shard_for(dataset_id)
        new_shard = store.add_shard()
        assert store.shard_for(dataset_id) != first_owner
        # Re-upload before any rebalance: lands on the new owner while the
        # old owner still holds the superseded copy... unless the write
        # purges it (it must).
        store.store_dataset(dataset_id, new_graph)
        assert not store.shard_store(first_owner).has_dataset(dataset_id)
        # Removing either shard must keep serving the newest upload.
        store.remove_shard(store.shard_for(dataset_id))
        assert store.fetch_dataset(dataset_id) is new_graph

    def test_reupload_purges_stale_cache_on_a_first_gain_owner(self):
        """Version collision guard: before a rebalance, cache entries route
        to the ring owner while the dataset still lives on its previous
        shard.  A re-upload that gives the owner the dataset for the first
        time restarts its version counter at 1 — the same version those
        stale entries were keyed with — so the owner's cache must be purged
        even though the store was not a replacement there."""
        store = ShardedDataStore(num_shards=2)
        probe = ShardedDataStore(num_shards=2)
        probe.add_shard()
        dataset_id = next(
            f"vc-{i}" for i in range(1000)
            if store.shard_for(f"vc-{i}") != probe.shard_for(f"vc-{i}")
        )
        store.store_dataset(dataset_id, cycle_graph(4))
        new_shard = store.add_shard()
        assert store.shard_for(dataset_id) == new_shard
        # A query served from the previous owner's copy caches under the
        # current ring owner with the previous owner's version (1).
        version = store.dataset_version(dataset_id)
        key = ResultCache.key_for(dataset_id, "pagerank", {}, None, version=version)
        store.result_cache.put(key, _ranking())
        assert store.result_cache.peek(key) is not None
        # Re-upload: the new owner gains the dataset for the first time with
        # version 1 — the stale entry's key would match if it survived.
        store.store_dataset(dataset_id, star_graph(4))
        fresh_version = store.dataset_version(dataset_id)
        fresh_key = ResultCache.key_for(
            dataset_id, "pagerank", {}, None, version=fresh_version
        )
        assert store.result_cache.peek(fresh_key) is None

    def test_dataset_versions_stay_monotonic_across_shard_moves(self):
        """A version observed on any shard is never reissued by a later
        upload elsewhere — the guard against a slow in-flight cache put
        (keyed with a previous owner's version) matching a future graph."""
        store = ShardedDataStore(num_shards=2)
        probe = ShardedDataStore(num_shards=2)
        probe.add_shard()
        dataset_id = next(
            f"mono-{i}" for i in range(1000)
            if store.shard_for(f"mono-{i}") != probe.shard_for(f"mono-{i}")
        )
        store.store_dataset(dataset_id, cycle_graph(4))
        store.store_dataset(dataset_id, cycle_graph(5))
        observed = {store.dataset_version(dataset_id)}  # 2 on the old owner
        store.add_shard()
        store.rebalance()  # migrates to the new owner
        observed.add(store.dataset_version(dataset_id))
        store.store_dataset(dataset_id, star_graph(4))  # re-upload post-move
        final = store.dataset_version(dataset_id)
        assert all(final > version for version in observed), (final, observed)

    def test_drop_dataset_reaches_copies_on_previous_owners(self):
        """Deleting a dataset whose copy still sits on a pre-rebalance owner
        must actually delete it, not no-op on the new (empty) owner."""
        store = ShardedDataStore(num_shards=2)
        graph = cycle_graph(4)
        for index in range(32):
            store.store_dataset(f"del-{index}", graph)
        store.add_shard()  # moves some assignments; no rebalance yet
        for index in range(32):
            store.drop_dataset(f"del-{index}")
        assert store.list_datasets() == []
        for index in range(32):
            assert not store.has_dataset(f"del-{index}")
            with pytest.raises(StorageError):
                store.fetch_dataset(f"del-{index}")

    def test_drain_never_resurrects_a_superseded_copy(self):
        """The owner's copy wins: a stray left by a raced write must not
        overwrite newer data when a later rebalance sweeps it up."""
        store = ShardedDataStore(num_shards=4)
        old_graph = cycle_graph(3)
        new_graph = star_graph(4)
        dataset_id = "raced"
        owner = store.shard_for(dataset_id)
        stray_shard = [s for s in store.shard_ids() if s != owner][0]
        # Simulate the race: a superseded copy landed on a non-owner shard,
        # then the authoritative newer upload reached the owner.
        store.shard_store(stray_shard).store_dataset(dataset_id, old_graph)
        store.store_dataset(dataset_id, new_graph)
        store.rebalance()
        assert store.fetch_dataset(dataset_id) is new_graph
        assert not store.shard_store(stray_shard).has_dataset(dataset_id)
        # Same rule for results.
        result_id = "raced-result"
        result_owner = store.shard_for(result_id)
        result_stray = [s for s in store.shard_ids() if s != result_owner][0]
        store.shard_store(result_stray).put_result(result_id, {"stale": True})
        store.put_result(result_id, {"stale": False})
        store.rebalance()
        assert store.get_result(result_id) == {"stale": False}

    def test_failed_removal_rolls_the_shard_back_onto_the_ring(self):
        store = ShardedDataStore(num_shards=3)
        graph = cycle_graph(5)
        dataset_ids = [f"rb-{index}" for index in range(24)]
        for dataset_id in dataset_ids:
            store.store_dataset(dataset_id, graph)
        victim = store.shard_for(dataset_ids[0])
        # Sabotage one of the *surviving* backends so the drain fails midway.
        survivors = [s for s in store.shard_ids() if s != victim]
        broken = store.shard_store(survivors[0])
        original_store_dataset = broken.store_dataset
        broken.store_dataset = lambda *a, **k: (_ for _ in ()).throw(
            StorageError("disk full")
        )
        try:
            with pytest.raises(StorageError):
                store.remove_shard(victim)
        finally:
            broken.store_dataset = original_store_dataset
        # The shard is back on the ring with the full topology intact, and
        # every dataset is reachable again at its routed location.
        assert victim in store.shard_ids()
        assert store.num_shards == 3
        for dataset_id in dataset_ids:
            assert store.fetch_dataset(dataset_id) is graph
        # A retry now succeeds cleanly.
        store.remove_shard(victim)
        assert store.num_shards == 2
        for dataset_id in dataset_ids:
            assert store.fetch_dataset(dataset_id) is graph


class TestShardStats:
    def test_shard_stats_report_topology_health_and_occupancy(self, sharded_store):
        graph = cycle_graph(4)
        for index in range(8):
            sharded_store.store_dataset(f"occ-{index}", graph)
        stats = sharded_store.shard_stats()
        assert stats["num_shards"] == 4
        assert stats["shard_ids"] == sorted(sharded_store.shard_ids())
        assert stats["virtual_nodes"] > 0
        total_datasets = 0
        for shard_id, info in stats["per_shard"].items():
            assert info["healthy"] is True
            assert info["occupancy"]["datasets"] == len(
                sharded_store.shard_store(shard_id).list_datasets()
            )
            total_datasets += info["occupancy"]["datasets"]
        assert total_datasets == 8
        assert sharded_store.occupancy()["datasets"] == 8
