"""End-to-end tests of the platform running on a 4-shard datastore.

The acceptance scenario of the sharding subsystem: eight datasets uploaded
into a 4-shard gateway, mixed comparisons whose results must be bit-identical
to the single-store gateway, dataset spread over at least three shards,
re-upload invalidation confined to the owning shard, and a minimal-movement
rebalance after a shard joins — with every query still answering afterwards.
"""

from __future__ import annotations

import json
from urllib.request import urlopen

import numpy as np
import pytest

from repro.datasets.catalog import DatasetCatalog
from repro.graph.generators import reciprocal_communities_graph
from repro.platform.gateway import ApiGateway
from repro.platform.sharding import ShardedDataStore

NUM_DATASETS = 8
NUM_SHARDS = 4


def _dataset_ids():
    return [f"e2e-{index}" for index in range(NUM_DATASETS)]


def _build_catalog() -> DatasetCatalog:
    """Eight small, varied datasets; every graph contains the labelled node
    ``c0-n0`` used as the personalized reference."""
    catalog = DatasetCatalog()
    for index, dataset_id in enumerate(_dataset_ids()):
        graph = reciprocal_communities_graph(
            2 + index % 3, 4 + index // 2, seed=7 + index
        )
        catalog.register_graph(dataset_id, graph, description=f"e2e dataset {index}")
    return catalog


def _reference_for(index: int) -> str:
    return "c0-n0"


def _mixed_queries():
    """Mixed workload: a global, a power-iteration and a cycle query per dataset."""
    queries = []
    for index, dataset_id in enumerate(_dataset_ids()):
        reference = _reference_for(index)
        queries.append({"dataset_id": dataset_id, "algorithm": "pagerank"})
        queries.append(
            {
                "dataset_id": dataset_id,
                "algorithm": "personalized-pagerank",
                "source": reference,
            }
        )
        queries.append(
            {
                "dataset_id": dataset_id,
                "algorithm": "cyclerank",
                "source": reference,
                "parameters": {"k": 3},
            }
        )
    return queries


def _run_workload(gateway: ApiGateway):
    comparison_id = gateway.run_queries(_mixed_queries(), synchronous=True)
    progress = gateway.get_status(comparison_id)
    assert progress.error is None, progress.error
    return gateway.get_rankings(comparison_id)


@pytest.fixture
def sharded_gateway():
    with ApiGateway(catalog=_build_catalog(), shards=NUM_SHARDS, num_workers=2) as gateway:
        yield gateway


class TestShardedGatewayEndToEnd:
    def test_results_bit_identical_to_single_store_and_spread_over_shards(
        self, sharded_gateway
    ):
        sharded_rankings = _run_workload(sharded_gateway)
        with ApiGateway(catalog=_build_catalog(), num_workers=2) as single_gateway:
            single_rankings = _run_workload(single_gateway)
        assert len(sharded_rankings) == len(single_rankings) == 3 * NUM_DATASETS
        for sharded_ranking, single_ranking in zip(sharded_rankings, single_rankings):
            assert np.array_equal(sharded_ranking.scores, single_ranking.scores)
            assert sharded_ranking.ordered_nodes() == single_ranking.ordered_nodes()
            assert sharded_ranking.algorithm == single_ranking.algorithm

        store: ShardedDataStore = sharded_gateway.datastore
        assert store.list_datasets() == _dataset_ids()
        occupied = [
            shard_id
            for shard_id, backend in store.shard_stores().items()
            if backend.list_datasets()
        ]
        assert len(occupied) >= 3
        # Every dataset lives on exactly the shard the ring assigns it.
        for dataset_id in _dataset_ids():
            holders = [
                shard_id
                for shard_id, backend in store.shard_stores().items()
                if backend.has_dataset(dataset_id)
            ]
            assert holders == [store.shard_for(dataset_id)]

    def test_reupload_invalidates_only_the_owning_shard(self, sharded_gateway):
        _run_workload(sharded_gateway)
        store: ShardedDataStore = sharded_gateway.datastore
        target = _dataset_ids()[0]
        owner = store.shard_for(target)
        owner_cache_before = store.shard_store(owner).result_cache.stats()
        owner_artifacts_before = store.shard_store(owner).artifact_stats()
        others_before = {
            shard_id: (backend.result_cache.stats(), backend.artifact_stats())
            for shard_id, backend in store.shard_stores().items()
            if shard_id != owner
        }
        assert owner_cache_before["size"] > 0

        sharded_gateway.upload_dataset(
            target,
            reciprocal_communities_graph(2, 5, seed=99),
            description="replacement upload",
            replace=True,
        )

        owner_cache_after = store.shard_store(owner).result_cache.stats()
        owner_artifacts_after = store.shard_store(owner).artifact_stats()
        assert owner_cache_after["invalidations"] > owner_cache_before["invalidations"]
        assert owner_artifacts_after["invalidations"] > owner_artifacts_before["invalidations"]
        for shard_id, (cache_before, artifacts_before) in others_before.items():
            assert store.shard_store(shard_id).result_cache.stats() == cache_before
            assert store.shard_store(shard_id).artifact_stats() == artifacts_before

        # Queries against the replacement run against the new graph.
        comparison_id = sharded_gateway.run_queries(
            [{"dataset_id": target, "algorithm": "pagerank"}], synchronous=True
        )
        assert sharded_gateway.get_status(comparison_id).error is None

    def test_rebalance_after_join_moves_minimal_keys_and_queries_still_succeed(
        self, sharded_gateway
    ):
        before_rankings = _run_workload(sharded_gateway)
        store: ShardedDataStore = sharded_gateway.datastore

        before_owners = {d: store.shard_for(d) for d in _dataset_ids()}
        new_shard = store.add_shard()
        after_owners = {d: store.shard_for(d) for d in _dataset_ids()}
        expected_moves = sorted(
            d for d in _dataset_ids() if before_owners[d] != after_owners[d]
        )
        moved = sorted(store.rebalance())
        assert moved == expected_moves
        assert all(after_owners[d] == new_shard for d in moved)
        assert len(moved) <= NUM_DATASETS  # sanity: never more than everything
        # Consistent hashing keeps the unmoved majority in place: with one
        # shard joining five, well over half the datasets must stay put.
        assert len(moved) < NUM_DATASETS / 2 + 1

        after_rankings = _run_workload(sharded_gateway)
        assert len(after_rankings) == len(before_rankings)
        for before_ranking, after_ranking in zip(before_rankings, after_rankings):
            assert np.array_equal(before_ranking.scores, after_ranking.scores)
        # Unmoved datasets answered straight from their shard's cache: the
        # second workload adds no misses for them (each query of the workload
        # group hits once).
        stats = sharded_gateway.get_platform_stats()
        assert stats["cache"]["hits"] > 0

    def test_platform_stats_and_rest_api_expose_shard_topology(self, sharded_gateway):
        _run_workload(sharded_gateway)
        stats = sharded_gateway.get_platform_stats()
        assert stats["shards"]["num_shards"] == NUM_SHARDS
        assert set(stats["shards"]["per_shard"]) == set(
            sharded_gateway.datastore.shard_ids()
        )
        for info in stats["shards"]["per_shard"].values():
            assert info["healthy"] is True
        # The aggregated cache/artifact sections carry per-shard breakdowns.
        assert set(stats["cache"]["shards"]) == set(sharded_gateway.datastore.shard_ids())
        assert set(stats["artifacts"]["shards"]) == set(
            sharded_gateway.datastore.shard_ids()
        )

        from repro.platform.restapi import RestApiServer

        server = RestApiServer(sharded_gateway)
        try:
            server.start()
            with urlopen(f"{server.url}/api/stats") as response:
                payload = json.loads(response.read().decode("utf-8"))
        finally:
            server._httpd.shutdown()
            server._httpd.server_close()
            server._httpd = None
        assert payload["shards"]["num_shards"] == NUM_SHARDS
        assert "per_shard" in payload["shards"]

    def test_gateway_accepts_explicit_backend_stores(self):
        from repro.platform.datastore import DataStore

        backends = [DataStore() for _ in range(3)]
        with ApiGateway(catalog=_build_catalog(), shards=backends, num_workers=1) as gateway:
            assert isinstance(gateway.datastore, ShardedDataStore)
            assert gateway.datastore.num_shards == 3
            comparison_id = gateway.run_queries(
                [{"dataset_id": "e2e-0", "algorithm": "pagerank"}], synchronous=True
            )
            assert gateway.get_status(comparison_id).error is None

    def test_gateway_rejects_shards_with_datastore(self):
        from repro.exceptions import InvalidParameterError
        from repro.platform.datastore import DataStore

        with pytest.raises(InvalidParameterError):
            ApiGateway(datastore=DataStore(), shards=2)
