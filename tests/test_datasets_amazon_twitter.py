"""Unit tests for :mod:`repro.datasets.amazon` and :mod:`repro.datasets.twitter`."""

from __future__ import annotations

import pytest

from repro.datasets.amazon import AMAZON_REFERENCE_ITEMS, generate_amazon_graph
from repro.datasets.seeds import AMAZON_COMMUNITIES, AMAZON_POPULAR_ITEMS, TWITTER_COMMUNITIES
from repro.datasets.twitter import TWITTER_DATASETS, generate_twitter_graph
from repro.exceptions import InvalidParameterError
from repro.graph.analysis import reciprocity


class TestAmazonSeeds:
    def test_table_two_reference_items_defined(self):
        assert "1984" in AMAZON_REFERENCE_ITEMS
        assert "The Fellowship of the Ring" in AMAZON_REFERENCE_ITEMS

    def test_reference_items_belong_to_their_community(self):
        for item, community in AMAZON_REFERENCE_ITEMS.items():
            assert item in AMAZON_COMMUNITIES[community]

    def test_harry_potter_is_popular_but_a_community_of_its_own(self):
        assert any("Harry Potter" in item for item in AMAZON_POPULAR_ITEMS)
        assert "harry-potter" in AMAZON_COMMUNITIES


class TestAmazonGenerator:
    def test_deterministic_per_seed(self):
        assert generate_amazon_graph(num_filler_items=40, seed=1) == generate_amazon_graph(
            num_filler_items=40, seed=1
        )
        assert generate_amazon_graph(num_filler_items=40, seed=1) != generate_amazon_graph(
            num_filler_items=40, seed=2
        )

    def test_contains_all_community_items(self, small_amazon):
        for members in AMAZON_COMMUNITIES.values():
            for member in members:
                assert small_amazon.has_label(member)

    def test_tolkien_community_is_reciprocated(self, small_amazon):
        assert small_amazon.has_edge("The Fellowship of the Ring", "The Two Towers")
        assert small_amazon.has_edge("The Two Towers", "The Fellowship of the Ring")

    def test_bestsellers_receive_cross_genre_links_without_returning(self, small_amazon):
        tolkien = AMAZON_COMMUNITIES["tolkien"]
        harry_potter = "Harry Potter (Book 1)"
        incoming_from_tolkien = sum(
            1 for member in tolkien if small_amazon.has_edge(member, harry_potter)
        )
        outgoing_to_tolkien = sum(
            1 for member in tolkien if small_amazon.has_edge(harry_potter, member)
        )
        assert incoming_from_tolkien >= 2
        assert outgoing_to_tolkien == 0

    def test_bestsellers_have_top_in_degrees(self, small_amazon):
        in_degrees = small_amazon.in_degrees()
        median = sorted(in_degrees)[len(in_degrees) // 2]
        for popular in AMAZON_POPULAR_ITEMS[:3]:
            assert small_amazon.in_degree(popular) > 3 * max(median, 1)

    def test_no_self_loops_and_named(self, small_amazon):
        assert small_amazon.self_loops() == []
        assert small_amazon.name == "amazon co-purchase"

    def test_invalid_filler_count(self):
        with pytest.raises(InvalidParameterError):
            generate_amazon_graph(num_filler_items=-1)


class TestTwitterGenerator:
    def test_both_crawls_available(self):
        assert set(TWITTER_DATASETS) == {"8m", "cop27"}

    def test_deterministic_per_seed(self):
        assert generate_twitter_graph("cop27", num_casual_users=30, seed=1) == \
            generate_twitter_graph("cop27", num_casual_users=30, seed=1)

    def test_contains_community_accounts(self, small_twitter):
        for handles in TWITTER_COMMUNITIES["cop27"].values():
            for handle in handles:
                assert small_twitter.has_label(handle)

    def test_celebrities_have_high_in_degree_low_reciprocity(self, small_twitter):
        celebrity = "@global_celebrity"
        in_degree = small_twitter.in_degree(celebrity)
        out_degree = small_twitter.out_degree(celebrity)
        assert in_degree > 2 * max(out_degree, 1)

    def test_activist_community_is_reciprocated(self, small_twitter):
        members = TWITTER_COMMUNITIES["cop27"]["climate-activists"]
        reciprocated = sum(
            1
            for first in members
            for second in members
            if first != second
            and small_twitter.has_edge(first, second)
            and small_twitter.has_edge(second, first)
        )
        assert reciprocated >= len(members)

    def test_topics_produce_different_graphs(self):
        cop27 = generate_twitter_graph("cop27", num_casual_users=20, seed=0)
        womens_day = generate_twitter_graph("8m", num_casual_users=20, seed=0)
        assert cop27.has_label("@un_climate")
        assert not womens_day.has_label("@un_climate")
        assert womens_day.has_label("@ni_una_menos")

    def test_overall_reciprocity_moderate(self, small_twitter):
        assert 0.05 < reciprocity(small_twitter) < 0.9

    def test_unknown_topic_rejected(self):
        with pytest.raises(InvalidParameterError):
            generate_twitter_graph("worldcup")

    def test_invalid_casual_user_count(self):
        with pytest.raises(InvalidParameterError):
            generate_twitter_graph("cop27", num_casual_users=-3)
