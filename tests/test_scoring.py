"""Unit tests for :mod:`repro.scoring`."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import InvalidParameterError
from repro.scoring import (
    ConstantScoring,
    ExponentialScoring,
    LinearScoring,
    QuadraticScoring,
    ScoringFunction,
    available_scoring_functions,
    get_scoring_function,
    register_scoring_function,
)


class TestBuiltinFunctions:
    def test_exponential_values(self):
        sigma = ExponentialScoring()
        assert sigma(2) == pytest.approx(math.exp(-2))
        assert sigma(5) == pytest.approx(math.exp(-5))

    def test_linear_values(self):
        sigma = LinearScoring()
        assert sigma(2) == pytest.approx(0.5)
        assert sigma(4) == pytest.approx(0.25)

    def test_quadratic_values(self):
        sigma = QuadraticScoring()
        assert sigma(2) == pytest.approx(0.25)
        assert sigma(3) == pytest.approx(1 / 9)

    def test_constant_values(self):
        sigma = ConstantScoring()
        assert sigma(2) == 1.0
        assert sigma(10) == 1.0

    @pytest.mark.parametrize(
        "sigma", [ExponentialScoring(), LinearScoring(), QuadraticScoring(), ConstantScoring()]
    )
    def test_non_increasing_in_length(self, sigma):
        weights = sigma.weights_up_to(10)
        assert all(earlier >= later for earlier, later in zip(weights, weights[1:]))
        assert all(weight > 0 for weight in weights)

    def test_cycle_length_below_two_rejected(self):
        with pytest.raises(InvalidParameterError):
            ExponentialScoring()(1)
        with pytest.raises(InvalidParameterError):
            ExponentialScoring().weights_up_to(1)

    def test_weights_up_to_length(self):
        weights = LinearScoring().weights_up_to(5)
        assert len(weights) == 4  # lengths 2, 3, 4, 5
        assert weights[0] == pytest.approx(0.5)

    def test_equality_and_hash(self):
        assert ExponentialScoring() == ExponentialScoring()
        assert ExponentialScoring() != LinearScoring()
        assert hash(ExponentialScoring()) == hash(ExponentialScoring())

    def test_repr(self):
        assert "ExponentialScoring" in repr(ExponentialScoring())


class TestRegistry:
    def test_builtins_registered(self):
        names = available_scoring_functions()
        assert set(names) >= {"exp", "lin", "quad", "const"}

    def test_lookup_by_name(self):
        assert isinstance(get_scoring_function("exp"), ExponentialScoring)
        assert isinstance(get_scoring_function("const"), ConstantScoring)

    def test_lookup_by_instance_and_class(self):
        instance = LinearScoring()
        assert get_scoring_function(instance) is instance
        assert isinstance(get_scoring_function(QuadraticScoring), QuadraticScoring)

    def test_unknown_name_fails(self):
        with pytest.raises(InvalidParameterError):
            get_scoring_function("does-not-exist")

    def test_non_string_non_function_fails(self):
        with pytest.raises(InvalidParameterError):
            get_scoring_function(3.14)

    def test_register_custom_function(self):
        @register_scoring_function
        class HalvingScoring(ScoringFunction):
            name = "halving-test"

            def weight(self, cycle_length: int) -> float:
                return 2.0 ** -cycle_length

        try:
            sigma = get_scoring_function("halving-test")
            assert sigma(3) == pytest.approx(0.125)
        finally:
            # Keep the global registry clean for other tests.
            from repro.scoring import functions

            functions._REGISTRY.pop("halving-test", None)

    def test_register_without_name_fails(self):
        class Nameless(ScoringFunction):
            name = ""

            def weight(self, cycle_length: int) -> float:
                return 1.0

        with pytest.raises(InvalidParameterError):
            register_scoring_function(Nameless)
