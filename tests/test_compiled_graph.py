"""CompiledGraph artifact semantics and the datastore's artifact cache.

The invalidation contract under test: artifacts are keyed by dataset upload
version, a re-upload (or drop) evicts the cached artifact, and a stale CSR
snapshot is never served for a replaced graph — including through the full
gateway/scheduler path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.catalog import DatasetCatalog
from repro.exceptions import InvalidParameterError, StorageError
from repro.graph.compiled import CompiledGraph, compiled_of
from repro.graph.digraph import DirectedGraph
from repro.graph.generators import gnp_random_graph
from repro.platform.datastore import DataStore
from repro.platform.gateway import ApiGateway


@pytest.fixture
def random_graph():
    return gnp_random_graph(40, 0.12, seed=5, name="random-40")


class TestCompiledGraphStructures:
    def test_csr_matches_direct_conversion(self, random_graph):
        compiled = CompiledGraph(random_graph)
        assert not compiled.csr_ready
        assert compiled.to_csr() == random_graph.to_csr()
        assert compiled.csr_ready
        # Same frozen snapshot on every call.
        assert compiled.to_csr() is compiled.to_csr()

    def test_transpose_reverses_every_edge(self, random_graph):
        compiled = CompiledGraph(random_graph)
        transpose = compiled.transpose_csr()
        sources, targets = compiled.to_csr().edges()
        for source, target in zip(sources.tolist(), targets.tolist()):
            assert transpose.has_edge(target, source)
        assert transpose.number_of_edges() == random_graph.number_of_edges()

    def test_transpose_rows_are_sorted(self, random_graph):
        transpose = CompiledGraph(random_graph).transpose_csr()
        for node in range(transpose.number_of_nodes()):
            row = transpose.successors(node)
            assert np.all(np.diff(row) > 0)

    def test_out_degrees_and_dangling_mask(self):
        graph = DirectedGraph(name="dangling")
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")  # c is dangling
        compiled = CompiledGraph(graph)
        assert compiled.out_degrees().tolist() == [1, 1, 0]
        assert compiled.dangling_mask().tolist() == [0.0, 0.0, 1.0]

    def test_adjacency_matrices_match_scipy_conversion(self, random_graph):
        compiled = CompiledGraph(random_graph)
        direct = random_graph.to_csr().to_scipy()
        assert (compiled.adjacency() != direct).nnz == 0
        assert (compiled.adjacency_transpose() != direct.T.tocsr()).nnz == 0

    def test_adjacency_lists_round_trip(self, random_graph):
        compiled = CompiledGraph(random_graph)
        indptr, indices, t_indptr, t_indices = compiled.adjacency_lists()
        assert indptr == compiled.to_csr().indptr.tolist()
        assert indices == compiled.to_csr().indices.tolist()
        assert t_indptr == compiled.transpose_csr().indptr.tolist()
        assert t_indices == compiled.transpose_csr().indices.tolist()

    def test_labels_array_is_shared_and_correct(self, random_graph):
        compiled = CompiledGraph(random_graph)
        assert compiled.labels_array().tolist() == random_graph.labels()
        assert compiled.labels_array() is compiled.labels_array()


class TestGraphFacade:
    def test_delegates_directed_graph_api(self, random_graph):
        compiled = CompiledGraph(random_graph)
        assert compiled.number_of_nodes() == random_graph.number_of_nodes()
        assert compiled.number_of_edges() == random_graph.number_of_edges()
        assert compiled.name == random_graph.name
        assert len(compiled) == len(random_graph)
        assert list(compiled) == list(random_graph)
        assert 0 in compiled
        assert compiled.successors(0) == random_graph.successors(0)
        assert compiled.predecessors(0) == random_graph.predecessors(0)
        assert compiled.labels() == random_graph.labels()

    def test_folded_transition_transpose_matches_direct_build(self, random_graph):
        from repro.algorithms.pagerank import transition_matrix

        compiled = CompiledGraph(random_graph)
        for alpha in (0.3, 0.85):
            expected = transition_matrix(random_graph.to_csr()).transpose().tocsr()
            expected.data = expected.data * alpha
            folded = compiled.folded_transition_transpose(alpha)
            assert np.allclose((folded - expected).toarray(), 0.0)
            # Cached: the same object comes back for the same alpha.
            assert compiled.folded_transition_transpose(alpha) is folded
        # The reversed direction is the transition of the transposed graph.
        reverse_expected = (
            transition_matrix(random_graph.transpose().to_csr()).transpose().tocsr()
        )
        reverse_expected.data = reverse_expected.data * 0.85
        reverse_folded = compiled.folded_transition_transpose(0.85, reverse=True)
        assert np.allclose((reverse_folded - reverse_expected).toarray(), 0.0)

    def test_folded_transition_cache_is_bounded(self, random_graph):
        from repro.graph.compiled import MAX_FOLDED_TRANSITIONS

        compiled = CompiledGraph(random_graph)
        sweep = np.linspace(0.05, 0.95, MAX_FOLDED_TRANSITIONS + 5)
        for alpha in sweep:
            compiled.folded_transition_transpose(float(alpha))
        assert len(compiled._folded_transitions) == MAX_FOLDED_TRANSITIONS
        # The most recent alpha survived the sweep; the earliest was evicted.
        assert (float(sweep[-1]), False) in compiled._folded_transitions
        assert (float(sweep[0]), False) not in compiled._folded_transitions

    def test_compiled_of_is_idempotent(self, random_graph):
        compiled = compiled_of(random_graph)
        assert compiled_of(compiled) is compiled
        assert compiled.graph is random_graph

    def test_algorithms_accept_compiled_graphs(self, random_graph):
        from repro.algorithms.pagerank import pagerank
        from repro.algorithms.cyclerank import cyclerank

        compiled = compiled_of(random_graph)
        assert np.array_equal(
            pagerank(compiled).scores, pagerank(random_graph).scores
        )
        assert np.allclose(
            cyclerank(compiled, 0).scores, cyclerank(random_graph, 0).scores,
            rtol=1e-12, atol=0,
        )


def _two_node_graph(extra_edge: bool) -> DirectedGraph:
    graph = DirectedGraph(name="versioned")
    graph.add_edge("a", "b")
    if extra_edge:
        graph.add_edge("b", "a")
    return graph


class TestDataStoreArtifactCache:
    def test_artifact_is_cached_per_dataset(self):
        datastore = DataStore()
        datastore.store_dataset("ds", _two_node_graph(False))
        first, version = datastore.fetch_compiled_with_version("ds")
        second = datastore.fetch_compiled("ds")
        assert first is second
        assert version == 1
        stats = datastore.artifact_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["compiled"] == 1

    def test_missing_dataset_raises(self):
        with pytest.raises(StorageError):
            DataStore().fetch_compiled("nope")

    def test_reupload_invalidates_and_recompiles(self):
        datastore = DataStore()
        datastore.store_dataset("ds", _two_node_graph(False))
        stale, stale_version = datastore.fetch_compiled_with_version("ds")
        assert not stale.to_csr().has_edge(1, 0)

        datastore.store_dataset("ds", _two_node_graph(True))
        fresh, fresh_version = datastore.fetch_compiled_with_version("ds")
        assert fresh is not stale
        assert fresh_version == stale_version + 1
        # The stale CSR must never be served: the new artifact sees the
        # reciprocal edge the first upload lacked.
        assert fresh.to_csr().has_edge(1, 0)
        assert datastore.artifact_stats()["invalidations"] == 1

    def test_drop_dataset_evicts_artifact(self):
        datastore = DataStore()
        datastore.store_dataset("ds", _two_node_graph(False))
        datastore.fetch_compiled("ds")
        datastore.drop_dataset("ds")
        assert datastore.artifact_stats()["compiled"] == 0
        assert datastore.artifact_stats()["invalidations"] == 1
        with pytest.raises(StorageError):
            datastore.fetch_compiled("ds")

    def test_cache_knobs_conflict_with_explicit_cache(self):
        from repro.platform.cache import ResultCache

        with pytest.raises(InvalidParameterError):
            DataStore(result_cache=ResultCache(), cache_ttl_seconds=5.0)
        with pytest.raises(InvalidParameterError):
            DataStore(result_cache=ResultCache(), cache_admit_on_second_miss=True)


class TestStaleCsrNeverServedEndToEnd:
    def test_reupload_changes_served_rankings(self):
        # CycleRank on the first upload sees no cycle through "a"; after the
        # re-upload the reciprocal edge creates one.  A stale compiled CSR
        # would keep returning a zero ranking.
        catalog = DatasetCatalog()
        catalog.register_graph("versioned", _two_node_graph(False), description="v1")
        with ApiGateway(catalog=catalog) as gateway:
            query = {
                "dataset_id": "versioned",
                "algorithm": "cyclerank",
                "source": "a",
            }
            first = gateway.run_queries([query], synchronous=True)
            assert gateway.get_rankings(first)[0].total() == 0.0

            gateway.upload_dataset(
                "versioned", _two_node_graph(True), replace=True, description="v2"
            )
            second = gateway.run_queries([query], synchronous=True)
            assert gateway.get_rankings(second)[0].total() > 0.0

            artifacts = gateway.get_platform_stats()["artifacts"]
            assert artifacts["misses"] >= 2  # one compile per upload version
