"""Acceptance tests for the cross-process compute tier.

Covers the PR's guarantees end to end: the shared-memory serialisation seam
on :class:`CompiledGraph` round-trips the compiled arrays bit-exactly, every
registry algorithm run through :class:`ProcessExecutorPool` returns rankings
bit-identical to the thread pool and the sequential batch path, worker
crashes surface as typed failures (never hung futures) and the pool recovers,
artifact re-upload/drop never serves a stale CSR and leaks no shared-memory
segments, and deadlines/telemetry cooperate across the process boundary.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.algorithms import registry as algorithm_registry
from repro.algorithms.base import Algorithm, AlgorithmSpec
from repro.algorithms.registry import available_algorithms, get_algorithm
from repro.datasets.catalog import DatasetCatalog
from repro.exceptions import DeadlineExceededError, ExecutorError, GraphError
from repro.graph.compiled import CompiledGraph, SharedGraphHandle, compiled_of
from repro.graph.digraph import DirectedGraph
from repro.platform.datastore import DataStore
from repro.platform.executor import ExecutorPool, ProcessExecutorPool
from repro.platform.gateway import ApiGateway
from repro.platform.resilience import Deadline, deadline_scope
from repro.platform.shared_artifacts import SharedArtifactRegistry
from repro.platform.tasks import Query

# Attach-side SharedMemory finalisers can run while numpy views into the
# segment are still being collected; CPython reports the resulting BufferError
# as "Exception ignored" noise.  The owner still unlinks the segment, so the
# warning is benign.
pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnraisableExceptionWarning"
)

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="worker-crash choreography relies on fork-inherited registries",
)


def _segment_exists(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name}")


def _bench_graph(name: str = "shared-toy") -> DirectedGraph:
    graph = DirectedGraph(name=name)
    edges = [
        ("A", "B"), ("B", "C"), ("C", "A"), ("C", "D"), ("D", "A"),
        ("B", "A"), ("D", "E"), ("E", "B"), ("A", "E"), ("E", "F"),
        ("F", "C"), ("F", "A"),
    ]
    for source, target in edges:
        graph.add_edge(source, target)
    return graph


@pytest.fixture
def toy_store():
    graph = _bench_graph()
    datastore = DataStore()
    datastore.store_dataset("toy", graph)
    return datastore


@pytest.fixture
def process_pool(toy_store):
    pool = ProcessExecutorPool(toy_store, num_workers=2)
    yield pool
    pool.shutdown()


@pytest.fixture
def thread_pool(toy_store):
    pool = ExecutorPool(toy_store, num_workers=2)
    yield pool
    pool.shutdown()


class TestSharedGraphSeam:
    """to_shared()/from_shared() round-trip the compiled arrays zero-copy."""

    def test_round_trip_is_bit_exact(self):
        compiled = compiled_of(_bench_graph())
        handle, shm = compiled.to_shared(segment=f"repro-test-{os.getpid()}-rt", version=3)
        try:
            view = CompiledGraph.from_shared(handle)
            assert np.array_equal(view.to_csr().indptr, compiled.to_csr().indptr)
            assert np.array_equal(view.to_csr().indices, compiled.to_csr().indices)
            assert np.array_equal(
                view.transpose_csr().indptr, compiled.transpose_csr().indptr
            )
            assert np.array_equal(
                view.transpose_csr().indices, compiled.transpose_csr().indices
            )
            assert np.array_equal(view.out_degrees(), compiled.out_degrees())
            assert np.array_equal(view.dangling_mask(), compiled.dangling_mask())
            assert list(view.labels_array()) == list(compiled.labels_array())
            assert view.name == compiled.name
            assert view.resolve("C") == compiled.resolve("C")
            assert view.number_of_nodes() == compiled.number_of_nodes()
            assert view.number_of_edges() == compiled.number_of_edges()
        finally:
            shm.close()
            shm.unlink()

    def test_views_share_memory_not_copies(self):
        compiled = compiled_of(_bench_graph())
        handle, shm = compiled.to_shared(segment=f"repro-test-{os.getpid()}-zc", version=1)
        try:
            view = CompiledGraph.from_shared(handle)
            indptr = view.to_csr().indptr
            # A zero-copy view over the segment: no ndarray owns its data.
            assert not indptr.flags.owndata
            assert not indptr.flags.writeable
        finally:
            shm.close()
            shm.unlink()

    def test_version_mismatch_raises_instead_of_serving_stale(self):
        compiled = compiled_of(_bench_graph())
        handle, shm = compiled.to_shared(segment=f"repro-test-{os.getpid()}-vs", version=5)
        try:
            stale = SharedGraphHandle(
                segment=handle.segment, version=6, graph_name=handle.graph_name,
                num_nodes=handle.num_nodes, num_edges=handle.num_edges,
                total_bytes=handle.total_bytes, layout=handle.layout,
            )
            with pytest.raises(GraphError, match="version"):
                CompiledGraph.from_shared(stale)
        finally:
            shm.close()
            shm.unlink()

    def test_missing_segment_raises_graph_error(self):
        compiled = compiled_of(_bench_graph())
        handle, shm = compiled.to_shared(segment=f"repro-test-{os.getpid()}-ms", version=1)
        shm.close()
        shm.unlink()
        with pytest.raises(GraphError, match="no longer exists"):
            CompiledGraph.from_shared(handle)

    def test_handle_reports_csr_bytes(self):
        compiled = compiled_of(_bench_graph())
        handle, shm = compiled.to_shared(segment=f"repro-test-{os.getpid()}-cb", version=1)
        try:
            expected = (
                compiled.to_csr().indptr.nbytes
                + compiled.to_csr().indices.nbytes
                + compiled.transpose_csr().indptr.nbytes
                + compiled.transpose_csr().indices.nbytes
            )
            assert handle.csr_bytes == expected
            assert handle.total_bytes >= expected
        finally:
            shm.close()
            shm.unlink()


class TestBitIdentity:
    """Every registry algorithm: process pool == thread pool == sequential."""

    def test_every_registry_algorithm_is_bit_identical(
        self, toy_store, process_pool, thread_pool
    ):
        graph, _ = toy_store.fetch_compiled_with_version("toy")
        personalized = set(available_algorithms(personalized=True))
        for name in available_algorithms():
            source = "A" if name in personalized else None
            query = [Query(dataset_id="toy", algorithm=name, source=source, parameters={})]
            via_process = process_pool.execute_batch_sync(query, graph, log_id="t")
            via_thread = thread_pool.execute_batch_sync(query, graph, log_id="t")
            sequential = get_algorithm(name).run_batch(
                graph, sources=[source], parameters={}
            )
            for ranking in (via_thread.rankings[0], sequential[0]):
                assert np.array_equal(
                    via_process.rankings[0].scores, ranking.scores
                ), f"{name} diverged across execution tiers"
                assert list(via_process.rankings[0]) == list(ranking), name

    def test_batched_sources_stay_aligned(self, toy_store, process_pool, thread_pool):
        graph, _ = toy_store.fetch_compiled_with_version("toy")
        sources = ["A", "B", "C", "D"]
        queries = [
            Query(dataset_id="toy", algorithm="personalized-pagerank",
                  source=source, parameters={})
            for source in sources
        ]
        via_process = process_pool.execute_batch_sync(queries, graph, log_id="t")
        via_thread = thread_pool.execute_batch_sync(queries, graph, log_id="t")
        assert [r.reference for r in via_process.rankings] == sources
        for ours, theirs in zip(via_process.rankings, via_thread.rankings):
            assert np.array_equal(ours.scores, theirs.scores)


class TestSegmentLifecycle:
    """Segments live exactly as long as the artifact they mirror."""

    def test_repeat_batches_reuse_one_cached_segment(self, toy_store, process_pool):
        graph, _ = toy_store.fetch_compiled_with_version("toy")
        query = [Query(dataset_id="toy", algorithm="pagerank", source=None, parameters={})]
        for _ in range(3):
            process_pool.execute_batch_sync(query, graph, log_id="t")
        stats = process_pool.stats()
        assert stats["segments"] == 1
        assert stats["segments_exported"] == 1
        assert stats["segments_ephemeral"] == 0

    def test_invalidate_unlinks_the_segment(self, toy_store, process_pool):
        graph, _ = toy_store.fetch_compiled_with_version("toy")
        query = [Query(dataset_id="toy", algorithm="pagerank", source=None, parameters={})]
        process_pool.execute_batch_sync(query, graph, log_id="t")
        segments = process_pool.artifacts.active_segments()
        assert segments and all(_segment_exists(name) for name in segments)
        process_pool.invalidate_artifact("toy")
        assert process_pool.artifacts.active_segments() == ()
        assert not any(_segment_exists(name) for name in segments)

    def test_shutdown_unlinks_every_segment(self, toy_store):
        pool = ProcessExecutorPool(toy_store, num_workers=2)
        graph, _ = toy_store.fetch_compiled_with_version("toy")
        query = [Query(dataset_id="toy", algorithm="pagerank", source=None, parameters={})]
        pool.execute_batch_sync(query, graph, log_id="t")
        segments = pool.artifacts.active_segments()
        assert segments
        pool.shutdown()
        assert pool.artifacts.active_segments() == ()
        assert not any(_segment_exists(name) for name in segments)

    def test_reupload_race_takes_the_ephemeral_path(self, toy_store):
        """A graph the datastore already replaced still executes correctly,
        but its segment is one-shot: never cached, unlinked after use."""
        registry = SharedArtifactRegistry(toy_store)
        old_graph, _ = toy_store.fetch_compiled_with_version("toy")
        # Re-upload: the datastore's current artifact is now a *new* object.
        toy_store.store_dataset("toy", _bench_graph())
        handle, release = registry.lease("toy", old_graph)
        assert release is not None, "a replaced artifact must not be cached"
        assert registry.active_segments() == ()
        assert _segment_exists(handle.segment)
        release()
        assert not _segment_exists(handle.segment)
        # The current artifact is cacheable as usual.
        new_graph, _ = toy_store.fetch_compiled_with_version("toy")
        cached_handle, cached_release = registry.lease("toy", new_graph)
        assert cached_release is None
        assert registry.active_segments() == (cached_handle.segment,)
        registry.close()
        assert not _segment_exists(cached_handle.segment)

    def test_concurrent_leases_converge_on_one_segment(self, toy_store):
        """Two batches exporting the same dataset at once must not unlink
        each other's in-flight segment (the duplicate export is discarded,
        the winner's segment is adopted)."""
        import threading

        registry = SharedArtifactRegistry(toy_store)
        graph, _ = toy_store.fetch_compiled_with_version("toy")
        barrier = threading.Barrier(4)
        results = []

        def race():
            barrier.wait()
            results.append(registry.lease("toy", graph))

        threads = [threading.Thread(target=race) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        handles = {handle.segment for handle, _ in results}
        assert len(handles) == 1, f"concurrent leases diverged: {handles}"
        assert all(release is None for _, release in results)
        assert all(_segment_exists(name) for name in handles)
        registry.close()
        assert not any(_segment_exists(name) for name in handles)

    def test_reupload_mid_flight_never_serves_stale_results(self):
        """Re-upload between submissions: the process tier always computes on
        the artifact version the datastore serves at execution time."""
        catalog = DatasetCatalog()
        catalog.register_graph("mine", _bench_graph("v1"), description="v1")
        with ApiGateway(
            catalog=catalog, executor_mode="process", num_workers=2
        ) as gateway:
            gateway.upload_dataset("mine", _bench_graph("v1"), replace=True)
            first = gateway.run_queries(
                [{"dataset_id": "mine", "algorithm": "pagerank"}], synchronous=True
            )
            before = gateway.get_rankings(first)[0]
            old_segments = gateway.executor_pool.artifacts.active_segments()

            # Replace the dataset with a structurally different graph.
            replacement = DirectedGraph(name="v2")
            for source, target in [("X", "Y"), ("Y", "Z"), ("Z", "X"), ("X", "Z")]:
                replacement.add_edge(source, target)
            gateway.upload_dataset("mine", replacement, replace=True)
            # The old segment is unlinked with the artifact it mirrored.
            assert not any(_segment_exists(name) for name in old_segments)

            second = gateway.run_queries(
                [{"dataset_id": "mine", "algorithm": "pagerank"}], synchronous=True
            )
            after = gateway.get_rankings(second)[0]
            assert list(after) != list(before), "stale CSR served after re-upload"
            assert len(after.scores) == replacement.number_of_nodes()


class TestWorkerFaults:
    """Crash coverage: typed failure, pool recovery, no orphaned segments."""

    @fork_only
    def test_worker_crash_settles_failed_and_pool_recovers(self):
        # Registered BEFORE the gateway: forked workers inherit it, so the
        # dispatch is routed to a worker (not the in-process fallback) and
        # the crash happens in a sacrificial process, never in pytest.
        class _KillWorker(Algorithm):
            spec = AlgorithmSpec(
                name="kill-worker",
                display_name="Kill Worker",
                personalized=False,
                parameters=(),
                description="test-only: kills the executing worker process",
            )

            def _execute(self, graph, *, source, parameters):
                if multiprocessing.parent_process() is not None:
                    os._exit(1)  # SIGKILL-style death mid-batch
                raise RuntimeError("refusing to kill the test process")

        algorithm_registry.register_algorithm(_KillWorker(), replace=True)
        catalog = DatasetCatalog()
        catalog.register_graph("mine", _bench_graph(), description="crash target")
        try:
            with ApiGateway(
                catalog=catalog, executor_mode="process", num_workers=2
            ) as gateway:
                comparison_id = gateway.run_queries(
                    [{"dataset_id": "mine", "algorithm": "kill-worker"}],
                    synchronous=True,
                )
                progress = gateway.wait_for(comparison_id, timeout_seconds=60.0)
                assert progress.state.value == "failed"
                events = gateway.get_events(comparison_id)
                failures = [e for e in events if e.get("type") == "query_failed"]
                assert failures, f"no typed query_failed event in {events}"
                assert "crashed" in failures[0]["error"]
                assert gateway.executor_pool.stats()["worker_crashes"] >= 1

                # The rebuilt pool serves subsequent submissions.
                ok = gateway.run_queries(
                    [{"dataset_id": "mine", "algorithm": "pagerank"}],
                    synchronous=True,
                )
                assert gateway.wait_for(ok, timeout_seconds=60.0).state.value == "completed"
                segments = gateway.executor_pool.artifacts.active_segments()
            # Gateway close: nothing orphaned in /dev/shm.
            assert gateway.executor_pool.artifacts.active_segments() == ()
            assert not any(_segment_exists(name) for name in segments)
        finally:
            algorithm_registry._REGISTRY.pop("kill-worker", None)

    def test_worker_error_is_typed_not_hung(self, toy_store, process_pool):
        graph, _ = toy_store.fetch_compiled_with_version("toy")
        query = [
            Query(dataset_id="toy", algorithm="cyclerank",
                  source="does-not-exist", parameters={"k": 3})
        ]
        started = time.perf_counter()
        with pytest.raises(ExecutorError, match="batch failed"):
            process_pool.execute_batch_sync(query, graph, log_id="t")
        assert time.perf_counter() - started < 30.0


class TestDeadlineCooperation:
    def test_expired_deadline_is_checked_before_dispatch(self, toy_store, process_pool):
        graph, _ = toy_store.fetch_compiled_with_version("toy")
        query = [Query(dataset_id="toy", algorithm="pagerank", source=None, parameters={})]
        expired = Deadline(time.monotonic() - 1.0, deadline_ms=1)
        executed_before = process_pool.total_executed()
        with deadline_scope(expired):
            with pytest.raises(DeadlineExceededError, match="before process dispatch"):
                process_pool.execute_batch_sync(query, graph, log_id="t")
        # Nothing was dispatched, nothing counted.
        assert process_pool.total_executed() == executed_before


class TestInProcessFallback:
    def test_algorithm_missing_from_workers_falls_back_in_process(
        self, toy_store, process_pool, thread_pool
    ):
        graph, _ = toy_store.fetch_compiled_with_version("toy")
        # Force the workers to exist (fork happens on first submit), so the
        # algorithm registered afterwards is invisible to them.
        warmup = [Query(dataset_id="toy", algorithm="pagerank", source=None, parameters={})]
        process_pool.execute_batch_sync(warmup, graph, log_id="t")

        from repro.algorithms.pagerank import pagerank

        class _LateRegistered(Algorithm):
            spec = AlgorithmSpec(
                name="late-registered",
                display_name="Late Registered",
                personalized=False,
                parameters=(),
                description="test-only: registered after the workers forked",
            )

            def _execute(self, graph, *, source, parameters):
                return pagerank(graph)

        algorithm_registry.register_algorithm(_LateRegistered(), replace=True)
        try:
            query = [Query(dataset_id="toy", algorithm="late-registered",
                           source=None, parameters={})]
            outcome = process_pool.execute_batch_sync(query, graph, log_id="t")
            reference = thread_pool.execute_batch_sync(query, graph, log_id="t")
            assert np.array_equal(
                outcome.rankings[0].scores, reference.rankings[0].scores
            )
        finally:
            algorithm_registry._REGISTRY.pop("late-registered", None)


class TestObservabilitySurface:
    def test_stats_metrics_and_trace_expose_the_process_tier(self):
        catalog = DatasetCatalog()
        catalog.register_graph("mine", _bench_graph(), description="observed")
        with ApiGateway(
            catalog=catalog, executor_mode="process", num_workers=2
        ) as gateway:
            comparison_id = gateway.run_queries(
                [{"dataset_id": "mine", "algorithm": "pagerank"}], synchronous=True
            )
            gateway.wait_for(comparison_id, timeout_seconds=60.0)

            stats = gateway.get_platform_stats()
            executors = stats["executors"]
            assert executors["mode"] == "process"
            assert executors["num_workers"] == 2
            assert executors["executed_queries"] >= 1
            assert executors["segments"] == 1

            exposition = gateway.render_metrics()
            assert 'repro_executor_busy_workers{mode="process"}' in exposition
            assert 'repro_executor_batch_ms_bucket{mode="process"' in exposition

            trace = gateway.get_trace(comparison_id)["trace"]

            def spans(node):
                yield node
                for child in node.get("children", []):
                    yield from spans(child)

            executor_spans = [
                span
                for root in trace["roots"]
                for span in spans(root)
                if span["name"] == "executor_run"
            ]
            assert executor_spans, "executor span missing from the parent trace"
            annotations = executor_spans[0]["annotations"]
            assert annotations["mode"] == "process"
            assert annotations["worker_pid"] != os.getpid()

    def test_thread_mode_histogram_carries_its_own_label(self, two_triangles):
        catalog = DatasetCatalog()
        catalog.register_graph("toy", two_triangles, description="thread mode")
        with ApiGateway(
            catalog=catalog, executor_mode="thread", num_workers=2
        ) as gateway:
            comparison_id = gateway.run_queries(
                [{"dataset_id": "toy", "algorithm": "pagerank"}], synchronous=True
            )
            gateway.wait_for(comparison_id, timeout_seconds=60.0)
            assert gateway.get_platform_stats()["executors"]["mode"] == "thread"
            exposition = gateway.render_metrics()
            assert 'repro_executor_batch_ms_bucket{mode="thread"' in exposition


class TestGatewayWiring:
    def test_executor_mode_is_validated(self):
        with pytest.raises(Exception, match="executor_mode"):
            ApiGateway(executor_mode="fiber")

    def test_default_mode_is_module_configurable(self):
        from repro.platform import gateway as gateway_module

        original = gateway_module.DEFAULT_EXECUTOR_MODE
        gateway_module.DEFAULT_EXECUTOR_MODE = "process"
        try:
            with ApiGateway() as gateway:
                assert isinstance(gateway.executor_pool, ProcessExecutorPool)
        finally:
            gateway_module.DEFAULT_EXECUTOR_MODE = original

    def test_cli_flags_reach_the_gateway(self):
        from repro.cli import build_parser

        arguments = build_parser().parse_args(
            ["run", "toy", "pagerank", "--executor-mode", "process", "--workers", "3"]
        )
        assert arguments.executor_mode == "process"
        assert arguments.workers == 3
        serve = build_parser().parse_args(["serve", "--executor-mode", "thread"])
        assert serve.executor_mode == "thread"
        assert serve.workers == 2
