"""Tests of the public package surface: exports, version, CLI plumbing, HTML escaping."""

from __future__ import annotations

from pathlib import Path

import pytest

import repro
from repro.cli import build_parser
from repro.platform.gateway import ApiGateway
from repro.platform.webui import WebUI
from repro.ranking.comparison import ComparisonTable


class TestPublicExports:
    def test_every_name_in_dunder_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists {name!r} but it is missing"

    def test_subpackage_exports_resolve(self):
        import repro.algorithms
        import repro.analysis
        import repro.datasets
        import repro.graph
        import repro.io
        import repro.platform
        import repro.ranking
        import repro.scoring

        for module in (
            repro.algorithms, repro.analysis, repro.datasets, repro.graph,
            repro.io, repro.platform, repro.ranking, repro.scoring,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.__all__ lists {name!r}"

    def test_version_is_single_sourced_from_version_py(self):
        # pyproject.toml must not pin its own copy of the version: setuptools
        # reads it dynamically from src/repro/version.py, so there is exactly
        # one place to bump.
        pyproject = Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
        content = pyproject.read_text(encoding="utf-8")
        assert 'dynamic = ["version"]' in content
        assert 'version = { attr = "repro.version.__version__" }' in content
        assert f'version = "{repro.__version__}"' not in content

    def test_cli_version_flag_prints_the_package_version(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_paper_algorithm_count_is_seven(self):
        from repro.algorithms.registry import PAPER_ALGORITHMS

        assert len(PAPER_ALGORITHMS) == 7


class TestCliParserSurface:
    def test_serve_command_parses_defaults(self):
        arguments = build_parser().parse_args(["serve"])
        assert arguments.command == "serve"
        assert arguments.host == "127.0.0.1"
        assert arguments.port == 8080
        assert arguments.workers == 2

    def test_serve_command_parses_overrides(self):
        arguments = build_parser().parse_args(
            ["serve", "--host", "0.0.0.0", "--port", "0", "--workers", "5"]
        )
        assert arguments.port == 0
        assert arguments.workers == 5

    def test_every_command_has_a_handler(self):
        from repro.cli import _COMMANDS

        parser = build_parser()
        subparser_action = next(
            action for action in parser._actions if hasattr(action, "choices") and action.choices
        )
        assert set(subparser_action.choices) == set(_COMMANDS)


class TestHtmlEscaping:
    def test_labels_with_markup_are_escaped(self, two_triangles):
        from repro.datasets.catalog import DatasetCatalog

        catalog = DatasetCatalog()
        catalog.register_graph("toy", two_triangles)
        with ApiGateway(catalog=catalog, num_workers=1) as gateway:
            ui = WebUI(gateway)
            table = ComparisonTable(
                title="<script>alert(1)</script>",
                columns=["<b>col</b>"],
                rows=[["<i>row</i>"]],
            )
            html = ui.render_table_html(table)
            assert "<script>" not in html
            assert "&lt;script&gt;" in html
            assert "&lt;b&gt;col&lt;/b&gt;" in html
            assert "&lt;i&gt;row&lt;/i&gt;" in html
