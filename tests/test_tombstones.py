"""Deletion-tombstone convergence tests for the self-healing storage tier.

A drop is an *event* with a version, not a blind erase: the replicated
store writes a versioned tombstone to every successor, repair passes treat
the tombstone as authoritative over any lower-versioned live copy (a
recovering shard can never resurrect a dropped dataset), and the tombstone
is reaped once every replica acknowledged it.  The suite scripts the
outage timelines through :mod:`faults` and proves the acceptance property
directly: *any* interleaving of store / drop / outage / recover /
maintenance converges with no resurrected dataset and no stale cache hit,
on the same shard/replica topologies CI runs the platform suites under
(``REPRO_TEST_SHARDS=4`` and ``REPRO_TEST_REPLICAS=2``).
"""

from __future__ import annotations

import json
import threading
from typing import Dict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from faults import FlakyStore, fault_rounds, partition
from repro.exceptions import StorageError
from repro.graph.digraph import DirectedGraph
from repro.graph.generators import cycle_graph, star_graph
from repro.platform.cache import ResultCache
from repro.platform.datastore import DataStore, FileBackedDataStore
from repro.platform.replication import ReplicatedShardedDataStore

#: The CI topologies: REPRO_TEST_SHARDS=4 runs 4 shards / R=2;
#: REPRO_TEST_REPLICAS=2 runs R=2 over its default 3 backends.
TOPOLOGIES = [(4, 2), (3, 2)]


def _build(num_shards: int, replicas: int, read_consistency: str = "one"):
    backends = [FlakyStore(DataStore()) for _ in range(num_shards)]
    store = ReplicatedShardedDataStore(
        shards=backends, replicas=replicas, read_consistency=read_consistency
    )
    return backends, store


def _live_holders(store, dataset_id):
    return sorted(
        shard_id
        for shard_id, backend in store.shard_stores().items()
        if not backend.is_down and backend.has_dataset(dataset_id)
    )


@pytest.fixture(params=TOPOLOGIES, ids=lambda t: f"{t[0]}shards-{t[1]}replicas")
def topology(request):
    return request.param


class TestTombstoneWrites:
    def test_drop_writes_versioned_tombstones_to_all_successors(self, topology):
        backends, store = _build(*topology)
        store.store_dataset("ds", cycle_graph(4))
        targets = store.replica_shards_for("ds")
        store.drop_dataset("ds")
        assert not store.has_dataset("ds")
        for shard_id in targets:
            backend = store.shard_stores()[shard_id]
            assert not backend.has_dataset("ds")
            # Version 1 was the upload; the deletion event is version 2.
            assert backend.dataset_tombstone("ds") == 2
        assert store.replication_stats()["tombstones_written"] >= 1

    def test_repair_reaps_tombstones_once_every_replica_acked(self, topology):
        backends, store = _build(*topology)
        store.store_dataset("ds", cycle_graph(4))
        store.drop_dataset("ds")
        outcome = store.replicate()
        assert outcome["underreplicated"] == 0
        # All successors acknowledged the deletion with every shard
        # reachable, so the marker itself is garbage-collected.
        for backend in backends:
            assert backend.dataset_tombstone("ds") == 0
        assert store.replication_stats()["tombstones_reaped"] >= 1

    def test_result_drop_uses_tombstones_and_reaps(self, topology):
        backends, store = _build(*topology)
        store.put_result("res", {"x": 1})
        store.drop_result("res")
        with pytest.raises(StorageError):
            store.get_result("res")
        store.replicate()
        for backend in backends:
            assert not backend.has_result("res")
            assert not backend.has_result_tombstone("res")


class TestNoResurrection:
    def test_drop_during_outage_never_resurrects_after_recovery(self, topology):
        """The headline scenario: a holder sleeps through the deletion."""
        backends, store = _build(*topology)
        graph = star_graph(6)
        store.store_dataset("ds", graph)
        victim_id = store.replica_shards_for("ds")[0]
        victim = store.shard_stores()[victim_id]
        with partition(victim):
            # The sleeping shard keeps its live copy; the drop lands as a
            # tombstone on the surviving successors.
            store.drop_dataset("ds")
            assert not store.has_dataset("ds")
        # The shard wakes up still holding the pre-deletion copy.
        assert victim.has_dataset("ds")
        store.replicate()
        store.rebalance()
        assert not store.has_dataset("ds")
        for backend in backends:
            assert not backend.has_dataset("ds")
        with pytest.raises(StorageError):
            store.fetch_dataset("ds")

    def test_reupload_after_tombstone_is_not_killed_by_the_marker(self, topology):
        backends, store = _build(*topology)
        store.store_dataset("ds", cycle_graph(4))
        victim = store.shard_stores()[store.replica_shards_for("ds")[0]]
        with partition(victim):
            store.drop_dataset("ds")
        # Re-upload while the tombstone is still pending: the new version
        # strictly exceeds the marker, so repair keeps the new copies and
        # purges only the sleeping shard's stale one.
        fresh = star_graph(5)
        store.store_dataset("ds", fresh)
        store.replicate()
        store.rebalance()
        assert store.fetch_dataset("ds").edge_list() == fresh.edge_list()
        assert len(_live_holders(store, "ds")) == store.replicas

    def test_tombstone_blocks_resurrection_through_rebalance_too(self, topology):
        backends, store = _build(*topology)
        store.store_dataset("ds", cycle_graph(5))
        victim = store.shard_stores()[store.replica_shards_for("ds")[0]]
        with partition(victim):
            store.drop_dataset("ds")
        # Straight to rebalance (no replicate pass first): the migration
        # must also honour the marker instead of re-seeding the copy.
        store.rebalance()
        store.replicate()
        assert not store.has_dataset("ds")
        for backend in backends:
            assert not backend.has_dataset("ds")


class TestTombstonePersistence:
    def test_file_backed_tombstones_survive_a_restart(self, tmp_path):
        store = FileBackedDataStore(tmp_path)
        store.store_dataset("ds", cycle_graph(4))
        store.set_dataset_tombstone("ds", 2)
        store.set_result_tombstone("gone")
        rebooted = FileBackedDataStore(tmp_path)
        assert not rebooted.has_dataset("ds")
        assert rebooted.dataset_tombstone("ds") == 2
        assert rebooted.has_result_tombstone("gone")
        # The persisted marker keeps the version counter past the deletion.
        rebooted.store_dataset("ds", cycle_graph(4))
        assert rebooted.dataset_version("ds") == 3
        assert rebooted.dataset_tombstone("ds") == 0

    def test_tombstone_set_before_crash_kills_surviving_file(self, tmp_path):
        """A marker persisted before the data file was unlinked must win on
        recovery — the crash window between the two writes is safe."""
        store = FileBackedDataStore(tmp_path)
        store.store_dataset("ds", cycle_graph(4))
        # Simulate the crash: persist the marker by hand without removing
        # the dataset file, as if the process died mid-drop.
        state_path = tmp_path / "dataset_versions.json"
        document = json.loads(state_path.read_text(encoding="utf-8"))
        document["dataset_tombstones"]["ds"] = 2
        state_path.write_text(json.dumps(document), encoding="utf-8")
        rebooted = FileBackedDataStore(tmp_path)
        assert not rebooted.has_dataset("ds")
        assert rebooted.dataset_tombstone("ds") == 2

    def test_lower_versioned_tombstone_loses_to_newer_live_copy(self):
        store = DataStore()
        store.store_dataset("ds", cycle_graph(4))
        store.store_dataset("ds", cycle_graph(5))  # version 2
        assert store.set_dataset_tombstone("ds", 1) is False
        assert store.has_dataset("ds")
        assert store.dataset_tombstone("ds") == 0


class TestCacheNeverResurrects:
    def test_reupload_version_strictly_exceeds_the_tombstone(self):
        """Regression: after a tombstoned dataset is re-uploaded, the new
        version counter must strictly exceed the tombstone's version, so a
        cache key minted before the deletion can never be re-served."""
        store = DataStore()
        store.store_dataset("ds", cycle_graph(4))  # version 1
        # A tombstone that arrived from a peer whose counter ran ahead.
        assert store.set_dataset_tombstone("ds", 5) is True
        store.store_dataset("ds", star_graph(4))
        assert store.dataset_version("ds") == 6

    def test_stale_cache_entry_is_unreachable_after_tombstoned_reupload(
        self, topology
    ):
        backends, store = _build(*topology)
        graph = cycle_graph(4)
        store.store_dataset("ds", graph)
        old_version = max(b.dataset_version("ds") for b in backends)
        old_key = ResultCache.key_for("ds", "pagerank", {}, version=old_version)
        assert store.result_cache.put(old_key, {"minted_at": old_version})
        assert store.result_cache.peek(old_key) is not None

        victim = store.shard_stores()[store.replica_shards_for("ds")[0]]
        with partition(victim):
            store.drop_dataset("ds")
        store.store_dataset("ds", star_graph(5))
        store.replicate()

        new_version = max(b.dataset_version("ds") for b in backends)
        tombstone = max(b.dataset_tombstone("ds") for b in backends)
        assert new_version > old_version
        assert tombstone == 0 or new_version > tombstone
        # The scheduler keys lookups by the current version: the entry
        # minted before the deletion cannot be hit again.
        new_key = ResultCache.key_for("ds", "pagerank", {}, version=new_version)
        assert new_key != old_key
        assert store.result_cache.get(new_key) is None


#: One scripted step of the interleaving property below.
def _ops(num_shards: int):
    dataset = st.integers(min_value=0, max_value=1)
    shard = st.integers(min_value=0, max_value=num_shards - 1)
    return st.lists(
        st.one_of(
            st.tuples(st.just("store"), dataset),
            st.tuples(st.just("drop"), dataset),
            st.tuples(st.just("race"), dataset),
            st.tuples(st.just("down"), shard),
            st.tuples(st.just("up"), shard),
            st.tuples(st.just("maintain"), st.just(0)),
        ),
        min_size=1,
        max_size=14,
    )


class TestInterleavingProperty:
    @settings(max_examples=fault_rounds(30), deadline=None)
    @given(data=st.data())
    def test_any_interleaving_converges_with_no_resurrection(self, data):
        """Store/drop/race/outage/recover/maintenance in any order: after
        full recovery plus repair passes, every successfully dropped dataset
        is gone from every backend, every live dataset serves its last
        successfully stored graph at full replication (a raced re-upload
        converges every replica on ONE terminal version holding one of the
        contending graphs), and version counters only ever move forward (no
        stale cache keyspace is ever reused).  The store runs with
        ``read_consistency="quorum"``, and after *every* step a quorum read
        of each known dataset must either refuse outright or return a copy
        at (or past) the router's known version floor — never below it."""
        num_shards, replicas = data.draw(
            st.sampled_from(TOPOLOGIES), label="topology"
        )
        backends, store = _build(num_shards, replicas, read_consistency="quorum")
        ops = data.draw(_ops(num_shards), label="timeline")

        UNKNOWN = object()  # a write that failed its quorum mid-outage
        expected: Dict[str, object] = {}
        floor_versions: Dict[str, int] = {}
        generation = 0
        for kind, arg in ops:
            if kind == "store":
                dataset_id = f"ds-{arg}"
                generation += 1
                graph = cycle_graph(3 + generation % 5)
                try:
                    store.store_dataset(dataset_id, graph)
                except (StorageError, RuntimeError):
                    expected[dataset_id] = UNKNOWN
                else:
                    expected[dataset_id] = graph
            elif kind == "drop":
                dataset_id = f"ds-{arg}"
                store.drop_dataset(dataset_id)  # tolerant: never raises
                expected[dataset_id] = None
            elif kind == "race":
                # Two writers re-upload the same dataset concurrently: the
                # CAS version reservation must mint distinct ordered
                # versions so the replicas can converge on exactly one.
                dataset_id = f"ds-{arg}"
                generation += 1
                contenders = [
                    cycle_graph(3 + generation % 5),
                    star_graph(4 + generation % 4),
                ]
                barrier = threading.Barrier(len(contenders))
                failures = []

                def upload(graph):
                    barrier.wait()
                    try:
                        store.store_dataset(dataset_id, graph)
                    except (StorageError, RuntimeError):
                        failures.append(graph)

                threads = [
                    threading.Thread(target=upload, args=(graph,))
                    for graph in contenders
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                expected[dataset_id] = (
                    UNKNOWN if failures else list(contenders)
                )
            elif kind == "down":
                backends[arg].go_down()
            elif kind == "up":
                backends[arg].come_up()
            else:
                store.replicate()
            for dataset_id, backend in (
                (ds, b) for ds in expected for b in backends
            ):
                if backend.is_down:
                    continue
                seen = max(
                    backend.dataset_version(dataset_id),
                    backend.dataset_tombstone(dataset_id),
                )
                floor = floor_versions.get(dataset_id, 0)
                assert seen >= 0
                floor_versions[dataset_id] = max(floor, seen)
            # The tentpole acceptance property, checked at EVERY step of
            # the timeline: a quorum read either refuses (all reachable
            # copies below the digest-established floor, or outright
            # unreachable/dropped) or serves at/past the router's floor.
            for dataset_id in expected:
                known_floor = store._known_version_floor.get(dataset_id, 0)
                try:
                    _, served = store.fetch_dataset_with_version(dataset_id)
                except (StorageError, RuntimeError):
                    continue  # refusing beats serving a below-floor copy
                assert served >= known_floor, (
                    f"quorum served {dataset_id} at v{served}, below the "
                    f"known floor v{known_floor}"
                )

        for backend in backends:
            backend.come_up()
        store.replicate()
        store.rebalance()
        store.replicate()

        for dataset_id, outcome in expected.items():
            if outcome is UNKNOWN:
                continue
            if outcome is None:
                assert not store.has_dataset(dataset_id)
                for backend in backends:
                    assert not backend.has_dataset(dataset_id), (
                        f"{dataset_id} resurrected on {backend!r}"
                    )
            elif isinstance(outcome, list):
                # A raced re-upload: every replica must converge on ONE
                # terminal version holding ONE of the contending graphs —
                # no split-brain copies, no resurrected loser above the
                # winner's version.
                holders = _live_holders(store, dataset_id)
                assert len(holders) == replicas
                versions = {
                    store.shard_stores()[shard_id].dataset_version(dataset_id)
                    for shard_id in holders
                }
                assert len(versions) == 1, (
                    f"raced {dataset_id} diverged: {versions}"
                )
                contents = {
                    tuple(
                        sorted(
                            store.shard_stores()[shard_id]
                            .fetch_dataset(dataset_id)
                            .edge_list()
                        )
                    )
                    for shard_id in holders
                }
                assert len(contents) == 1
                candidates = {
                    tuple(sorted(graph.edge_list())) for graph in outcome
                }
                assert contents.pop() in candidates
                current = versions.pop()
                assert current >= floor_versions.get(dataset_id, 0)
            else:
                assert isinstance(outcome, DirectedGraph)
                fetched = store.fetch_dataset(dataset_id)
                assert fetched.edge_list() == outcome.edge_list()
                assert len(_live_holders(store, dataset_id)) == replicas
                # Version counters never moved backwards: the current copy
                # sits at (or past) every version any backend ever saw, so
                # no cache key minted earlier can be re-served.
                current = max(b.dataset_version(dataset_id) for b in backends)
                assert current >= floor_versions.get(dataset_id, 0)
