"""Unit tests for :mod:`repro.datasets.catalog`."""

from __future__ import annotations

import pytest

from repro.datasets.catalog import DatasetCatalog, DatasetDescriptor, default_catalog
from repro.exceptions import DatasetError, DatasetNotFoundError
from repro.graph.digraph import DirectedGraph
from repro.io.edgelist import write_edgelist


@pytest.fixture(scope="module")
def catalog() -> DatasetCatalog:
    return default_catalog()


class TestDefaultCatalog:
    def test_fifty_preloaded_datasets(self, catalog):
        assert len(catalog) == 50

    def test_wikipedia_datasets_cover_languages_and_snapshots(self, catalog):
        wikipedia = catalog.identifiers(family="wikipedia")
        assert len(wikipedia) == 36
        assert "enwiki-2018" in wikipedia
        assert "svwiki-2003" in wikipedia

    def test_other_families_present(self, catalog):
        assert "amazon-copurchase" in catalog.identifiers(family="amazon")
        assert "twitter-cop27" in catalog.identifiers(family="twitter")
        assert "twitter-8m" in catalog.identifiers(family="twitter")
        assert len(catalog.identifiers(family="synthetic")) >= 4

    def test_families_listing(self, catalog):
        assert set(catalog.families()) == {"wikipedia", "amazon", "twitter", "synthetic"}

    def test_descriptors_have_descriptions_and_tags(self, catalog):
        for descriptor in catalog:
            assert descriptor.description
        enwiki = catalog.describe("enwiki-2018")
        assert enwiki.tags["language"] == "en"
        assert enwiki.tags["snapshot"].startswith("2018")

    def test_load_builds_and_caches(self, catalog):
        first = catalog.load("twitter-cop27")
        second = catalog.load("twitter-cop27")
        assert first is second
        assert first.number_of_nodes() > 0

    def test_contains_and_membership(self, catalog):
        assert "enwiki-2018" in catalog
        assert "nonexistent" not in catalog

    def test_unknown_dataset_fails(self, catalog):
        with pytest.raises(DatasetNotFoundError):
            catalog.describe("nonexistent")
        with pytest.raises(DatasetNotFoundError):
            catalog.load("nonexistent")


class TestRegistration:
    def test_register_graph(self, triangle):
        catalog = DatasetCatalog()
        catalog.register_graph("mine", triangle, description="uploaded triangle")
        assert "mine" in catalog
        assert catalog.load("mine") is triangle
        assert catalog.describe("mine").family == "uploaded"

    def test_register_duplicate_fails_without_replace(self, triangle):
        catalog = DatasetCatalog()
        catalog.register_graph("mine", triangle)
        with pytest.raises(DatasetError):
            catalog.register_graph("mine", triangle)
        catalog.register_graph("mine", triangle.copy(), replace=True)

    def test_register_file(self, tmp_path, mixed_graph):
        path = tmp_path / "uploaded.csv"
        write_edgelist(mixed_graph, path)
        catalog = DatasetCatalog()
        catalog.register_file("uploaded", path)
        loaded = catalog.load("uploaded")
        assert loaded.number_of_edges() == mixed_graph.number_of_edges()
        assert catalog.describe("uploaded").tags["path"] == str(path)

    def test_unregister(self, triangle):
        catalog = DatasetCatalog()
        catalog.register_graph("mine", triangle)
        catalog.unregister("mine")
        assert "mine" not in catalog
        catalog.unregister("mine")  # no error when absent

    def test_loader_returning_wrong_type_fails(self):
        catalog = DatasetCatalog()
        catalog.register(
            DatasetDescriptor(
                dataset_id="broken",
                family="synthetic",
                description="returns the wrong type",
                loader=lambda: "not a graph",
            )
        )
        with pytest.raises(DatasetError):
            catalog.load("broken")

    def test_list_is_sorted(self):
        catalog = DatasetCatalog()
        catalog.register_graph("zzz", DirectedGraph())
        catalog.register_graph("aaa", DirectedGraph())
        assert catalog.identifiers() == ["aaa", "zzz"]
