"""Concurrency stress tests: ExecutorPool + Scheduler over a shared ResultCache.

N threads submitting overlapping tasks against one platform must (a) never
compute the same (dataset, algorithm, parameters, source) query twice — the
single-flight table and the result cache between them guarantee exactly-once
computation — and (b) never lose a result: every task completes with one
ranking per query, and the rankings match a reference single-threaded run.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Tuple

import numpy as np
import pytest

from repro.algorithms import registry as algorithm_registry
from repro.algorithms.base import Algorithm, AlgorithmSpec, ParameterSpec
from repro.algorithms.personalized_pagerank import personalized_pagerank
from repro.datasets.catalog import DatasetCatalog
from repro.graph.generators import reciprocal_communities_graph
from repro.platform.gateway import ApiGateway

SPY_NAME = "spy-counting-ppr"


class _CountingPPR(Algorithm):
    """Personalized PageRank wrapped with a per-source execution counter.

    The small sleep widens the in-flight window so concurrent submitters
    genuinely overlap with a running computation instead of racing past it.
    """

    spec = AlgorithmSpec(
        name=SPY_NAME,
        display_name="Spy PPR",
        personalized=True,
        parameters=(
            ParameterSpec(name="alpha", kind="float", default=0.85,
                          minimum=0.0, maximum=1.0, description="damping factor"),
        ),
        description="test-only counting wrapper around personalized PageRank",
    )
    # The execution counter lives in the test process; a forked worker would
    # increment its own copy, so the process tier must run this in-process.
    process_local = True

    def __init__(self) -> None:
        self.computations: Dict[Tuple[str, float], int] = {}
        self._lock = threading.Lock()

    def _execute(self, graph, *, source, parameters):
        with self._lock:
            key = (source, parameters["alpha"])
            self.computations[key] = self.computations.get(key, 0) + 1
        time.sleep(0.02)
        return personalized_pagerank(graph, source, alpha=parameters["alpha"])

    def total_computations(self) -> int:
        with self._lock:
            return sum(self.computations.values())

    def duplicated_keys(self) -> Dict[Tuple[str, float], int]:
        with self._lock:
            return {key: count for key, count in self.computations.items() if count > 1}


@pytest.fixture
def spy_algorithm():
    spy = _CountingPPR()
    algorithm_registry.register_algorithm(spy, replace=True)
    try:
        yield spy
    finally:
        algorithm_registry._REGISTRY.pop(SPY_NAME, None)


@pytest.fixture
def stress_gateway():
    graph = reciprocal_communities_graph(num_communities=3, community_size=6, seed=7)
    catalog = DatasetCatalog()
    catalog.register_graph("stress", graph, description="stress-test graph")
    with ApiGateway(catalog=catalog, num_workers=4) as gateway:
        yield gateway


def _submit_and_wait(gateway: ApiGateway, queries: List[dict], results, errors) -> None:
    try:
        comparison_id = gateway.run_queries(queries, synchronous=False)
        gateway.wait_for(comparison_id, timeout_seconds=60.0)
        results.append(comparison_id)
    except Exception as exc:  # pragma: no cover - surfaced by the assertion below
        errors.append(exc)


class TestSingleFlightUnderContention:
    def test_identical_tasks_compute_each_query_once(self, spy_algorithm, stress_gateway):
        sources = [f"c0-n{index}" for index in range(4)]
        queries = [
            {"dataset_id": "stress", "algorithm": SPY_NAME, "source": source}
            for source in sources
        ]
        num_threads = 8
        results: List[str] = []
        errors: List[Exception] = []
        threads = [
            threading.Thread(target=_submit_and_wait, args=(stress_gateway, queries, results, errors))
            for _ in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        assert len(results) == num_threads

        # No duplicate computations: one per unique (source, alpha) key even
        # though 8 tasks asked for each of them.
        assert spy_algorithm.duplicated_keys() == {}
        assert spy_algorithm.total_computations() == len(sources)

        # No lost results: every task completed with one ranking per query,
        # all matching the reference computed outside the platform.
        graph = stress_gateway.datastore.fetch_dataset("stress")
        references = {
            source: personalized_pagerank(graph, source, alpha=0.85).scores
            for source in sources
        }
        for comparison_id in results:
            task = stress_gateway.get_task(comparison_id)
            assert task.state.value == "completed"
            rankings = stress_gateway.get_rankings(comparison_id)
            assert len(rankings) == len(queries)
            for source, ranking in zip(sources, rankings):
                assert np.allclose(ranking.scores, references[source], atol=1e-8)

    def test_overlapping_tasks_share_partial_results(self, spy_algorithm, stress_gateway):
        all_sources = [f"c{community}-n0" for community in range(3)] + ["c0-n1", "c0-n2"]
        # Each thread asks for a sliding window of 3 sources, so every pair of
        # neighbouring threads overlaps on 2 queries.
        windows = [
            [all_sources[(start + offset) % len(all_sources)] for offset in range(3)]
            for start in range(len(all_sources))
        ]
        completed: List[Tuple[List[str], str]] = []
        errors: List[Exception] = []

        def submit_window(window: List[str]) -> None:
            try:
                comparison_id = stress_gateway.run_queries(
                    [
                        {"dataset_id": "stress", "algorithm": SPY_NAME, "source": source}
                        for source in window
                    ],
                    synchronous=False,
                )
                stress_gateway.wait_for(comparison_id, timeout_seconds=60.0)
                completed.append((window, comparison_id))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=submit_window, args=(window,)) for window in windows
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        assert len(completed) == len(windows)
        assert spy_algorithm.duplicated_keys() == {}
        assert spy_algorithm.total_computations() == len(all_sources)
        for window, comparison_id in completed:
            task = stress_gateway.get_task(comparison_id)
            assert task.state.value == "completed"
            rankings = stress_gateway.get_rankings(comparison_id)
            assert len(rankings) == len(window)
            for source, ranking in zip(window, rankings):
                assert ranking.reference == source

    def test_cache_absorbs_repeat_submissions(self, spy_algorithm, stress_gateway):
        query = [{"dataset_id": "stress", "algorithm": SPY_NAME, "source": "c1-n1"}]
        first = stress_gateway.run_queries(query, synchronous=False)
        stress_gateway.wait_for(first, timeout_seconds=30.0)
        executed_before = stress_gateway.executor_pool.total_executed()
        hits_before = stress_gateway.datastore.result_cache.stats()["hits"]

        second = stress_gateway.run_queries(query, synchronous=False)
        stress_gateway.wait_for(second, timeout_seconds=30.0)

        assert spy_algorithm.total_computations() == 1
        assert stress_gateway.executor_pool.total_executed() == executed_before
        assert stress_gateway.datastore.result_cache.stats()["hits"] == hits_before + 1
        first_scores = stress_gateway.get_rankings(first)[0].scores
        second_scores = stress_gateway.get_rankings(second)[0].scores
        assert np.array_equal(first_scores, second_scores)
