"""Hypothesis property tests for the extension algorithms (approximate PPR, HITS, Katz)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.hits import hits, personalized_hits
from repro.algorithms.katz import personalized_katz
from repro.algorithms.personalized_pagerank import personalized_pagerank
from repro.algorithms.ppr_push import ppr_push
from repro.graph.digraph import DirectedGraph
from repro.graph.traversal import descendants


@st.composite
def graphs_with_reference(draw, max_nodes: int = 9, max_edges: int = 30):
    """Strategy: a small labelled directed graph plus a reference node in it."""
    num_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=num_nodes - 1),
                st.integers(min_value=0, max_value=num_nodes - 1),
            ).filter(lambda pair: pair[0] != pair[1]),
            max_size=max_edges,
        )
    )
    graph = DirectedGraph(name="hypothesis")
    for node in range(num_nodes):
        graph.add_node(f"node-{node}")
    graph.add_edges_from(edges)
    reference = draw(st.integers(min_value=0, max_value=num_nodes - 1))
    return graph, reference


class TestPushPprInvariants:
    @given(graphs_with_reference(), st.floats(min_value=0.0, max_value=0.9))
    @settings(max_examples=30, deadline=None)
    def test_push_is_a_distribution(self, graph_and_reference, alpha):
        graph, reference = graph_and_reference
        ranking = ppr_push(graph, reference, alpha=alpha, epsilon=1e-7)
        assert np.all(ranking.scores >= 0)
        assert abs(ranking.total() - 1.0) < 1e-8

    @given(graphs_with_reference())
    @settings(max_examples=25, deadline=None)
    def test_push_top1_matches_exact_for_short_walks(self, graph_and_reference):
        graph, reference = graph_and_reference
        exact = personalized_pagerank(graph, reference, alpha=0.3)
        approx = ppr_push(graph, reference, alpha=0.3, epsilon=1e-9)
        assert np.abs(exact.scores - approx.scores).max() < 1e-3

    @given(graphs_with_reference())
    @settings(max_examples=25, deadline=None)
    def test_push_support_limited_to_reachable_nodes(self, graph_and_reference):
        graph, reference = graph_and_reference
        ranking = ppr_push(graph, reference, alpha=0.85, epsilon=1e-7)
        reachable = descendants(graph, reference) | {graph.resolve(reference)}
        for node in graph.nodes():
            if ranking.score_of(node) > 0:
                assert node in reachable


class TestHitsInvariants:
    @given(graphs_with_reference())
    @settings(max_examples=25, deadline=None)
    def test_hits_scores_are_a_distribution(self, graph_and_reference):
        graph, _ = graph_and_reference
        ranking = hits(graph, tol=1e-7)
        assert np.all(ranking.scores >= -1e-12)
        assert ranking.total() == 0.0 or abs(ranking.total() - 1.0) < 1e-6

    @given(graphs_with_reference())
    @settings(max_examples=20, deadline=None)
    def test_rooted_hits_with_full_restart_concentrates_on_reference(self, graph_and_reference):
        graph, reference = graph_and_reference
        ranking = personalized_hits(graph, reference, alpha=0.0, tol=1e-7)
        assert ranking.rank_of(reference) == 1


class TestPersonalizedKatzInvariants:
    @given(graphs_with_reference())
    @settings(max_examples=30, deadline=None)
    def test_reference_ranks_first_and_scores_non_negative(self, graph_and_reference):
        graph, reference = graph_and_reference
        ranking = personalized_katz(graph, reference, beta=0.05)
        assert np.all(ranking.scores >= -1e-12)
        assert ranking.rank_of(reference) == 1

    @given(graphs_with_reference())
    @settings(max_examples=30, deadline=None)
    def test_support_equals_reachable_set(self, graph_and_reference):
        graph, reference = graph_and_reference
        ranking = personalized_katz(graph, reference, beta=0.05)
        reachable = descendants(graph, reference) | {graph.resolve(reference)}
        for node in graph.nodes():
            assert (ranking.score_of(node) > 0) == (node in reachable)
