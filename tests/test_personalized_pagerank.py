"""Unit tests for :mod:`repro.algorithms.personalized_pagerank`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.pagerank import pagerank
from repro.algorithms.personalized_pagerank import personalized_pagerank, teleport_vector_for
from repro.exceptions import InvalidParameterError, NodeNotFoundError
from repro.graph.digraph import DirectedGraph
from repro.graph.generators import cycle_graph, star_graph


class TestTeleportVector:
    def test_single_reference_by_label(self, triangle):
        teleport = teleport_vector_for(triangle, "A")
        assert teleport[triangle.resolve("A")] == pytest.approx(1.0)
        assert teleport.sum() == pytest.approx(1.0)

    def test_single_reference_by_id(self, triangle):
        teleport = teleport_vector_for(triangle, 1)
        assert teleport[1] == pytest.approx(1.0)

    def test_reference_set_uniform(self, triangle):
        teleport = teleport_vector_for(triangle, ["A", "B"])
        assert teleport[triangle.resolve("A")] == pytest.approx(0.5)
        assert teleport[triangle.resolve("B")] == pytest.approx(0.5)

    def test_weighted_reference_mapping(self, triangle):
        teleport = teleport_vector_for(triangle, {"A": 3.0, "B": 1.0})
        assert teleport[triangle.resolve("A")] == pytest.approx(0.75)

    def test_unknown_reference_fails(self, triangle):
        with pytest.raises(NodeNotFoundError):
            teleport_vector_for(triangle, "missing")

    def test_empty_reference_set_fails(self, triangle):
        with pytest.raises(InvalidParameterError):
            teleport_vector_for(triangle, [])

    def test_negative_weight_fails(self, triangle):
        with pytest.raises(InvalidParameterError):
            teleport_vector_for(triangle, {"A": -1.0})

    def test_unintelligible_reference_fails(self, triangle):
        with pytest.raises(InvalidParameterError):
            teleport_vector_for(triangle, 3.14)


class TestPersonalizedPageRank:
    def test_scores_sum_to_one(self, mixed_graph):
        ranking = personalized_pagerank(mixed_graph, "X")
        assert ranking.total() == pytest.approx(1.0)

    def test_reference_gets_top_score_with_low_alpha(self, small_enwiki):
        ranking = personalized_pagerank(small_enwiki, "Freddie Mercury", alpha=0.3)
        assert ranking.top_labels(1) == ["Freddie Mercury"]

    def test_alpha_zero_concentrates_on_reference(self, triangle):
        ranking = personalized_pagerank(triangle, "A", alpha=0.0)
        assert ranking.score_of("A") == pytest.approx(1.0)
        assert ranking.score_of("B") == pytest.approx(0.0)

    def test_mass_decays_with_distance_on_cycle(self):
        graph = cycle_graph(6)
        ranking = personalized_pagerank(graph, 0, alpha=0.5)
        scores = ranking.scores
        # Moving away from the reference along the only path, scores decrease.
        assert scores[0] > scores[1] > scores[2] > scores[3]

    def test_uniform_teleport_recovers_global_pagerank(self, mixed_graph):
        every_node = list(mixed_graph.nodes())
        ppr = personalized_pagerank(mixed_graph, every_node, alpha=0.85)
        pr = pagerank(mixed_graph, alpha=0.85)
        assert np.allclose(ppr.scores, pr.scores, atol=1e-6)

    def test_personalization_differs_from_global(self, small_enwiki):
        ppr = personalized_pagerank(small_enwiki, "Pasta", alpha=0.3)
        pr = pagerank(small_enwiki)
        assert ppr.top_labels(5) != pr.top_labels(5)

    def test_promotes_high_in_degree_nodes(self, small_enwiki):
        """The shortcoming the paper describes: globally central nodes get
        high PPR scores regardless of the query node."""
        ranking = personalized_pagerank(small_enwiki, "Freddie Mercury", alpha=0.3)
        in_degrees = small_enwiki.in_degrees()
        median_in_degree = sorted(in_degrees)[len(in_degrees) // 2]
        top_in_degrees = [
            small_enwiki.in_degree(label) for label in ranking.top_labels(6, exclude=("Freddie Mercury",))
        ]
        assert max(top_in_degrees) >= 5 * max(median_in_degree, 1)

    def test_unknown_reference_fails(self, triangle):
        with pytest.raises(NodeNotFoundError):
            personalized_pagerank(triangle, "missing")

    def test_dangling_reference_handled(self):
        graph = DirectedGraph()
        graph.add_edge("A", "B")  # B is dangling
        ranking = personalized_pagerank(graph, "B", alpha=0.85)
        assert ranking.total() == pytest.approx(1.0)
        assert ranking.score_of("B") > ranking.score_of("A")

    def test_provenance_records_reference(self, triangle):
        ranking = personalized_pagerank(triangle, "A", alpha=0.5)
        assert ranking.algorithm == "Personalized PageRank"
        assert ranking.reference == "A"
        assert ranking.parameters["alpha"] == 0.5

    def test_reference_set_has_no_single_label(self, triangle):
        ranking = personalized_pagerank(triangle, ["A", "B"], alpha=0.5)
        assert ranking.reference is None

    def test_star_hub_query_spreads_to_leaves(self):
        graph = star_graph(5, reciprocal=True)
        ranking = personalized_pagerank(graph, 0, alpha=0.85)
        leaf_scores = [ranking.score_of(leaf) for leaf in range(1, 6)]
        assert max(leaf_scores) == pytest.approx(min(leaf_scores), rel=1e-6)
