"""Overload-protection tests: deadlines, admission control, retry budgets
and per-shard circuit breakers.

The scenarios mirror the operator's failure drills:

- a submission whose deadline passes while it queues settles with a typed
  ``deadline_exceeded`` event and never occupies a worker;
- an over-budget gateway sheds *before* enqueueing (HTTP 429 with a
  Retry-After hint) and never drops or cancels accepted work;
- a full shard outage costs at most ``sources + retry budget`` backend
  calls — retry amplification is capped by the shared token bucket;
- a shard that keeps failing trips its circuit breaker (reads stop
  touching it) and the PR-6 prober's next successful ping closes it.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from conftest import register_gated_algorithm
from faults import FlakyStore
from repro.algorithms import registry as algorithm_registry
from repro.datasets.catalog import DatasetCatalog
from repro.exceptions import (
    DeadlineExceededError,
    GatewayOverloadedError,
    StorageError,
)
from repro.platform.datastore import DataStore
from repro.platform.gateway import ApiGateway
from repro.platform.replication import ReplicatedShardedDataStore
from repro.platform.resilience import (
    AdmissionController,
    CircuitBreaker,
    Deadline,
    TokenBucket,
    deadline_scope,
    estimate_cost,
)
from repro.platform.restapi import RestApiServer
from repro.platform.tasks import Query, TaskState


def _wait_until(predicate, *, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture
def catalog(community_graph):
    catalog = DatasetCatalog()
    catalog.register_graph("toy", community_graph, description="communities")
    return catalog


@pytest.fixture
def gate_pair():
    gates = [register_gated_algorithm("gated-a"), register_gated_algorithm("gated-b")]
    try:
        yield gates
    finally:
        for _, release in gates:
            release.set()
        algorithm_registry._REGISTRY.pop("gated-a", None)
        algorithm_registry._REGISTRY.pop("gated-b", None)


# --------------------------------------------------------------------------- #
# primitives
# --------------------------------------------------------------------------- #
class TestPrimitives:
    def test_deadline_validation_and_expiry(self):
        with pytest.raises(ValueError):
            Deadline.from_ms(0)
        with pytest.raises(ValueError):
            Deadline.from_ms(-5)
        with pytest.raises((TypeError, ValueError)):
            Deadline.from_ms(True)
        deadline = Deadline.from_ms(1)
        time.sleep(0.005)
        assert deadline.expired()
        assert deadline.remaining() <= 0.0
        with pytest.raises(DeadlineExceededError):
            deadline.raise_if_expired("unit test")

    def test_deadline_scope_nests_and_restores(self):
        from repro.platform.resilience import current_deadline

        outer = Deadline.from_ms(60_000)
        inner = Deadline.from_ms(30_000)
        assert current_deadline() is None
        with deadline_scope(outer):
            assert current_deadline() is outer
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer
        assert current_deadline() is None

    def test_token_bucket_denies_once_drained(self):
        bucket = TokenBucket(2, refill_per_second=0.0)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        stats = bucket.stats()
        assert stats["granted"] == 2
        assert stats["denied"] == 1

    def test_circuit_breaker_transitions(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_seconds=0.01)
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        time.sleep(0.02)
        # After the cooldown the breaker lets one probe through (half-open).
        assert breaker.state == "half_open"
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_admission_retry_after_scales_with_overshoot(self):
        admission = AdmissionController(max_cost=2, retry_after_seconds=1.0)
        admitted, _ = admission.try_admit(2)
        assert admitted
        shed_small = admission.try_admit(2)
        shed_large = admission.try_admit(40)
        assert not shed_small[0] and not shed_large[0]
        assert shed_large[1] > shed_small[1]
        assert shed_large[1] <= 8.0  # clamped at 8x the base
        admission.release(2)
        assert admission.stats()["inflight_cost"] == 0

    def test_estimate_cost_weights_heavy_algorithms(self):
        cheap = [Query(dataset_id="d", algorithm="pagerank")]
        heavy = [Query(dataset_id="d", algorithm="cyclerank", source="x")]
        assert estimate_cost(heavy) > estimate_cost(cheap)


# --------------------------------------------------------------------------- #
# deadlines end to end
# --------------------------------------------------------------------------- #
class TestDeadlines:
    def test_expired_submission_settles_typed_without_a_worker(
        self, catalog, gate_pair
    ):
        (started_a, release_a), (started_b, _release_b) = gate_pair
        with ApiGateway(catalog=catalog, num_workers=1) as gateway:
            blocker = gateway.run_queries(
                [{"dataset_id": "toy", "algorithm": "gated-a", "source": "c0-n0"}],
                synchronous=False,
            )
            assert started_a.wait(timeout=10.0)
            # The only worker is occupied; this submission's 50ms deadline
            # will pass while it queues.
            doomed = gateway.run_queries(
                [{"dataset_id": "toy", "algorithm": "gated-b", "source": "c0-n0"}],
                synchronous=False,
                deadline_ms=50,
            )
            time.sleep(0.15)
            release_a.set()
            job = gateway.scheduler.jobs.get(doomed)
            assert job.wait_done(10.0)
            progress = gateway.get_status(doomed)
            assert progress.state is TaskState.FAILED
            assert "deadline" in (progress.error or "")
            events = gateway.get_events(doomed, after=0, timeout=0.0)
            kinds = [event["type"] for event in events]
            assert "deadline_exceeded" in kinds
            # Settled before dispatch: the group never reached an executor.
            assert "query_started" not in kinds
            assert not started_b.is_set()
            # The blocker was untouched by its neighbour's deadline.
            assert gateway.get_status(blocker).state is TaskState.COMPLETED
            stats = gateway.get_platform_stats()["overload"]["deadlines"]
            assert stats["deadline_exceeded"] == 1

    def test_default_deadline_applies_to_every_submission(self, catalog, gate_pair):
        (started_a, release_a), _ = gate_pair
        with ApiGateway(
            catalog=catalog, num_workers=1, default_deadline_ms=50
        ) as gateway:
            blocker = gateway.run_queries(
                [{"dataset_id": "toy", "algorithm": "gated-a", "source": "c0-n0"}],
                synchronous=False,
                deadline_ms=60_000,  # the explicit value overrides the default
            )
            assert started_a.wait(timeout=10.0)
            doomed = gateway.run_queries(
                [{"dataset_id": "toy", "algorithm": "pagerank"}], synchronous=False
            )
            time.sleep(0.15)
            release_a.set()
            assert gateway.scheduler.jobs.get(doomed).wait_done(10.0)
            assert gateway.get_status(doomed).state is TaskState.FAILED
            assert gateway.scheduler.jobs.get(blocker).wait_done(10.0)
            assert gateway.get_status(blocker).state is TaskState.COMPLETED

    def test_deadline_bounds_read_failover(self):
        backends = [FlakyStore(DataStore()) for _ in range(4)]
        store = ReplicatedShardedDataStore(
            shards=backends,
            replicas=2,
            retry_max_attempts=1,
        )
        from repro.graph.generators import cycle_graph

        store.store_dataset("ds", cycle_graph(4))
        primary = store.replica_shards_for("ds")[0]
        store.shard_stores()[primary].go_down()
        expired = Deadline.from_ms(1)
        time.sleep(0.005)
        # The first source is always consulted; once it fails, an expired
        # caller deadline stops the failover walk with a typed error.
        with deadline_scope(expired):
            with pytest.raises(DeadlineExceededError):
                store.fetch_dataset("ds")


# --------------------------------------------------------------------------- #
# admission control
# --------------------------------------------------------------------------- #
class TestAdmissionControl:
    def test_over_budget_submission_is_shed_before_enqueue(
        self, catalog, gate_pair
    ):
        (started_a, release_a), _ = gate_pair
        with ApiGateway(
            catalog=catalog,
            num_workers=1,
            admission_max_cost=1,
            admission_retry_after_seconds=0.25,
        ) as gateway:
            accepted = gateway.run_queries(
                [{"dataset_id": "toy", "algorithm": "gated-a", "source": "c0-n0"}],
                synchronous=False,
            )
            assert started_a.wait(timeout=10.0)
            with pytest.raises(GatewayOverloadedError) as excinfo:
                gateway.run_queries(
                    [{"dataset_id": "toy", "algorithm": "pagerank"}],
                    synchronous=False,
                )
            assert excinfo.value.retry_after > 0
            shed = gateway.shed_events()
            assert len(shed) == 1
            assert shed[0]["type"] == "shed"
            stats = gateway.get_platform_stats()["overload"]["admission"]
            assert stats["shed"] == 1
            assert stats["admitted"] == 1
            # Shedding never cancels accepted work.
            release_a.set()
            assert gateway.scheduler.jobs.get(accepted).wait_done(10.0)
            assert gateway.get_status(accepted).state is TaskState.COMPLETED
            # Its completion released the reservation: the gateway admits again.
            assert _wait_until(
                lambda: gateway.get_platform_stats()["overload"]["admission"][
                    "inflight_cost"
                ]
                == 0
            )
            retry = gateway.run_queries(
                [{"dataset_id": "toy", "algorithm": "pagerank"}], synchronous=True
            )
            assert gateway.get_status(retry).state is TaskState.COMPLETED

    def test_expensive_submission_admitted_when_idle(self, catalog):
        # CycleRank's estimated cost (4) alone exceeds a budget of 1, but
        # admission is work-conserving: an idle gateway must admit it —
        # shedding would starve the request forever, since every retry
        # would find the same empty gateway and the same verdict.
        with ApiGateway(catalog=catalog, admission_max_cost=1) as gateway:
            job = gateway.run_queries(
                [
                    {
                        "dataset_id": "toy",
                        "algorithm": "cyclerank",
                        "source": "c0-n0",
                    }
                ],
                synchronous=True,
            )
            assert gateway.get_status(job).state is TaskState.COMPLETED
            stats = gateway.get_platform_stats()["overload"]["admission"]
            assert stats["admitted"] == 1
            assert stats["shed"] == 0

    def test_failed_submission_releases_its_reservation(self, catalog):
        with ApiGateway(catalog=catalog, admission_max_cost=1) as gateway:
            with pytest.raises(Exception):
                # An unknown dataset fails at submission; the reservation
                # must not leak.
                gateway.run_queries(
                    [{"dataset_id": "missing", "algorithm": "pagerank"}],
                    synchronous=True,
                )
            stats = gateway.get_platform_stats()["overload"]["admission"]
            assert stats["inflight_cost"] == 0


# --------------------------------------------------------------------------- #
# REST surface: 429 + Retry-After, event streams stay correct while shedding
# --------------------------------------------------------------------------- #
class TestRestShedding:
    def test_429_with_retry_after_and_live_event_streams(
        self, catalog, gate_pair
    ):
        (started_a, release_a), _ = gate_pair
        gateway = ApiGateway(
            catalog=catalog,
            num_workers=1,
            admission_max_cost=1,
            admission_retry_after_seconds=0.25,
        )
        with RestApiServer(gateway) as server:
            def post(payload):
                request = urllib.request.Request(
                    server.url + "/api/comparisons",
                    data=json.dumps(payload).encode("utf-8"),
                    headers={"Content-Type": "application/json"},
                    method="POST",
                )
                with urllib.request.urlopen(request, timeout=30) as response:
                    return response.status, json.loads(response.read().decode())

            status, created = post(
                {
                    "queries": [
                        {
                            "dataset_id": "toy",
                            "algorithm": "gated-a",
                            "source": "c0-n0",
                        }
                    ],
                    "synchronous": False,
                }
            )
            assert status == 201
            assert started_a.wait(timeout=10.0)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(
                    {
                        "queries": [
                            {"dataset_id": "toy", "algorithm": "pagerank"}
                        ],
                        "synchronous": False,
                    }
                )
            error = excinfo.value
            assert error.code == 429
            assert int(error.headers["Retry-After"]) >= 1
            body = json.loads(error.read().decode("utf-8"))
            assert body["shed"] is True
            assert body["retry_after"] > 0
            # The accepted job's long-poll cursor still answers while the
            # gateway sheds new work.
            comparison_id = created["comparison_id"]
            with urllib.request.urlopen(
                server.url
                + f"/api/comparisons/{comparison_id}/events?after=0&timeout=0",
                timeout=10,
            ) as response:
                payload = json.loads(response.read().decode("utf-8"))
            assert [e["type"] for e in payload["events"]][0] == "submitted"
            release_a.set()
            with urllib.request.urlopen(
                server.url
                + f"/api/comparisons/{comparison_id}/events?after=0&timeout=10",
                timeout=30,
            ) as response:
                payload = json.loads(response.read().decode("utf-8"))
            kinds = [e["type"] for e in payload["events"]]
            assert "shed" not in kinds  # shed events live on the overload job
            with urllib.request.urlopen(
                server.url + "/api/stats", timeout=10
            ) as response:
                stats = json.loads(response.read().decode("utf-8"))
            assert stats["overload"]["admission"]["shed"] == 1
        gateway.shutdown()

    def test_deadline_ms_in_the_post_body_is_honoured(self, catalog):
        gateway = ApiGateway(catalog=catalog)
        with RestApiServer(gateway) as server:
            request = urllib.request.Request(
                server.url + "/api/comparisons",
                data=json.dumps(
                    {
                        "queries": [
                            {"dataset_id": "toy", "algorithm": "pagerank"}
                        ],
                        "synchronous": True,
                        "deadline_ms": 60_000,
                    }
                ).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                assert response.status == 201
            # An invalid deadline is a 400, not a crash.
            bad = urllib.request.Request(
                server.url + "/api/comparisons",
                data=json.dumps(
                    {
                        "queries": [
                            {"dataset_id": "toy", "algorithm": "pagerank"}
                        ],
                        "deadline_ms": -5,
                    }
                ).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(bad, timeout=30)
            assert excinfo.value.code == 400
        gateway.shutdown()


# --------------------------------------------------------------------------- #
# retry budget: bounded amplification during a full shard outage
# --------------------------------------------------------------------------- #
class TestRetryBudget:
    def _build(self, **kwargs):
        backends = [FlakyStore(DataStore()) for _ in range(4)]
        store = ReplicatedShardedDataStore(
            shards=backends,
            replicas=2,
            retry_base_delay_seconds=0.0,
            retry_max_delay_seconds=0.0,
            **kwargs,
        )
        return backends, store

    def test_full_outage_spends_at_most_the_budget(self):
        budget = 2
        backends, store = self._build(
            retry_max_attempts=3,
            retry_budget_capacity=budget,
            retry_budget_refill_per_second=0.0,
        )
        from repro.graph.generators import cycle_graph

        store.store_dataset("ds", cycle_graph(4))
        for backend in backends:
            backend.go_down()
        before = sum(b.calls["fetch_dataset_with_version"] for b in backends)
        with pytest.raises(StorageError):
            store.fetch_dataset("ds")
        attempts = sum(b.calls["fetch_dataset_with_version"] for b in backends) - before
        sources = len(backends)  # every shard is consulted during failover
        # The acceptance bound: first attempts are free, every *retry*
        # must win a budget token — amplification is capped.
        assert attempts <= sources + budget
        retries = store.retry_policy.stats()
        assert retries["retries_spent"] <= budget
        assert retries["budget"]["denied"] >= 1
        # The budget is spent (refill 0): the next read tries each source
        # exactly once.
        before = sum(b.calls["fetch_dataset_with_version"] for b in backends)
        with pytest.raises(StorageError):
            store.fetch_dataset("ds")
        assert sum(b.calls["fetch_dataset_with_version"] for b in backends) - before == sources

    def test_transient_write_fault_is_retried_in_place(self):
        backends, store = self._build(retry_max_attempts=3)
        from repro.graph.generators import cycle_graph

        store.store_dataset("ds", cycle_graph(4))
        primary = store.replica_shards_for("ds")[0]
        store.shard_stores()[primary].fail_on("has_dataset", times=1)
        # The one-shot fault is absorbed by the in-place retry: the write
        # still lands on all R replicas.
        store.store_dataset("ds", cycle_graph(5))
        assert store.retry_policy.stats()["retries_spent"] >= 1
        assert store.replication_stats()["degraded_writes"] == 0

    def test_absence_is_never_retried(self):
        backends, store = self._build(retry_max_attempts=3)
        before = sum(sum(b.calls.values()) for b in backends)
        with pytest.raises(StorageError):
            store.fetch_dataset("never-stored")
        # One probe per source in the plan; StorageError (absence) does not
        # consume retry attempts.
        assert store.retry_policy.stats()["retries_spent"] == 0


# --------------------------------------------------------------------------- #
# per-shard circuit breakers
# --------------------------------------------------------------------------- #
class TestCircuitBreakers:
    def _build(self):
        backends = [FlakyStore(DataStore()) for _ in range(4)]
        store = ReplicatedShardedDataStore(
            shards=backends,
            replicas=2,
            retry_max_attempts=1,
            probe_failure_threshold=100,  # isolate the breaker from auto mark_down
            probe_transition_interval_seconds=0,
            breaker_failure_threshold=3,
            breaker_cooldown_seconds=3600.0,  # only a probe can close it
        )
        return backends, store

    def test_breaker_opens_and_short_circuits_reads(self):
        backends, store = self._build()
        from repro.graph.generators import cycle_graph

        store.store_dataset("ds", cycle_graph(4))
        primary = store.replica_shards_for("ds")[0]
        victim = store.shard_stores()[primary]
        victim.go_down()
        # Three failing reads (each served by failover) trip the breaker.
        for _ in range(3):
            assert store.fetch_dataset("ds") is not None
        assert store.breaker_stats()[primary]["state"] == "open"
        frozen = victim.calls["fetch_dataset_with_version"]
        for _ in range(2):
            assert store.fetch_dataset("ds") is not None
        # The open breaker short-circuits: the sick shard sees no traffic.
        assert victim.calls["fetch_dataset_with_version"] == frozen
        assert store.breaker_stats()[primary]["short_circuits"] >= 2

    def test_probe_success_closes_the_breaker(self):
        backends, store = self._build()
        from repro.graph.generators import cycle_graph

        store.store_dataset("ds", cycle_graph(4))
        primary = store.replica_shards_for("ds")[0]
        victim = store.shard_stores()[primary]
        victim.go_down()
        for _ in range(3):
            store.fetch_dataset("ds")
        assert store.breaker_stats()[primary]["state"] == "open"
        victim.come_up()
        # Probes deliberately bypass the breaker gate — the half-open probe
        # is the PR-6 prober's ping, and its success closes the breaker.
        store.probe_shards()
        assert store.breaker_stats()[primary]["state"] == "closed"
        before = victim.calls["fetch_dataset_with_version"]
        assert store.fetch_dataset("ds") is not None
        assert victim.calls["fetch_dataset_with_version"] == before + 1

    def test_gateway_surfaces_breaker_counters(self, catalog):
        backends = [FlakyStore(DataStore()) for _ in range(3)]
        store = ReplicatedShardedDataStore(shards=backends, replicas=2)
        with ApiGateway(
            catalog=catalog,
            datastore=store,
            probe_interval_seconds=0,
            breaker_failure_threshold=2,
            breaker_cooldown_seconds=60.0,
        ) as gateway:
            stats = gateway.get_platform_stats()["overload"]["storage"]
            assert "breakers" in stats
            assert "retries" in stats
            assert stats["stale_reads"] == 0


# --------------------------------------------------------------------------- #
# stale-read detection (satellite)
# --------------------------------------------------------------------------- #
class TestStaleReads:
    def test_failover_read_below_the_version_floor_is_counted_and_repaired(self):
        backends = [FlakyStore(DataStore()) for _ in range(4)]
        store = ReplicatedShardedDataStore(
            shards=backends,
            replicas=3,
            retry_max_attempts=1,
        )
        from repro.graph.generators import cycle_graph

        store.store_dataset("ds", cycle_graph(4))
        primary = store.replica_shards_for("ds")[0]
        victim = store.shard_stores()[primary]
        victim.go_down()
        # The re-upload reaches a quorum without the primary: the caller now
        # knows version 2 exists, while the primary still holds version 1.
        store.store_dataset("ds", cycle_graph(5))
        victim.come_up()
        graph, version = store.fetch_dataset_with_version("ds")
        assert version == 1  # the primary answered with its pre-outage copy
        stats = store.replication_stats()
        assert stats["stale_reads"] == 1
        assert stats["repair_queue"] >= 1
        # Read-repair converges the primary back onto the floor.
        store.drain_read_repairs()
        graph, version = store.fetch_dataset_with_version("ds")
        assert version == 2
        assert len(graph) == 5

    def test_reads_at_or_above_the_floor_are_not_stale(self):
        backends = [FlakyStore(DataStore()) for _ in range(3)]
        store = ReplicatedShardedDataStore(shards=backends, replicas=2)
        from repro.graph.generators import cycle_graph

        store.store_dataset("ds", cycle_graph(4))
        store.store_dataset("ds", cycle_graph(5))
        for _ in range(3):
            store.fetch_dataset_with_version("ds")
        assert store.replication_stats()["stale_reads"] == 0


# --------------------------------------------------------------------------- #
# CLI client honours the shed hints (satellite)
# --------------------------------------------------------------------------- #
class TestCliShedding:
    def test_no_retry_fails_fast(self, capsys):
        from repro.cli import main

        code = main(
            [
                "run",
                "amazon-books",
                "pagerank",
                "--admission-budget",
                "0",
                "--no-retry",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "over admission budget" in captured.err
        assert "retrying" not in captured.err

    def test_bounded_retries_honour_the_hint(self, capsys):
        from repro.cli import main

        code = main(
            [
                "run",
                "amazon-books",
                "pagerank",
                "--admission-budget",
                "0",
                "--shed-retries",
                "2",
                "--admission-retry-after",
                "0.01",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.count("submission shed") == 2

    def test_overload_flags_are_validated(self, capsys):
        from repro.cli import main

        assert main(["run", "amazon-books", "pagerank", "--deadline-ms", "0"]) == 2
        assert (
            main(["run", "amazon-books", "pagerank", "--admission-budget", "-1"])
            == 2
        )
        assert (
            main(["run", "amazon-books", "pagerank", "--breaker-cooldown", "0"])
            == 2
        )
