"""Unit tests for :mod:`repro.ranking.metrics`."""

from __future__ import annotations

import pytest

from repro.ranking.metrics import (
    jaccard_at_k,
    kendall_tau,
    overlap_at_k,
    precision_at_k,
    rank_biased_overlap,
    spearman_rho,
)
from repro.ranking.result import Ranking


def ranking_from_order(labels):
    """Build a ranking whose order is exactly ``labels``."""
    scores = list(range(len(labels), 0, -1))
    return Ranking(scores, labels=labels)


LABELS = [f"n{i}" for i in range(10)]


class TestSetOverlapMetrics:
    def test_identical_rankings(self):
        first = ranking_from_order(LABELS)
        second = ranking_from_order(LABELS)
        assert overlap_at_k(first, second, 5) == 1.0
        assert jaccard_at_k(first, second, 5) == 1.0

    def test_disjoint_top_k(self):
        first = ranking_from_order(LABELS)
        second = ranking_from_order(LABELS[5:] + LABELS[:5])
        assert overlap_at_k(first, second, 5) == 0.0
        assert jaccard_at_k(first, second, 5) == 0.0

    def test_partial_overlap(self):
        first = ranking_from_order(LABELS)
        second = ranking_from_order(LABELS[3:] + LABELS[:3])
        assert overlap_at_k(first, second, 5) == pytest.approx(2 / 5)

    def test_invalid_k(self):
        first = ranking_from_order(LABELS)
        with pytest.raises(ValueError):
            overlap_at_k(first, first, 0)
        with pytest.raises(ValueError):
            jaccard_at_k(first, first, -1)
        with pytest.raises(ValueError):
            precision_at_k(first, LABELS, 0)

    def test_precision_at_k(self):
        ranking = ranking_from_order(LABELS)
        assert precision_at_k(ranking, LABELS[:5], 5) == 1.0
        assert precision_at_k(ranking, LABELS[5:], 5) == 0.0
        assert precision_at_k(ranking, LABELS[2:7], 5) == pytest.approx(3 / 5)

    def test_precision_on_empty_ranking(self):
        assert precision_at_k(Ranking([]), ["a"], 5) == 0.0


class TestCorrelationMetrics:
    def test_identical_orders_give_one(self):
        first = ranking_from_order(LABELS)
        second = ranking_from_order(LABELS)
        assert kendall_tau(first, second) == pytest.approx(1.0)
        assert spearman_rho(first, second) == pytest.approx(1.0)

    def test_reversed_orders_give_minus_one(self):
        first = ranking_from_order(LABELS)
        second = ranking_from_order(list(reversed(LABELS)))
        assert kendall_tau(first, second) == pytest.approx(-1.0)
        assert spearman_rho(first, second) == pytest.approx(-1.0)

    def test_partial_agreement_between_extremes(self):
        first = ranking_from_order(LABELS)
        shuffled = LABELS[:]
        shuffled[0], shuffled[1] = shuffled[1], shuffled[0]
        second = ranking_from_order(shuffled)
        assert -1.0 < kendall_tau(first, second) < 1.0 or kendall_tau(first, second) == pytest.approx(
            1 - 2 * (1 / 45)
        )
        assert spearman_rho(first, second) < 1.0

    def test_disjoint_label_sets_default_to_one(self):
        first = ranking_from_order(["a", "b"])
        second = ranking_from_order(["c", "d"])
        assert kendall_tau(first, second) == 1.0
        assert spearman_rho(first, second) == 1.0


class TestRankBiasedOverlap:
    def test_identical_rankings(self):
        first = ranking_from_order(LABELS)
        assert rank_biased_overlap(first, first) == pytest.approx(1.0)

    def test_disjoint_rankings_near_zero(self):
        first = ranking_from_order([f"a{i}" for i in range(10)])
        second = ranking_from_order([f"b{i}" for i in range(10)])
        assert rank_biased_overlap(first, second, depth=10) == pytest.approx(0.0, abs=1e-9)

    def test_top_heavy_weighting(self):
        base = ranking_from_order(LABELS)
        # Swap at the head hurts more than a swap at the tail.
        head_swapped = LABELS[:]
        head_swapped[0], head_swapped[9] = head_swapped[9], head_swapped[0]
        tail_swapped = LABELS[:]
        tail_swapped[8], tail_swapped[9] = tail_swapped[9], tail_swapped[8]
        assert rank_biased_overlap(base, ranking_from_order(head_swapped), depth=10) < \
            rank_biased_overlap(base, ranking_from_order(tail_swapped), depth=10)

    def test_result_in_unit_interval(self):
        first = ranking_from_order(LABELS)
        second = ranking_from_order(LABELS[5:] + LABELS[:5])
        value = rank_biased_overlap(first, second)
        assert 0.0 <= value <= 1.0

    def test_invalid_parameters(self):
        first = ranking_from_order(LABELS)
        with pytest.raises(ValueError):
            rank_biased_overlap(first, first, p=1.0)
        with pytest.raises(ValueError):
            rank_biased_overlap(first, first, p=0.0)
        with pytest.raises(ValueError):
            rank_biased_overlap(first, first, depth=0)
