"""Shared fixtures for the test suite.

The fixtures build small, fully-understood graphs (a triangle, a two-cycle
star, a DAG, a planted-community graph) plus scaled-down instances of the
synthetic datasets, so individual tests stay fast while still exercising the
same code paths as the full-size benchmarks.
"""

from __future__ import annotations

import os

import pytest

# Re-exported for suites that historically imported the fault helpers from
# conftest; the scenario library itself now lives in tests/faults.py.
from faults import DownShard, FlakyStore  # noqa: F401

from repro.datasets.amazon import generate_amazon_graph
from repro.datasets.twitter import generate_twitter_graph
from repro.datasets.wikipedia import generate_wikilink_graph
from repro.graph.digraph import DirectedGraph
from repro.graph.generators import (
    cycle_graph,
    layered_dag,
    reciprocal_communities_graph,
    star_graph,
)


@pytest.fixture(scope="session", autouse=True)
def _sharded_default_datastore():
    """Run every default-datastore gateway on a scaled-out store when asked.

    With ``REPRO_TEST_SHARDS=N`` in the environment, any
    :class:`~repro.platform.gateway.ApiGateway` built without an explicit
    ``datastore`` gets an N-shard
    :class:`~repro.platform.sharding.ShardedDataStore` instead of a single
    :class:`DataStore`.  With ``REPRO_TEST_REPLICAS=R`` it gets an R-way
    :class:`~repro.platform.replication.ReplicatedShardedDataStore` instead
    (over ``REPRO_TEST_SHARDS`` backends when both are set, else ``R + 1``).
    ``REPRO_TEST_READ_CONSISTENCY=quorum`` additionally runs every dataset
    read through the replicated store's digest-first quorum (implying the
    replicated topology when ``REPRO_TEST_REPLICAS`` is unset).  CI runs
    the platform suite on the 4-shard topology, the replicated one
    (``REPRO_TEST_REPLICAS=2``) *and* the quorum axis so all of them stay
    green; locally the suite runs unsharded unless a variable is set.
    """
    num_shards = int(os.environ.get("REPRO_TEST_SHARDS", "0") or 0)
    replicas = int(os.environ.get("REPRO_TEST_REPLICAS", "0") or 0)
    consistency = (
        os.environ.get("REPRO_TEST_READ_CONSISTENCY", "").strip().lower()
    )
    if consistency not in ("one", "quorum"):
        consistency = ""
    if consistency == "quorum" and replicas <= 0:
        replicas = 2
    if num_shards <= 0 and replicas <= 0:
        yield
        return
    from repro.platform import gateway as gateway_module

    original = gateway_module.DataStore
    if replicas > 0:
        from repro.platform.replication import ReplicatedShardedDataStore

        backing = num_shards if num_shards > 0 else max(replicas + 1, 3)
        gateway_module.DataStore = lambda: ReplicatedShardedDataStore(
            num_shards=backing,
            replicas=replicas,
            read_consistency=consistency or "one",
        )
    else:
        from repro.platform.sharding import ShardedDataStore

        gateway_module.DataStore = lambda: ShardedDataStore(num_shards=num_shards)
    try:
        yield
    finally:
        gateway_module.DataStore = original


@pytest.fixture(scope="session", autouse=True)
def _process_default_executor():
    """Run every default-mode gateway on the process executor tier when asked.

    With ``REPRO_TEST_EXECUTOR=process`` in the environment, any
    :class:`~repro.platform.gateway.ApiGateway` built without an explicit
    ``executor_mode`` gets a
    :class:`~repro.platform.executor.ProcessExecutorPool` — batch kernels run
    in worker processes over shared-memory compiled graphs.  CI runs the
    platform suite on this axis alongside the shard/replica topologies;
    locally the suite stays on the thread tier unless the variable is set.
    """
    mode = os.environ.get("REPRO_TEST_EXECUTOR", "").strip().lower()
    if mode not in ("process", "thread"):
        yield
        return
    from repro.platform import gateway as gateway_module

    original = gateway_module.DEFAULT_EXECUTOR_MODE
    gateway_module.DEFAULT_EXECUTOR_MODE = mode
    try:
        yield
    finally:
        gateway_module.DEFAULT_EXECUTOR_MODE = original


@pytest.fixture
def triangle() -> DirectedGraph:
    """The directed triangle A -> B -> C -> A."""
    graph = DirectedGraph(name="triangle")
    graph.add_edge("A", "B")
    graph.add_edge("B", "C")
    graph.add_edge("C", "A")
    return graph


@pytest.fixture
def two_triangles() -> DirectedGraph:
    """Two directed triangles sharing the node R (so R lies on two 3-cycles)."""
    graph = DirectedGraph(name="two-triangles")
    graph.add_edge("R", "A")
    graph.add_edge("A", "B")
    graph.add_edge("B", "R")
    graph.add_edge("R", "C")
    graph.add_edge("C", "D")
    graph.add_edge("D", "R")
    return graph


@pytest.fixture
def reciprocal_star() -> DirectedGraph:
    """A hub H with five leaves, all edges reciprocated (five 2-cycles)."""
    graph = DirectedGraph(name="reciprocal-star")
    for leaf in ["A", "B", "C", "D", "E"]:
        graph.add_edge("H", leaf)
        graph.add_edge(leaf, "H")
    return graph


@pytest.fixture
def small_dag() -> DirectedGraph:
    """A three-layer DAG: no cycles at all."""
    return layered_dag([2, 3, 2], edge_probability=0.8, seed=7, name="small-dag")


@pytest.fixture
def mixed_graph() -> DirectedGraph:
    """A graph combining a reciprocated core, a one-way chain and a dangling node."""
    graph = DirectedGraph(name="mixed")
    # Reciprocated core triangle.
    for first, second in [("X", "Y"), ("Y", "Z"), ("Z", "X")]:
        graph.add_edge(first, second)
        graph.add_edge(second, first)
    # One-way chain hanging off the core.
    graph.add_edge("X", "P")
    graph.add_edge("P", "Q")
    # Dangling node reachable from the chain.
    graph.add_edge("Q", "sink")
    return graph


@pytest.fixture
def community_graph() -> DirectedGraph:
    """A planted-community graph (4 communities of 8 nodes, reciprocated)."""
    return reciprocal_communities_graph(4, 8, seed=11, name="communities")


@pytest.fixture
def simple_cycle_graph() -> DirectedGraph:
    """The directed 6-cycle."""
    return cycle_graph(6)


@pytest.fixture
def hub_star() -> DirectedGraph:
    """A star with reciprocated spokes (hub = node 0)."""
    return star_graph(6, reciprocal=True)


@pytest.fixture(scope="session")
def small_enwiki() -> DirectedGraph:
    """A scaled-down English wikilink graph (fast; session-scoped)."""
    return generate_wikilink_graph("en", "2018-03-01", num_filler_articles=80, seed=3)


@pytest.fixture(scope="session")
def small_amazon() -> DirectedGraph:
    """A scaled-down Amazon co-purchase graph (fast; session-scoped)."""
    return generate_amazon_graph(num_filler_items=100, seed=3)


@pytest.fixture(scope="session")
def small_twitter() -> DirectedGraph:
    """A scaled-down Twitter cop27 graph (fast; session-scoped)."""
    return generate_twitter_graph("cop27", num_casual_users=60, seed=3)


def register_gated_algorithm(name: str):
    """Register a personalized test algorithm whose executions block on a gate.

    Returns ``(started, release)`` events: ``started`` fires when the first
    execution reaches an executor, ``release`` lets every execution proceed.
    Callers must ``release.set()`` and pop the name from the registry when
    done (see the ``gated_algorithm`` fixtures in the jobs/REST suites).
    """
    import threading

    from repro.algorithms import registry as algorithm_registry
    from repro.algorithms.base import Algorithm, AlgorithmSpec
    from repro.algorithms.personalized_pagerank import personalized_pagerank

    started = threading.Event()
    release = threading.Event()

    class _Gated(Algorithm):
        spec = AlgorithmSpec(
            name=name,
            display_name="Gated PPR",
            personalized=True,
            parameters=(),
            description="test-only algorithm blocking on a gate",
        )
        # The gate events live in the test process; a forked worker's copy
        # would never release, so the process tier must run this in-process.
        process_local = True

        def _execute(self, graph, *, source, parameters):
            started.set()
            if not release.wait(timeout=30.0):
                raise TimeoutError("test gate never released")
            return personalized_pagerank(graph, source)

        def _execute_batch(self, graph, *, sources, parameters):
            started.set()
            if not release.wait(timeout=30.0):
                raise TimeoutError("test gate never released")
            return [personalized_pagerank(graph, source) for source in sources]

    algorithm_registry.register_algorithm(_Gated(), replace=True)
    return started, release
