"""Integration tests reproducing the *shape* of the paper's Tables I, II and III.

These tests run the actual experiment pipelines (full-size synthetic
datasets, the paper's parameters) and assert the qualitative claims the
tables support — who wins, which algorithm over-promotes popular nodes —
rather than the absolute scores, which depend on the synthetic substrate.
They are the test-suite counterparts of the benchmarks in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.algorithms.cyclerank import cyclerank
from repro.algorithms.pagerank import pagerank
from repro.algorithms.personalized_pagerank import personalized_pagerank
from repro.datasets.amazon import generate_amazon_graph
from repro.datasets.seeds import (
    AMAZON_COMMUNITIES,
    FAKE_NEWS_TOPICS,
    WIKIPEDIA_GLOBAL_HUBS,
    WIKIPEDIA_TOPICS,
)
from repro.datasets.wikipedia import generate_wikilink_graph
from repro.ranking.comparison import algorithm_comparison, dataset_comparison
from repro.ranking.metrics import overlap_at_k


@pytest.fixture(scope="module")
def enwiki():
    return generate_wikilink_graph("en", "2018-03-01")


@pytest.fixture(scope="module")
def amazon():
    return generate_amazon_graph()


class TestTableOneWikipedia:
    """Table I: PR (alpha=0.85), CR (K=3, exp), PPR (alpha=0.3) on enwiki 2018."""

    def test_pagerank_top5_are_global_hubs(self, enwiki):
        top = pagerank(enwiki, alpha=0.85).top_labels(5)
        assert set(top) <= set(WIKIPEDIA_GLOBAL_HUBS)

    @pytest.mark.parametrize("reference", ["Freddie Mercury", "Pasta"])
    def test_reference_ranks_first_for_both_personalized_algorithms(self, enwiki, reference):
        assert cyclerank(enwiki, reference, max_cycle_length=3).top_labels(1) == [reference]
        assert personalized_pagerank(enwiki, reference, alpha=0.3).top_labels(1) == [reference]

    @pytest.mark.parametrize("reference", ["Freddie Mercury", "Pasta"])
    def test_cyclerank_top5_is_topical(self, enwiki, reference):
        seed = WIKIPEDIA_TOPICS[reference]
        topical = set(seed.all_nodes())
        top = cyclerank(enwiki, reference, max_cycle_length=3).top_labels(
            5, exclude=(reference,)
        )
        assert set(top) <= topical

    @pytest.mark.parametrize("reference", ["Freddie Mercury", "Pasta"])
    def test_ppr_promotes_globally_popular_nodes(self, enwiki, reference):
        """The paper's central claim: PPR's head contains nodes with very high
        global in-degree that CycleRank does not promote."""
        seed = WIKIPEDIA_TOPICS[reference]
        ppr_top = personalized_pagerank(enwiki, reference, alpha=0.3).top_labels(
            5, exclude=(reference,)
        )
        core = set(seed.core)
        promoted_outside_core = [label for label in ppr_top if label not in core]
        assert promoted_outside_core, "PPR should promote at least one non-core node"
        in_degrees = enwiki.in_degrees()
        median = sorted(in_degrees)[len(in_degrees) // 2]
        assert any(
            enwiki.in_degree(label) >= 5 * max(median, 1) for label in promoted_outside_core
        )

    @pytest.mark.parametrize("reference", ["Freddie Mercury", "Pasta"])
    def test_cyclerank_and_ppr_disagree_but_not_completely(self, enwiki, reference):
        cr = cyclerank(enwiki, reference, max_cycle_length=3)
        ppr = personalized_pagerank(enwiki, reference, alpha=0.3)
        overlap = overlap_at_k(cr, ppr, 5)
        assert overlap < 1.0
        assert overlap > 0.0  # they agree at least on the reference node

    def test_table_renders_with_five_columns(self, enwiki):
        rankings = {}
        for reference in ["Freddie Mercury", "Pasta"]:
            rankings[f"Cyclerank ({reference})"] = cyclerank(
                enwiki, reference, max_cycle_length=3
            )
            rankings[f"Pers.PageRank ({reference})"] = personalized_pagerank(
                enwiki, reference, alpha=0.3
            )
        rankings["PageRank"] = pagerank(enwiki, alpha=0.85)
        table = algorithm_comparison(rankings, k=5, title="Table I")
        assert len(table.columns) == 5
        assert len(table.rows) == 5


class TestTableTwoAmazon:
    """Table II: PR (0.85), CR (K=5, exp), PPR (0.85) on the Amazon graph."""

    def test_pagerank_top5_are_bestsellers(self, amazon):
        from repro.datasets.seeds import AMAZON_POPULAR_ITEMS

        top = pagerank(amazon, alpha=0.85).top_labels(5)
        assert set(top) <= set(AMAZON_POPULAR_ITEMS)

    @pytest.mark.parametrize("reference", ["1984", "The Fellowship of the Ring"])
    def test_reference_ranks_first(self, amazon, reference):
        assert cyclerank(amazon, reference, max_cycle_length=5).top_labels(1) == [reference]
        assert personalized_pagerank(amazon, reference, alpha=0.85).top_labels(1) == [reference]

    def test_cyclerank_keeps_tolkien_for_tolkien_query(self, amazon):
        top = cyclerank(amazon, "The Fellowship of the Ring", max_cycle_length=5).top_labels(
            5, exclude=("The Fellowship of the Ring",)
        )
        assert set(top) <= set(AMAZON_COMMUNITIES["tolkien"])

    def test_cyclerank_keeps_dystopian_classics_for_1984(self, amazon):
        top = cyclerank(amazon, "1984", max_cycle_length=5).top_labels(5, exclude=("1984",))
        assert set(top) <= set(AMAZON_COMMUNITIES["dystopian-classics"])

    def test_ppr_suggests_harry_potter_for_tolkien_query_cyclerank_does_not(self, amazon):
        """Table II's headline observation."""
        ppr_top = personalized_pagerank(
            amazon, "The Fellowship of the Ring", alpha=0.85
        ).top_labels(8, exclude=("The Fellowship of the Ring",))
        cr_top = cyclerank(
            amazon, "The Fellowship of the Ring", max_cycle_length=5
        ).top_labels(8, exclude=("The Fellowship of the Ring",))
        assert any("Harry Potter" in label for label in ppr_top)
        assert not any("Harry Potter" in label for label in cr_top)


class TestTableThreeCrossLanguage:
    """Table III: CycleRank (K=3, exp) for "Fake news" across six editions."""

    LANGUAGES = ("de", "en", "fr", "it", "nl", "pl")

    @pytest.fixture(scope="class")
    def per_language_rankings(self):
        rankings = {}
        for language in self.LANGUAGES:
            graph = generate_wikilink_graph(language, "2018-03-01")
            seed = FAKE_NEWS_TOPICS[language]
            rankings[language] = (
                seed,
                cyclerank(graph, seed.reference, max_cycle_length=3),
            )
        return rankings

    def test_reference_article_ranks_first_in_every_edition(self, per_language_rankings):
        for seed, ranking in per_language_rankings.values():
            assert ranking.top_labels(1) == [seed.reference]

    def test_top5_is_dominated_by_language_specific_concepts(self, per_language_rankings):
        for language, (seed, ranking) in per_language_rankings.items():
            top = ranking.top_labels(5, exclude=(seed.reference,))
            seed_nodes = set(seed.all_nodes())
            matches = sum(1 for label in top if label in seed_nodes)
            assert matches >= 4, f"{language}: {top}"

    def test_editions_frame_the_topic_differently(self, per_language_rankings):
        top_sets = {
            language: frozenset(ranking.top_labels(5, exclude=(seed.reference,)))
            for language, (seed, ranking) in per_language_rankings.items()
        }
        # Every pair of editions should disagree on at least one of the top-5
        # concepts (cross-cultural framing differences).
        languages = list(top_sets)
        for i, first in enumerate(languages):
            for second in languages[i + 1:]:
                assert top_sets[first] != top_sets[second]

    def test_dataset_comparison_table_has_six_columns(self, per_language_rankings):
        table = dataset_comparison(
            {
                f"Fake news ({language})": ranking
                for language, (_, ranking) in per_language_rankings.items()
            },
            k=5,
            title="Table III",
        )
        assert len(table.columns) == 6
        assert len(table.rows) == 5
