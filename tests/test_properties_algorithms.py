"""Hypothesis property tests for the relevance algorithms (DESIGN.md §5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.cheirank import cheirank
from repro.algorithms.cycle_enumeration import enumerate_cycles_through
from repro.algorithms.cyclerank import cyclerank
from repro.algorithms.pagerank import pagerank
from repro.algorithms.personalized_pagerank import personalized_pagerank
from repro.algorithms.registry import available_algorithms, get_algorithm, run_batch
from repro.algorithms.twodrank import twodrank, two_dimensional_order
from repro.graph.components import strongly_connected_component_of
from repro.graph.digraph import DirectedGraph


@st.composite
def graphs_with_reference(draw, max_nodes: int = 10, max_edges: int = 35):
    """Strategy: a small labelled directed graph plus a reference node in it."""
    num_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=num_nodes - 1),
                st.integers(min_value=0, max_value=num_nodes - 1),
            ).filter(lambda pair: pair[0] != pair[1]),
            max_size=max_edges,
        )
    )
    graph = DirectedGraph(name="hypothesis")
    for node in range(num_nodes):
        graph.add_node(f"node-{node}")
    graph.add_edges_from(edges)
    reference = draw(st.integers(min_value=0, max_value=num_nodes - 1))
    return graph, reference


@st.composite
def alphas(draw):
    return draw(st.floats(min_value=0.0, max_value=0.95, allow_nan=False))


class TestPageRankFamilyInvariants:
    @given(graphs_with_reference(), alphas())
    @settings(max_examples=40, deadline=None)
    def test_pagerank_is_a_distribution(self, graph_and_reference, alpha):
        graph, _ = graph_and_reference
        ranking = pagerank(graph, alpha=alpha)
        assert np.all(ranking.scores >= 0)
        assert ranking.total() == np.float64(1.0) or abs(ranking.total() - 1.0) < 1e-8

    @given(graphs_with_reference(), alphas())
    @settings(max_examples=40, deadline=None)
    def test_ppr_is_a_distribution(self, graph_and_reference, alpha):
        graph, reference = graph_and_reference
        ranking = personalized_pagerank(graph, reference, alpha=alpha)
        assert np.all(ranking.scores >= 0)
        assert abs(ranking.total() - 1.0) < 1e-8

    @given(graphs_with_reference(), alphas())
    @settings(max_examples=40, deadline=None)
    def test_cheirank_equals_pagerank_of_transpose(self, graph_and_reference, alpha):
        graph, _ = graph_and_reference
        chei = cheirank(graph, alpha=alpha)
        pr_of_transpose = pagerank(graph.transpose(), alpha=alpha)
        assert np.allclose(chei.scores, pr_of_transpose.scores, atol=1e-9)

    @given(graphs_with_reference())
    @settings(max_examples=30, deadline=None)
    def test_twodrank_is_a_permutation(self, graph_and_reference):
        graph, _ = graph_and_reference
        ranking = twodrank(graph, alpha=0.85)
        assert sorted(ranking.ordered_nodes()) == list(graph.nodes())
        order = two_dimensional_order(pagerank(graph), cheirank(graph))
        assert sorted(order) == list(graph.nodes())


class TestCycleRankInvariants:
    @given(graphs_with_reference(), st.integers(min_value=2, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_reference_has_maximum_score(self, graph_and_reference, k):
        graph, reference = graph_and_reference
        ranking = cyclerank(graph, reference, max_cycle_length=k)
        assert ranking.score_of(reference) == max(ranking.scores)

    @given(graphs_with_reference(), st.integers(min_value=2, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_scores_non_negative_and_zero_outside_scc(self, graph_and_reference, k):
        graph, reference = graph_and_reference
        ranking = cyclerank(graph, reference, max_cycle_length=k)
        assert np.all(ranking.scores >= 0)
        scc = strongly_connected_component_of(graph, reference)
        for node in graph.nodes():
            if node not in scc:
                assert ranking.score_of(node) == 0.0

    @given(graphs_with_reference(), st.integers(min_value=2, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_scores_monotone_in_k(self, graph_and_reference, k):
        graph, reference = graph_and_reference
        smaller = cyclerank(graph, reference, max_cycle_length=k)
        larger = cyclerank(graph, reference, max_cycle_length=k + 1)
        assert np.all(larger.scores >= smaller.scores - 1e-12)

    @given(graphs_with_reference(), st.integers(min_value=2, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_positive_score_iff_on_some_cycle(self, graph_and_reference, k):
        graph, reference = graph_and_reference
        ranking = cyclerank(graph, reference, max_cycle_length=k)
        on_cycle = set()
        for cycle in enumerate_cycles_through(graph, reference, k):
            on_cycle.update(cycle)
        for node in graph.nodes():
            assert (ranking.score_of(node) > 0) == (node in on_cycle)

    @given(graphs_with_reference(), st.integers(min_value=2, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_enumerated_cycles_are_simple_and_valid(self, graph_and_reference, k):
        graph, reference = graph_and_reference
        seen = set()
        for cycle in enumerate_cycles_through(graph, reference, k):
            assert 2 <= len(cycle) <= k
            assert cycle[0] == reference
            assert len(set(cycle)) == len(cycle)
            assert cycle not in seen
            seen.add(cycle)
            for first, second in zip(cycle, cycle[1:]):
                assert graph.has_edge(first, second)
            assert graph.has_edge(cycle[-1], reference)

    @given(graphs_with_reference())
    @settings(max_examples=30, deadline=None)
    def test_cyclerank_symmetric_under_relabelling_of_k2(self, graph_and_reference):
        # With K=2 the score of every non-reference node is sigma(2) times the
        # indicator of a reciprocated edge with the reference.
        graph, reference = graph_and_reference
        ranking = cyclerank(graph, reference, max_cycle_length=2, scoring="const")
        for node in graph.nodes():
            if node == reference:
                continue
            reciprocated = graph.has_edge(reference, node) and graph.has_edge(node, reference)
            assert ranking.score_of(node) == (1.0 if reciprocated else 0.0)


@st.composite
def graphs_with_seed_sets(draw, max_nodes: int = 10, max_edges: int = 30, max_seeds: int = 4):
    """Strategy: a small labelled directed graph plus 1..max_seeds seed labels.

    Seeds may repeat, exercising the scheduler-style deduplicated workload.
    """
    num_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=num_nodes - 1),
                st.integers(min_value=0, max_value=num_nodes - 1),
            ).filter(lambda pair: pair[0] != pair[1]),
            max_size=max_edges,
        )
    )
    graph = DirectedGraph(name="hypothesis-batch")
    for node in range(num_nodes):
        graph.add_node(f"node-{node}")
    graph.add_edges_from(edges)
    seeds = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_nodes - 1),
            min_size=1,
            max_size=max_seeds,
        )
    )
    return graph, [f"node-{seed}" for seed in seeds]


#: Cheap parameter overrides so the batched property sweep stays fast.
_BATCH_TEST_PARAMETERS = {
    "ppr-montecarlo": {"num_walks": 200},
    "hits": {"max_iter": 2000},
    "personalized-hits": {"max_iter": 2000},
}


class TestRunBatchMatchesSingleRuns:
    """`run_batch` must be observationally equivalent to per-seed `run` calls."""

    @pytest.mark.parametrize("name", available_algorithms())
    @given(graph_and_seeds=graphs_with_seed_sets())
    @settings(max_examples=10, deadline=None)
    def test_batch_equals_singles(self, name, graph_and_seeds):
        graph, seeds = graph_and_seeds
        algorithm = get_algorithm(name)
        parameters = _BATCH_TEST_PARAMETERS.get(name)
        sources = seeds if algorithm.is_personalized else [None] * len(seeds)
        batched = run_batch(name, graph, sources=sources, parameters=parameters)
        assert len(batched) == len(sources)
        for source, batch_ranking in zip(sources, batched):
            single = algorithm.run(graph, source=source, parameters=parameters)
            assert batch_ranking.algorithm == single.algorithm
            assert batch_ranking.reference == single.reference
            if name in ("2drank", "personalized-2drank"):
                # 2DRank encodes only an ordering; compare it directly.
                assert batch_ranking.ordered_nodes() == single.ordered_nodes()
            else:
                assert np.allclose(
                    batch_ranking.scores, single.scores, atol=1e-6
                ), f"batch diverges from single run for {name} (source={source!r})"

    @pytest.mark.parametrize("name", available_algorithms(personalized=True))
    def test_empty_batch_returns_empty_list(self, name):
        graph = DirectedGraph(name="empty-batch")
        graph.add_node("only")
        assert run_batch(name, graph, sources=[]) == []


class TestCsrEnumerationMatchesDictReference:
    """The CSR-native engine must reproduce the seed dict-based enumeration."""

    @given(graphs_with_reference(), st.integers(min_value=2, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_same_cycles_in_the_same_order(self, graph_and_reference, k):
        from repro.algorithms.cycle_enumeration import enumerate_cycles_through_dict
        from repro.graph.compiled import compiled_of

        graph, reference = graph_and_reference
        # A warmed artifact routes through the CSR engine; a bare graph takes
        # the dictionary walk.  Both must produce the identical sequence.
        compiled = compiled_of(graph)
        compiled.to_csr()
        csr_native = list(enumerate_cycles_through(compiled, reference, k))
        bare_graph = list(enumerate_cycles_through(graph, reference, k))
        dict_based = list(enumerate_cycles_through_dict(graph, reference, k))
        assert csr_native == dict_based
        assert bare_graph == dict_based

    @given(graphs_with_reference(), st.integers(min_value=2, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_whole_graph_cycles_match_rooted_reference(self, graph_and_reference, k):
        from repro.algorithms.cycle_enumeration import (
            enumerate_cycles_through_dict,
            simple_cycles_up_to_length,
        )

        graph, _ = graph_and_reference
        # Reference enumeration: every rooted cycle whose minimum node is the
        # root, collected with the dict-based seed implementation.
        expected = set()
        for pivot in graph.nodes():
            for cycle in enumerate_cycles_through_dict(graph, pivot, k):
                if min(cycle) == pivot:
                    expected.add(cycle)
        assert set(simple_cycles_up_to_length(graph, k)) == expected


class TestBatchExactnessForPersonalizedKernels:
    """CycleRank/HITS/Katz batches must equal per-reference runs bit for bit."""

    @given(graphs_with_seed_sets())
    @settings(max_examples=15, deadline=None)
    def test_cyclerank_batch_is_bit_identical(self, graph_and_seeds):
        from repro.algorithms.cyclerank import cyclerank_batch

        graph, seeds = graph_and_seeds
        for k in (2, 3, 4):
            batched = cyclerank_batch(graph, seeds, max_cycle_length=k)
            for seed, batch_ranking in zip(seeds, batched):
                single = cyclerank(graph, seed, max_cycle_length=k)
                assert np.array_equal(batch_ranking.scores, single.scores)
                assert batch_ranking.ordered_nodes() == single.ordered_nodes()

    @given(graphs_with_seed_sets())
    @settings(max_examples=10, deadline=None)
    def test_personalized_hits_batch_is_bit_identical(self, graph_and_seeds):
        from repro.algorithms.hits import personalized_hits, personalized_hits_batch

        graph, seeds = graph_and_seeds
        batched = personalized_hits_batch(graph, seeds, max_iter=20000)
        for seed, batch_ranking in zip(seeds, batched):
            single = personalized_hits(graph, seed, max_iter=20000)
            assert np.array_equal(batch_ranking.scores, single.scores)
            assert batch_ranking.parameters["iterations"] == single.parameters["iterations"]

    @given(graphs_with_seed_sets())
    @settings(max_examples=10, deadline=None)
    def test_personalized_katz_batch_is_bit_identical(self, graph_and_seeds):
        from repro.algorithms.katz import personalized_katz, personalized_katz_batch

        graph, seeds = graph_and_seeds
        batched = personalized_katz_batch(graph, seeds, beta=0.01)
        for seed, batch_ranking in zip(seeds, batched):
            single = personalized_katz(graph, seed, beta=0.01)
            assert np.array_equal(batch_ranking.scores, single.scores)
            assert batch_ranking.parameters["iterations"] == single.parameters["iterations"]
