"""Unit tests for :mod:`repro.graph.components`."""

from __future__ import annotations

from repro.graph.components import (
    condensation,
    is_strongly_connected,
    is_weakly_connected,
    strongly_connected_component_of,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.graph.digraph import DirectedGraph
from repro.graph.generators import cycle_graph, layered_dag, path_graph


class TestStronglyConnectedComponents:
    def test_cycle_is_one_component(self):
        graph = cycle_graph(5)
        components = strongly_connected_components(graph)
        assert len(components) == 1
        assert components[0] == set(range(5))
        assert is_strongly_connected(graph)

    def test_path_is_all_singletons(self):
        graph = path_graph(4)
        components = strongly_connected_components(graph)
        assert len(components) == 4
        assert all(len(component) == 1 for component in components)
        assert not is_strongly_connected(graph)

    def test_two_cycles_joined_by_one_way_edge(self):
        graph = DirectedGraph()
        graph.add_edges_from([("A", "B"), ("B", "A"), ("C", "D"), ("D", "C"), ("B", "C")])
        components = strongly_connected_components(graph)
        assert len(components) == 2
        sizes = sorted(len(component) for component in components)
        assert sizes == [2, 2]

    def test_component_of_specific_node(self, two_triangles):
        component = strongly_connected_component_of(two_triangles, "R")
        labels = {two_triangles.label_of(node) for node in component}
        assert labels == {"R", "A", "B", "C", "D"}

    def test_empty_graph(self):
        graph = DirectedGraph()
        assert strongly_connected_components(graph) == []
        assert is_strongly_connected(graph)
        assert is_weakly_connected(graph)

    def test_every_node_in_exactly_one_component(self, community_graph):
        components = strongly_connected_components(community_graph)
        seen = [node for component in components for node in component]
        assert sorted(seen) == list(community_graph.nodes())

    def test_deep_chain_does_not_hit_recursion_limit(self):
        # 5000-node path: a recursive Tarjan would overflow Python's stack.
        graph = path_graph(5000)
        components = strongly_connected_components(graph)
        assert len(components) == 5000

    def test_reverse_topological_emission_order(self):
        graph = DirectedGraph()
        graph.add_edges_from([("A", "B"), ("B", "C")])
        components = strongly_connected_components(graph)
        # Tarjan emits a component only after everything it reaches; the sink
        # C must therefore appear before A.
        order = [graph.label_of(next(iter(component))) for component in components]
        assert order.index("C") < order.index("A")


class TestWeaklyConnectedComponents:
    def test_direction_is_ignored(self):
        graph = DirectedGraph()
        graph.add_edge("A", "B")
        graph.add_edge("C", "B")
        assert len(weakly_connected_components(graph)) == 1
        assert is_weakly_connected(graph)

    def test_disconnected_pieces(self):
        graph = DirectedGraph()
        graph.add_edge("A", "B")
        graph.add_edge("C", "D")
        graph.add_node("isolated")
        components = weakly_connected_components(graph)
        assert len(components) == 3
        assert not is_weakly_connected(graph)


class TestCondensation:
    def test_condensation_of_dag_is_isomorphic(self):
        graph = layered_dag([2, 2], edge_probability=1.0, seed=0)
        dag, membership = condensation(graph)
        assert dag.number_of_nodes() == graph.number_of_nodes()
        assert len(membership) == graph.number_of_nodes()

    def test_condensation_contracts_cycles(self, two_triangles):
        dag, membership = condensation(two_triangles)
        assert dag.number_of_nodes() == 1
        assert len(set(membership.values())) == 1

    def test_condensation_is_acyclic(self, community_graph):
        dag, _ = condensation(community_graph)
        # An acyclic graph has no strongly connected component of size > 1.
        assert all(len(c) == 1 for c in strongly_connected_components(dag))

    def test_condensation_membership_consistent_with_edges(self, mixed_graph):
        dag, membership = condensation(mixed_graph)
        for edge in mixed_graph.edges():
            source_component = membership[edge.source]
            target_component = membership[edge.target]
            if source_component != target_component:
                assert dag.has_edge(source_component, target_component)
