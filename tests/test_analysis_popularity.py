"""Unit tests for :mod:`repro.analysis.popularity`."""

from __future__ import annotations

import math

import pytest

from repro.algorithms.cyclerank import cyclerank
from repro.algorithms.personalized_pagerank import personalized_pagerank
from repro.analysis.popularity import popularity_bias, popularity_bias_report
from repro.exceptions import InvalidParameterError
from repro.graph.digraph import DirectedGraph
from repro.ranking.result import Ranking


def graph_with_popularity_gradient() -> DirectedGraph:
    """A graph where node 'popular' has by far the largest in-degree."""
    graph = DirectedGraph(name="gradient")
    for index in range(10):
        graph.add_edge(f"spoke{index}", "popular")
    graph.add_edge("popular", "middling")
    graph.add_edge("spoke0", "middling")
    graph.add_edge("middling", "spoke0")
    return graph


class TestPopularityBias:
    def test_head_of_popular_nodes_gives_high_bias(self):
        graph = graph_with_popularity_gradient()
        ranking = Ranking(
            [1.0 if graph.label_of(node) == "popular" else 0.0 for node in graph.nodes()],
            labels=graph.labels(),
        )
        bias = popularity_bias(ranking, graph, k=1, exclude_reference=False)
        assert bias > 0.9

    def test_head_of_unpopular_nodes_gives_low_bias(self):
        graph = graph_with_popularity_gradient()
        scores = [0.0] * graph.number_of_nodes()
        scores[graph.resolve("spoke3")] = 1.0
        scores[graph.resolve("spoke4")] = 0.9
        ranking = Ranking(scores, labels=graph.labels())
        bias = popularity_bias(ranking, graph, k=2, exclude_reference=False)
        assert bias < 0.6

    def test_reference_excluded_by_default(self):
        graph = graph_with_popularity_gradient()
        scores = [0.0] * graph.number_of_nodes()
        scores[graph.resolve("popular")] = 1.0
        scores[graph.resolve("spoke1")] = 0.5
        ranking = Ranking(scores, labels=graph.labels(), reference="popular")
        with_reference = popularity_bias(ranking, graph, k=1, exclude_reference=False)
        without_reference = popularity_bias(ranking, graph, k=1)
        assert with_reference > without_reference

    def test_pagerank_measure_supported(self, small_enwiki):
        ranking = personalized_pagerank(small_enwiki, "Pasta", alpha=0.3)
        bias = popularity_bias(ranking, small_enwiki, k=5, measure="pagerank")
        assert 0.0 <= bias <= 1.0

    def test_unknown_measure_rejected(self, small_enwiki):
        ranking = personalized_pagerank(small_enwiki, "Pasta", alpha=0.3)
        with pytest.raises(InvalidParameterError):
            popularity_bias(ranking, small_enwiki, measure="followers")

    def test_invalid_k_rejected(self, small_enwiki):
        ranking = personalized_pagerank(small_enwiki, "Pasta", alpha=0.3)
        with pytest.raises(InvalidParameterError):
            popularity_bias(ranking, small_enwiki, k=0)

    def test_labels_missing_from_graph_rejected(self, triangle):
        foreign = Ranking([1.0, 0.5], labels=["x", "y"])
        with pytest.raises(InvalidParameterError):
            popularity_bias(foreign, triangle, k=2, exclude_reference=False)

    def test_empty_head_returns_nan(self, triangle):
        empty = Ranking([0.0, 0.0, 0.0], labels=triangle.labels(), reference="A")
        assert math.isnan(popularity_bias(empty, triangle, k=2))


class TestPopularityBiasReport:
    def test_ppr_is_more_biased_than_cyclerank(self, small_enwiki):
        """The quantitative form of the paper's central claim."""
        reference = "Freddie Mercury"
        report = popularity_bias_report(
            {
                "Cyclerank": cyclerank(small_enwiki, reference, max_cycle_length=3),
                "Pers. PageRank": personalized_pagerank(small_enwiki, reference, alpha=0.85),
            },
            small_enwiki,
            k=5,
        )
        assert report.biases["Pers. PageRank"] > report.biases["Cyclerank"]
        assert report.most_biased() == "Pers. PageRank"
        assert report.least_biased() == "Cyclerank"

    def test_text_and_dict_rendering(self, small_enwiki):
        reference = "Pasta"
        report = popularity_bias_report(
            {
                "Cyclerank": cyclerank(small_enwiki, reference, max_cycle_length=3),
                "Pers. PageRank": personalized_pagerank(small_enwiki, reference, alpha=0.3),
            },
            small_enwiki,
            k=5,
        )
        text = report.to_text()
        assert "Cyclerank" in text
        assert "Pers. PageRank" in text
        payload = report.as_dict()
        assert set(payload["biases"]) == {"Cyclerank", "Pers. PageRank"}
        assert payload["k"] == 5

    def test_empty_report_rejected(self, small_enwiki):
        with pytest.raises(InvalidParameterError):
            popularity_bias_report({}, small_enwiki)
