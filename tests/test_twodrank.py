"""Unit tests for :mod:`repro.algorithms.twodrank`."""

from __future__ import annotations

import pytest

from repro.algorithms.cheirank import cheirank, personalized_cheirank
from repro.algorithms.pagerank import pagerank
from repro.algorithms.personalized_pagerank import personalized_pagerank
from repro.algorithms.twodrank import personalized_twodrank, twodrank, two_dimensional_order
from repro.graph.digraph import DirectedGraph
from repro.graph.generators import star_graph


class TestTwoDimensionalOrder:
    def test_order_is_a_permutation(self, community_graph):
        pr = pagerank(community_graph)
        chei = cheirank(community_graph)
        order = two_dimensional_order(pr, chei)
        assert sorted(order) == list(range(len(pr)))

    def test_node_best_in_both_dimensions_comes_first(self):
        # A node that both receives and emits many links dominates both
        # rankings, hence the 2DRank order.
        graph = DirectedGraph()
        for leaf in ["A", "B", "C", "D"]:
            graph.add_edge("center", leaf)
            graph.add_edge(leaf, "center")
        graph.add_edge("A", "B")
        pr = pagerank(graph)
        chei = cheirank(graph)
        order = two_dimensional_order(pr, chei)
        assert graph.label_of(order[0]) == "center"

    def test_mismatched_rankings_rejected(self, triangle, community_graph):
        with pytest.raises(ValueError):
            two_dimensional_order(pagerank(triangle), cheirank(community_graph))

    def test_entry_order_follows_square_rule(self):
        # Build rankings by hand: node 0 has (K=1, K*=3), node 1 has (2, 2),
        # node 2 has (3, 1).  All enter at r = max(K, K*); ties broken by
        # vertical side first (K = r), then horizontal (K* = r).
        from repro.ranking.result import Ranking

        pr = Ranking([3.0, 2.0, 1.0], labels=["n0", "n1", "n2"])  # ranks 1, 2, 3
        chei = Ranking([1.0, 2.0, 3.0], labels=["n0", "n1", "n2"])  # ranks 3, 2, 1
        order = two_dimensional_order(pr, chei)
        # Node 1 enters at r=2 (corner), nodes 0 and 2 at r=3.
        assert order[0] == 1
        # At r=3: node 2 (K=3, the vertical side) precedes node 0 (K*=3).
        assert order[1:] == [2, 0]


class TestTwoDRank:
    def test_produces_ranking_without_meaningful_scores(self, community_graph):
        ranking = twodrank(community_graph)
        assert ranking.algorithm == "2DRank"
        # Scores encode only the position (1/position), so they are a strictly
        # decreasing sequence over the ranking order.
        ordered_scores = [ranking.score_of(node) for node in ranking.ordered_nodes()]
        assert all(a > b for a, b in zip(ordered_scores, ordered_scores[1:]))

    def test_balances_in_and_out_importance(self):
        graph = star_graph(6, reciprocal=False)
        # Add a node that both points to the hub and is pointed at by a leaf,
        # making it decent in both dimensions.
        graph.add_edge(1, 0)
        ranking = twodrank(graph)
        assert len(ranking) == len(graph)

    def test_deterministic(self, community_graph):
        assert twodrank(community_graph).ordered_nodes() == twodrank(community_graph).ordered_nodes()


class TestPersonalizedTwoDRank:
    def test_reference_recorded_and_ranked_first(self, small_enwiki):
        ranking = personalized_twodrank(small_enwiki, "Freddie Mercury", alpha=0.3)
        assert ranking.algorithm == "Personalized 2DRank"
        assert ranking.reference == "Freddie Mercury"
        assert ranking.top_labels(1) == ["Freddie Mercury"]

    def test_consistent_with_component_rankings(self, mixed_graph):
        ranking = personalized_twodrank(mixed_graph, "X", alpha=0.6)
        ppr = personalized_pagerank(mixed_graph, "X", alpha=0.6)
        pchei = personalized_cheirank(mixed_graph, "X", alpha=0.6)
        order = two_dimensional_order(ppr, pchei)
        assert ranking.ordered_nodes() == order
