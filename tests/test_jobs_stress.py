"""Concurrency and end-to-end stress tests for the job/event request path.

The acceptance criteria of the event-driven refactor, asserted end to end:

* submitting with ``"synchronous": false`` returns while a gated multi-query
  comparison is still running (non-blocking submission);
* the REST long-poll cursor and the SSE stream both deliver every per-query
  event exactly once and in ``seq`` order, under concurrent submitters;
* ``DELETE`` on a running comparison stops the remaining groups and yields
  state ``cancelled`` — without poisoning an identical in-flight query that
  a concurrent comparison joined;
* blocking ``wait_for`` results are bit-identical to the streamed path.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.algorithms import registry as algorithm_registry
from repro.datasets.catalog import DatasetCatalog
from repro.platform.gateway import ApiGateway
from repro.platform.restapi import RestApiServer
from repro.platform.tasks import TaskState

from conftest import register_gated_algorithm

NUM_SUBMITTERS = 6


@pytest.fixture
def gated_algorithm():
    started, release = register_gated_algorithm("gated-ppr")
    try:
        yield started, release
    finally:
        release.set()
        algorithm_registry._REGISTRY.pop("gated-ppr", None)


@pytest.fixture
def toy_gateway(community_graph):
    catalog = DatasetCatalog()
    catalog.register_graph("stress", community_graph, description="planted communities")
    with ApiGateway(catalog=catalog, num_workers=2) as gateway:
        yield gateway


@pytest.fixture
def single_worker_gateway(community_graph):
    catalog = DatasetCatalog()
    catalog.register_graph("stress", community_graph, description="planted communities")
    with ApiGateway(catalog=catalog, num_workers=1) as gateway:
        yield gateway


class TestNonBlockingSubmission:
    def test_submission_returns_fast_while_the_comparison_runs(
        self, toy_gateway, gated_algorithm
    ):
        started, release = gated_algorithm
        queries = [
            {"dataset_id": "stress", "algorithm": "gated-ppr", "source": f"c0-n{i}"}
            for i in range(4)
        ]
        # Warm the dataset so the timed submission measures dispatch, not
        # first-use materialisation of the catalog graph.
        toy_gateway.run_queries(
            [{"dataset_id": "stress", "algorithm": "pagerank"}], synchronous=True
        )
        began = time.perf_counter()
        comparison = toy_gateway.run_queries(queries, synchronous=False)
        submit_seconds = time.perf_counter() - began
        assert submit_seconds < 0.05, (
            f"non-blocking submission took {submit_seconds * 1000:.1f}ms"
        )
        assert started.wait(timeout=10.0)
        progress = toy_gateway.get_status(comparison)
        assert not progress.state.is_terminal()
        release.set()
        final = toy_gateway.wait_for(comparison, timeout_seconds=30.0)
        assert final.state is TaskState.COMPLETED
        assert final.completed_queries == 4


class TestCancellation:
    def test_cancel_stops_remaining_groups(self, single_worker_gateway, gated_algorithm):
        started, release = gated_algorithm
        gateway = single_worker_gateway
        # Two distinct (dataset, algorithm, parameters) groups: the gated one
        # occupies the single worker, the pagerank group waits behind it.
        queries = [
            {"dataset_id": "stress", "algorithm": "gated-ppr", "source": "c0-n0"},
            {"dataset_id": "stress", "algorithm": "pagerank"},
        ]
        comparison = gateway.run_queries(queries, synchronous=False)
        assert started.wait(timeout=10.0)
        outcome = gateway.cancel_comparison(comparison)
        assert outcome["cancelled"] is True
        release.set()
        gateway.wait_for(comparison, timeout_seconds=30.0)
        progress = gateway.get_status(comparison)
        assert progress.state is TaskState.CANCELLED
        # The gated group was already executing and ran to completion; the
        # pagerank group hit the dispatch boundary after the cancel.
        assert progress.completed_queries < progress.total_queries
        events = gateway.get_events(comparison)
        assert events[-1]["type"] == "task_done"
        assert events[-1]["state"] == "cancelled"
        assert any(event["type"] == "cancelled" for event in events)

    def test_cancel_of_a_finished_comparison_is_refused(self, toy_gateway):
        comparison = toy_gateway.run_queries(
            [{"dataset_id": "stress", "algorithm": "pagerank"}], synchronous=True
        )
        outcome = toy_gateway.cancel_comparison(comparison)
        assert outcome["cancelled"] is False
        assert outcome["state"] == "completed"

    def test_cancel_does_not_poison_a_joined_identical_query(
        self, toy_gateway, gated_algorithm
    ):
        started, release = gated_algorithm
        query = [{"dataset_id": "stress", "algorithm": "gated-ppr", "source": "c1-n1"}]
        first = toy_gateway.run_queries(query, synchronous=False)
        assert started.wait(timeout=10.0)
        # An identical comparison joins the in-flight computation...
        second = toy_gateway.run_queries(query, synchronous=False)

        def second_joined():
            events = toy_gateway.get_events(second)
            return any(event.get("joined") for event in events)

        deadline = time.monotonic() + 10.0
        while not second_joined() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert second_joined(), "the second comparison never joined the in-flight key"
        # ... so cancelling the first must not abandon the shared key.
        assert toy_gateway.cancel_comparison(first)["cancelled"] is True
        release.set()
        final = toy_gateway.wait_for(second, timeout_seconds=30.0)
        assert final.state is TaskState.COMPLETED
        ranking = toy_gateway.get_rankings(second)[0]
        assert ranking.reference == "c1-n1"


class TestBitIdenticalResults:
    def test_streamed_and_blocking_paths_agree_exactly(self, community_graph):
        queries = [
            {"dataset_id": "stress", "algorithm": "personalized-pagerank", "source": "c0-n0"},
            {"dataset_id": "stress", "algorithm": "personalized-pagerank", "source": "c1-n0"},
            {"dataset_id": "stress", "algorithm": "cyclerank", "source": "c0-n0",
             "parameters": {"k": 3}},
            {"dataset_id": "stress", "algorithm": "pagerank"},
        ]

        def fresh_gateway():
            catalog = DatasetCatalog()
            catalog.register_graph("stress", community_graph, description="communities")
            return ApiGateway(catalog=catalog, num_workers=2)

        with fresh_gateway() as blocking_gateway:
            blocking_id = blocking_gateway.run_queries(queries, synchronous=True)
            blocking_rankings = blocking_gateway.get_rankings(blocking_id)
        with fresh_gateway() as streaming_gateway:
            streamed_id = streaming_gateway.run_queries(queries, synchronous=False)
            events = list(streaming_gateway.stream_events(streamed_id))
            assert events[-1]["type"] == "task_done"
            streamed_rankings = streaming_gateway.get_rankings(streamed_id)
        assert len(blocking_rankings) == len(streamed_rankings) == len(queries)
        for blocking, streamed in zip(blocking_rankings, streamed_rankings):
            assert blocking.algorithm == streamed.algorithm
            assert blocking.top_labels(20) == streamed.top_labels(20)
            assert np.array_equal(blocking.scores, streamed.scores)


# ---------------------------------------------------------------------- #
# REST-level delivery guarantees under concurrent submitters
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def rest_server():
    from repro.graph.generators import reciprocal_communities_graph

    catalog = DatasetCatalog()
    catalog.register_graph(
        "stress",
        reciprocal_communities_graph(4, 8, seed=11, name="communities"),
        description="planted communities",
    )
    gateway = ApiGateway(catalog=catalog, num_workers=4)
    server = RestApiServer(gateway)
    server.start()
    yield server
    server.stop()
    gateway.shutdown()


def _post_json(server, path, payload):
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read().decode("utf-8"))


def _get_json(server, path):
    with urllib.request.urlopen(server.url + path, timeout=35) as response:
        return json.loads(response.read().decode("utf-8"))


def _follow_longpoll(server, comparison_id, collected):
    """Drain a comparison's event stream through the long-poll endpoint."""
    cursor = 0
    while True:
        payload = _get_json(
            server,
            f"/api/comparisons/{comparison_id}/events?after={cursor}&timeout=5",
        )
        events = payload["events"]
        collected.extend(events)
        if events:
            cursor = payload["next_after"]
        if any(event["type"] == "task_done" for event in events):
            return
        if not events and payload["state"] in ("completed", "failed", "cancelled"):
            return


def _follow_sse(server, comparison_id, collected):
    """Drain a comparison's event stream through the SSE endpoint."""
    url = f"{server.url}/api/comparisons/{comparison_id}/events?stream=sse"
    with urllib.request.urlopen(url, timeout=60) as response:
        assert response.headers["Content-Type"].startswith("text/event-stream")
        for raw in response:
            line = raw.decode("utf-8").strip()
            if line.startswith("data: "):
                collected.append(json.loads(line[len("data: "):]))


def _assert_exactly_once_in_order(events, expected_queries):
    seqs = [event["seq"] for event in events]
    assert seqs == sorted(seqs), "events arrived out of seq order"
    assert len(seqs) == len(set(seqs)), "an event was delivered more than once"
    assert events[0]["type"] == "submitted"
    assert events[-1]["type"] == "task_done"
    # Every event of a comparison is stamped with the one trace id the
    # gateway minted at submission, so a stream consumer can join the
    # event log against GET /api/comparisons/<id>/trace.
    trace_ids = {event.get("trace_id") for event in events}
    assert len(trace_ids) == 1, f"events carried mixed trace ids: {trace_ids}"
    (trace_id,) = trace_ids
    assert trace_id, "events were not stamped with a trace id"
    per_query = {}
    for event in events:
        if event["type"] in ("query_started", "query_cached", "query_completed"):
            per_query.setdefault(event["query"], []).append(event["type"])
    assert set(per_query) == set(range(expected_queries))
    for history in per_query.values():
        # Each query either ran (started then completed) or was served from
        # the cache — exactly one terminal per-query event either way.
        assert history in (
            ["query_started", "query_completed"],
            ["query_cached"],
        ), history


class TestConcurrentStreamDelivery:
    @pytest.mark.parametrize("transport", ["longpoll", "sse"])
    def test_every_event_is_delivered_exactly_once_in_seq_order(
        self, rest_server, transport
    ):
        follow = _follow_longpoll if transport == "longpoll" else _follow_sse
        results: dict = {}
        errors: list = []

        def submitter(worker: int):
            try:
                # Distinct sources per worker so every comparison carries a
                # mix of fresh computations (and, across workers, repeats
                # that may resolve as cache hits or in-flight joins).
                queries = [
                    {
                        "dataset_id": "stress",
                        "algorithm": "personalized-pagerank",
                        "source": f"c{worker % 4}-n{offset}",
                    }
                    for offset in range(3)
                ]
                submitted = _post_json(
                    rest_server, "/api/comparisons",
                    {"queries": queries, "synchronous": False},
                )
                comparison_id = submitted["comparison_id"]
                collected: list = []
                follow(rest_server, comparison_id, collected)
                results[worker] = (comparison_id, collected)
            except Exception as exc:  # pragma: no cover - surfaced via errors
                errors.append((worker, exc))

        threads = [
            threading.Thread(target=submitter, args=(worker,))
            for worker in range(NUM_SUBMITTERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, f"submitters failed: {errors}"
        assert len(results) == NUM_SUBMITTERS
        for worker, (comparison_id, events) in results.items():
            _assert_exactly_once_in_order(events, expected_queries=3)
            status = _get_json(rest_server, f"/api/comparisons/{comparison_id}/status")
            assert status["state"] == "completed"

    def test_late_cursor_replays_the_full_log(self, rest_server):
        submitted = _post_json(
            rest_server, "/api/comparisons",
            {
                "queries": [{"dataset_id": "stress", "algorithm": "cheirank"}],
                "synchronous": True,
            },
        )
        comparison_id = submitted["comparison_id"]
        # A reader that arrives after completion must still see the whole
        # history from any cursor, with no blocking.
        collected: list = []
        _follow_longpoll(rest_server, comparison_id, collected)
        _assert_exactly_once_in_order(collected, expected_queries=1)
        tail = _get_json(
            rest_server,
            f"/api/comparisons/{comparison_id}/events?after={collected[-1]['seq']}",
        )
        assert tail["events"] == []
        assert tail["state"] == "completed"


class TestRestNonBlockingSubmission:
    def test_post_returns_in_under_50ms_while_the_comparison_runs(
        self, rest_server, gated_algorithm
    ):
        started, release = gated_algorithm
        # Warm the dataset and the HTTP path outside the timed window.
        _post_json(
            rest_server, "/api/comparisons",
            {"queries": [{"dataset_id": "stress", "algorithm": "pagerank"}],
             "synchronous": True},
        )
        queries = [
            {"dataset_id": "stress", "algorithm": "gated-ppr", "source": f"c2-n{i}"}
            for i in range(4)
        ]
        began = time.perf_counter()
        submitted = _post_json(
            rest_server, "/api/comparisons",
            {"queries": queries, "synchronous": False},
        )
        elapsed = time.perf_counter() - began
        comparison_id = submitted["comparison_id"]
        assert elapsed < 0.05, f"POST took {elapsed * 1000:.1f}ms"
        assert started.wait(timeout=10.0)
        status = _get_json(rest_server, f"/api/comparisons/{comparison_id}/status")
        assert status["state"] in ("pending", "running")
        release.set()
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            status = _get_json(rest_server, f"/api/comparisons/{comparison_id}/status")
            if status["state"] in ("completed", "failed"):
                break
            time.sleep(0.02)
        assert status["state"] == "completed"
        assert status["completed_queries"] == 4


class TestSynchronousCancellation:
    def test_cancel_from_another_thread_stops_a_synchronous_run(
        self, single_worker_gateway, gated_algorithm
    ):
        started, release = gated_algorithm
        gateway = single_worker_gateway
        queries = [
            {"dataset_id": "stress", "algorithm": "gated-ppr", "source": "c3-n0"},
            {"dataset_id": "stress", "algorithm": "cheirank"},
        ]
        outcome: dict = {}

        def runner():
            outcome["id"] = gateway.run_queries(queries, synchronous=True)

        thread = threading.Thread(target=runner)
        thread.start()
        assert started.wait(timeout=10.0)
        # The synchronous runner is blocked inside the first group; find the
        # job through the listing and cancel it mid-run.
        comparisons = gateway.list_comparisons()
        assert len(comparisons) == 1
        assert gateway.cancel_comparison(comparisons[0]["comparison_id"])["cancelled"]
        release.set()
        thread.join(timeout=30)
        assert not thread.is_alive()
        progress = gateway.get_status(outcome["id"])
        assert progress.state is TaskState.CANCELLED
        # The cheirank group was skipped at the dispatch boundary.
        assert progress.completed_queries == 1
        events = gateway.get_events(outcome["id"])
        assert events[-1]["type"] == "task_done"
        assert events[-1]["state"] == "cancelled"


class TestTerminalJobSkipsQueuedGroups:
    def test_groups_queued_behind_a_failed_group_never_execute(
        self, gated_algorithm, community_graph
    ):
        started, _ = gated_algorithm
        catalog = DatasetCatalog()
        catalog.register_graph("stress", community_graph, description="communities")
        catalog.register_file("broken", "/nonexistent/edges.txt", format="edgelist",
                              description="unloadable dataset")
        with ApiGateway(catalog=catalog, num_workers=1) as gateway:
            comparison = gateway.run_queries(
                [
                    {"dataset_id": "broken", "algorithm": "pagerank"},
                    {"dataset_id": "stress", "algorithm": "gated-ppr",
                     "source": "c0-n0"},
                ],
                synchronous=False,
            )
            final = gateway.wait_for(comparison, timeout_seconds=30.0)
            assert final.state is TaskState.FAILED
            # The gated group was queued behind the failing one on the
            # single worker; once the job is terminal it must be skipped at
            # the dispatch boundary, not executed into a dropped event.
            assert not started.wait(timeout=0.3)


class TestSynchronousJoinPersistence:
    def test_sync_run_joining_an_async_twin_returns_with_results_stored(
        self, toy_gateway, gated_algorithm
    ):
        started, release = gated_algorithm
        query = [{"dataset_id": "stress", "algorithm": "gated-ppr", "source": "c2-n2"}]
        async_id = toy_gateway.run_queries(query, synchronous=False)
        assert started.wait(timeout=10.0)
        outcome: dict = {}

        def sync_runner():
            # Joins the async twin's in-flight computation; must not return
            # before the join's done-callback has recorded and persisted.
            outcome["id"] = toy_gateway.run_queries(query, synchronous=True)
            outcome["done"] = toy_gateway.get_task(outcome["id"]).is_done()
            outcome["stored"] = toy_gateway.datastore.has_result(outcome["id"])

        thread = threading.Thread(target=sync_runner)
        thread.start()
        time.sleep(0.1)  # let the sync runner reach the join wait
        release.set()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert outcome["done"], "run_synchronously returned before the task settled"
        assert outcome["stored"], "run_synchronously returned before results persisted"
        toy_gateway.wait_for(async_id, timeout_seconds=30.0)
