"""Unit tests for :mod:`repro.datasets.wikipedia` and :mod:`repro.datasets.seeds`."""

from __future__ import annotations

import pytest

from repro.datasets.seeds import (
    FAKE_NEWS_TOPICS,
    WIKIPEDIA_GLOBAL_HUBS,
    WIKIPEDIA_LANGUAGES,
    WIKIPEDIA_SNAPSHOTS,
    WIKIPEDIA_TOPICS,
    topics_for_language,
)
from repro.datasets.wikipedia import (
    edition_size_factor,
    generate_wikilink_graph,
    snapshot_size_factor,
)
from repro.exceptions import InvalidParameterError
from repro.graph.analysis import reciprocity


class TestSeeds:
    def test_every_language_has_a_fake_news_topic(self):
        for language in WIKIPEDIA_LANGUAGES:
            assert language in FAKE_NEWS_TOPICS

    def test_table_one_topics_present_in_english(self):
        assert "Freddie Mercury" in WIKIPEDIA_TOPICS
        assert "Pasta" in WIKIPEDIA_TOPICS
        assert "Queen (band)" in WIKIPEDIA_TOPICS["Freddie Mercury"].core
        assert "Italian cuisine" in WIKIPEDIA_TOPICS["Pasta"].core

    def test_paper_pagerank_hubs_present(self):
        for hub in ["United States", "Animal", "Arthropod", "Association football", "Insect"]:
            assert hub in WIKIPEDIA_GLOBAL_HUBS

    def test_topic_seed_all_nodes(self):
        seed = WIKIPEDIA_TOPICS["Pasta"]
        nodes = seed.all_nodes()
        assert nodes[0] == "Pasta"
        assert set(seed.core) <= set(nodes)
        assert set(seed.satellites) <= set(nodes)

    def test_topics_for_language_includes_fake_news_and_music(self):
        topics = topics_for_language("de")
        assert "Fake News" in topics
        assert "Freddie Mercury" in topics

    def test_fake_news_references_differ_across_languages(self):
        references = {seed.reference for seed in FAKE_NEWS_TOPICS.values()}
        assert len(references) >= 3  # e.g. "Fake News", "Nepnieuws", "Falska nyheter"

    def test_fake_news_cores_differ_across_languages(self):
        de_core = set(FAKE_NEWS_TOPICS["de"].core)
        it_core = set(FAKE_NEWS_TOPICS["it"].core)
        assert de_core != it_core


class TestScaleFactors:
    def test_english_2018_is_the_largest(self):
        assert edition_size_factor("en") == 1.0
        assert snapshot_size_factor("2018-03-01") == 1.0
        for language in WIKIPEDIA_LANGUAGES:
            assert 0 < edition_size_factor(language) <= 1.0
        for snapshot in WIKIPEDIA_SNAPSHOTS:
            assert 0 < snapshot_size_factor(snapshot) <= 1.0

    def test_unknown_language_or_snapshot_rejected(self):
        with pytest.raises(InvalidParameterError):
            edition_size_factor("xx")
        with pytest.raises(InvalidParameterError):
            snapshot_size_factor("2020-01-01")


class TestGenerator:
    def test_deterministic_per_arguments(self):
        first = generate_wikilink_graph("en", "2018-03-01", num_filler_articles=50, seed=1)
        second = generate_wikilink_graph("en", "2018-03-01", num_filler_articles=50, seed=1)
        third = generate_wikilink_graph("en", "2018-03-01", num_filler_articles=50, seed=2)
        assert first == second
        assert first != third

    def test_graph_name_encodes_language_and_snapshot(self):
        graph = generate_wikilink_graph("fr", "2013-03-01", num_filler_articles=20)
        assert graph.name == "frwiki 2013-03-01"

    def test_contains_hubs_and_topic_nodes(self, small_enwiki):
        for hub in WIKIPEDIA_GLOBAL_HUBS:
            assert small_enwiki.has_label(hub)
        assert small_enwiki.has_label("Freddie Mercury")
        assert small_enwiki.has_label("Queen (band)")
        assert small_enwiki.has_label("Pasta")

    def test_hubs_have_highest_in_degree(self, small_enwiki):
        hub_in_degrees = [small_enwiki.in_degree(hub) for hub in WIKIPEDIA_GLOBAL_HUBS[:5]]
        in_degrees = small_enwiki.in_degrees()
        median = sorted(in_degrees)[len(in_degrees) // 2]
        assert min(hub_in_degrees) > 3 * max(median, 1)

    def test_topic_core_is_reciprocated(self, small_enwiki):
        assert small_enwiki.has_edge("Freddie Mercury", "Queen (band)")
        assert small_enwiki.has_edge("Queen (band)", "Freddie Mercury")

    def test_satellites_not_linking_back_to_reference(self, small_enwiki):
        assert small_enwiki.has_edge("Freddie Mercury", "HIV/AIDS")
        assert not small_enwiki.has_edge("HIV/AIDS", "Freddie Mercury")

    def test_older_snapshots_are_smaller(self):
        new = generate_wikilink_graph("en", "2018-03-01")
        old = generate_wikilink_graph("en", "2003-03-01")
        assert old.number_of_nodes() < new.number_of_nodes()
        assert old.number_of_edges() < new.number_of_edges()

    def test_smaller_editions_are_smaller(self):
        english = generate_wikilink_graph("en", "2018-03-01")
        swedish = generate_wikilink_graph("sv", "2018-03-01")
        assert swedish.number_of_nodes() < english.number_of_nodes()

    def test_language_editions_have_localised_fake_news(self):
        italian = generate_wikilink_graph("it", "2018-03-01", num_filler_articles=30)
        assert italian.has_label("Bufala")
        assert italian.has_label("Disinformazione")
        dutch = generate_wikilink_graph("nl", "2018-03-01", num_filler_articles=30)
        assert dutch.has_label("Nepnieuws")

    def test_no_self_loops(self, small_enwiki):
        assert small_enwiki.self_loops() == []

    def test_reciprocity_is_moderate(self, small_enwiki):
        # Wikilink graphs are mostly one-directional with a reciprocated
        # topical core; the synthetic stand-in should not be at either extreme.
        value = reciprocity(small_enwiki)
        assert 0.02 < value < 0.8

    def test_invalid_arguments_rejected(self):
        with pytest.raises(InvalidParameterError):
            generate_wikilink_graph("xx", "2018-03-01")
        with pytest.raises(InvalidParameterError):
            generate_wikilink_graph("en", "1999-01-01")
        with pytest.raises(InvalidParameterError):
            generate_wikilink_graph("en", "2018-03-01", num_filler_articles=-5)
