"""Unit tests for :mod:`repro.io.pajek`."""

from __future__ import annotations

import io

import pytest

from repro.exceptions import GraphFormatError
from repro.io.pajek import format_pajek, parse_pajek, read_pajek, write_pajek


class TestParsing:
    def test_vertices_and_arcs(self):
        lines = [
            "*Vertices 3",
            '1 "A"',
            '2 "B"',
            '3 "C"',
            "*Arcs",
            "1 2",
            "2 3",
        ]
        graph, _ = parse_pajek(lines)
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 2
        assert graph.has_edge("A", "B")

    def test_edges_section_is_bidirectional(self):
        lines = ["*Vertices 2", '1 "A"', '2 "B"', "*Edges", "1 2"]
        graph, _ = parse_pajek(lines)
        assert graph.has_edge("A", "B")
        assert graph.has_edge("B", "A")

    def test_labels_with_spaces(self):
        lines = ["*Vertices 2", '1 "United States"', '2 "New York"', "*Arcs", "2 1"]
        graph, _ = parse_pajek(lines)
        assert graph.has_label("United States")
        assert graph.has_edge("New York", "United States")

    def test_vertices_without_labels_get_default_names(self):
        lines = ["*Vertices 2", "1", "2", "*Arcs", "1 2"]
        graph, _ = parse_pajek(lines)
        assert graph.has_label("v1")
        assert graph.has_label("v2")

    def test_implicit_vertices_in_arcs(self):
        lines = ["*Vertices 2", "*Arcs", "1 2"]
        graph, _ = parse_pajek(lines)
        assert graph.number_of_nodes() == 2
        assert graph.number_of_edges() == 1

    def test_declared_isolated_vertices_padded(self):
        lines = ["*Vertices 4", '1 "A"', "*Arcs"]
        graph, _ = parse_pajek(lines)
        assert graph.number_of_nodes() == 4

    def test_comments_skipped(self):
        lines = ["% a comment", "*Vertices 1", '1 "A"', "*Arcs"]
        graph, _ = parse_pajek(lines)
        assert graph.number_of_nodes() == 1

    def test_case_insensitive_section_names(self):
        lines = ["*VERTICES 2", '1 "A"', '2 "B"', "*arcs", "1 2"]
        graph, _ = parse_pajek(lines)
        assert graph.number_of_edges() == 1

    def test_unknown_section_fails(self):
        with pytest.raises(GraphFormatError):
            parse_pajek(["*Vertices 1", '1 "A"', "*Matrix", "1"])

    def test_data_before_section_fails(self):
        with pytest.raises(GraphFormatError):
            parse_pajek(["1 2"])

    def test_invalid_vertex_count_fails(self):
        with pytest.raises(GraphFormatError):
            parse_pajek(["*Vertices three"])

    def test_non_integer_endpoint_fails(self):
        with pytest.raises(GraphFormatError):
            parse_pajek(["*Vertices 2", '1 "A"', '2 "B"', "*Arcs", "1 B"])

    def test_arc_line_with_single_token_fails(self):
        with pytest.raises(GraphFormatError):
            parse_pajek(["*Vertices 1", '1 "A"', "*Arcs", "1"])


class TestRoundTrip:
    def test_format_and_reparse(self, two_triangles):
        text = format_pajek(two_triangles)
        reparsed, _ = parse_pajek(text.splitlines())
        assert reparsed.number_of_edges() == two_triangles.number_of_edges()
        assert sorted(reparsed.labels()) == sorted(two_triangles.labels())

    def test_file_round_trip(self, tmp_path, mixed_graph):
        path = tmp_path / "graph.net"
        write_pajek(mixed_graph, path)
        loaded = read_pajek(path)
        assert loaded.number_of_edges() == mixed_graph.number_of_edges()
        assert loaded.name == "graph"

    def test_stream_round_trip(self, triangle):
        buffer = io.StringIO()
        write_pajek(triangle, buffer)
        buffer.seek(0)
        loaded = read_pajek(buffer, name="stream")
        assert loaded.number_of_edges() == 3

    def test_quotes_in_labels_sanitised(self, tmp_path):
        from repro.graph.digraph import DirectedGraph

        graph = DirectedGraph()
        graph.add_edge('The "Best" Book', "Other")
        path = tmp_path / "quotes.net"
        write_pajek(graph, path)
        loaded = read_pajek(path)
        assert loaded.number_of_edges() == 1
