"""Unit tests for the extension algorithms: HITS and Katz (global + personalized)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.hits import hits, personalized_hits
from repro.algorithms.katz import katz_centrality, personalized_katz
from repro.algorithms.registry import available_algorithms, run_algorithm
from repro.exceptions import ConvergenceError, InvalidParameterError, NodeNotFoundError
from repro.graph.digraph import DirectedGraph
from repro.graph.generators import cycle_graph, star_graph


class TestHits:
    def test_scores_form_distribution(self, community_graph):
        ranking = hits(community_graph)
        assert ranking.total() == pytest.approx(1.0)
        assert all(score >= 0 for score in ranking.scores)

    def test_star_authority_and_hub_sides(self):
        graph = star_graph(6, reciprocal=False)  # hub 0 points at every leaf
        authorities = hits(graph, scores="authority")
        hubs = hits(graph, scores="hub")
        # Node 0 emits everything: best hub, worthless authority.
        assert hubs.rank_of(0) == 1
        assert authorities.score_of(0) == pytest.approx(0.0, abs=1e-9)
        leaf_scores = [authorities.score_of(leaf) for leaf in range(1, 7)]
        assert max(leaf_scores) == pytest.approx(min(leaf_scores))

    def test_symmetric_cycle_is_uniform(self):
        ranking = hits(cycle_graph(6))
        assert np.allclose(ranking.scores, 1 / 6, atol=1e-6)

    def test_invalid_scores_argument(self, triangle):
        with pytest.raises(ValueError):
            hits(triangle, scores="authority-and-hub")

    def test_provenance(self, triangle):
        ranking = hits(triangle)
        assert ranking.algorithm == "HITS"
        assert ranking.parameters["iterations"] >= 1

    def test_empty_graph(self):
        ranking = hits(DirectedGraph())
        assert len(ranking) == 0


class TestPersonalizedHits:
    def test_reference_neighbourhood_present_in_head(self, small_enwiki):
        from repro.datasets.seeds import WIKIPEDIA_TOPICS

        ranking = personalized_hits(small_enwiki, "Freddie Mercury", alpha=0.3)
        top = ranking.top_labels(8)
        assert "Freddie Mercury" in top
        # Rooted HITS rewards the authorities of the query's neighbourhood, so
        # the head must contain topical pages (satellites count), not only
        # global hubs.
        topical = set(WIKIPEDIA_TOPICS["Freddie Mercury"].all_nodes())
        assert topical & set(top) - {"Freddie Mercury"}

    def test_alpha_zero_concentrates_authority_on_reference(self, community_graph):
        ranking = personalized_hits(community_graph, 0, alpha=0.0)
        assert ranking.rank_of(0) == 1

    def test_differs_from_global_hits(self, small_enwiki):
        rooted = personalized_hits(small_enwiki, "Pasta", alpha=0.3)
        unrooted = hits(small_enwiki)
        assert rooted.top_labels(5) != unrooted.top_labels(5)

    def test_reference_recorded(self, community_graph):
        ranking = personalized_hits(community_graph, "c0-n0", alpha=0.5)
        assert ranking.algorithm == "Personalized HITS"
        assert ranking.reference == "c0-n0"

    def test_invalid_parameters(self, triangle):
        with pytest.raises(InvalidParameterError):
            personalized_hits(triangle, "A", alpha=1.5)
        with pytest.raises(NodeNotFoundError):
            personalized_hits(triangle, "missing")
        with pytest.raises(ValueError):
            personalized_hits(triangle, "A", scores="both")


class TestKatzCentrality:
    def test_scores_form_distribution(self, community_graph):
        ranking = katz_centrality(community_graph, beta=0.01)
        assert ranking.total() == pytest.approx(1.0)
        assert all(score >= 0 for score in ranking.scores)

    def test_high_in_degree_wins(self):
        graph = star_graph(8, reciprocal=False)
        # Everything points at the leaves? No: hub points at leaves, so leaves
        # have in-degree 1 and the hub 0; reverse the star to make a sink hub.
        sink_star = graph.transpose()
        ranking = katz_centrality(sink_star, beta=0.05)
        assert ranking.rank_of(0) == 1

    def test_symmetric_cycle_is_uniform(self):
        ranking = katz_centrality(cycle_graph(5), beta=0.1)
        assert np.allclose(ranking.scores, 0.2, atol=1e-9)

    def test_divergent_beta_detected(self):
        from repro.graph.generators import complete_graph

        with pytest.raises(ConvergenceError):
            katz_centrality(complete_graph(6), beta=0.5)

    def test_invalid_beta(self, triangle):
        with pytest.raises(InvalidParameterError):
            katz_centrality(triangle, beta=0.0)
        with pytest.raises(InvalidParameterError):
            katz_centrality(triangle, beta=-0.1)

    def test_empty_graph(self):
        assert len(katz_centrality(DirectedGraph())) == 0


class TestPersonalizedKatz:
    def test_reference_ranks_first(self, community_graph):
        ranking = personalized_katz(community_graph, "c0-n0", beta=0.01)
        assert ranking.top_labels(1) == ["c0-n0"]

    def test_scores_decay_with_distance_on_a_path(self):
        from repro.graph.generators import path_graph

        graph = path_graph(5)
        ranking = personalized_katz(graph, 0, beta=0.2)
        scores = ranking.scores
        assert scores[1] > scores[2] > scores[3] > scores[4]

    def test_unreachable_nodes_score_zero(self):
        graph = DirectedGraph()
        graph.add_edge("A", "B")
        graph.add_node("island")
        ranking = personalized_katz(graph, "A", beta=0.2)
        assert ranking.score_of("island") == 0.0

    def test_counts_forward_walks_not_cycles(self, small_enwiki):
        # Unlike CycleRank, a node linked from the reference scores even if it
        # never links back (HIV/AIDS is a satellite of Freddie Mercury).
        ranking = personalized_katz(small_enwiki, "Freddie Mercury", beta=0.05)
        assert ranking.score_of("HIV/AIDS") > 0.0

    def test_reference_recorded(self, community_graph):
        ranking = personalized_katz(community_graph, "c1-n0", beta=0.01)
        assert ranking.algorithm == "Personalized Katz"
        assert ranking.reference == "c1-n0"

    def test_unknown_reference_fails(self, triangle):
        with pytest.raises(NodeNotFoundError):
            personalized_katz(triangle, "missing")


class TestRegistryIntegration:
    def test_extensions_registered(self):
        names = available_algorithms()
        assert {"hits", "personalized-hits", "katz", "personalized-katz"} <= set(names)

    def test_run_through_registry(self, community_graph):
        authority = run_algorithm("hits", community_graph, parameters={"scores": "authority"})
        assert authority.algorithm == "HITS"
        rooted = run_algorithm(
            "personalized-katz", community_graph, source="c0-n0", parameters={"beta": 0.01}
        )
        assert rooted.top_labels(1) == ["c0-n0"]

    def test_parameter_validation_through_registry(self, community_graph):
        with pytest.raises(InvalidParameterError):
            run_algorithm("hits", community_graph, parameters={"scores": "neither"})
