"""Unit tests for :mod:`repro.algorithms.pagerank`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.pagerank import pagerank, power_iteration, transition_matrix
from repro.exceptions import ConvergenceError, InvalidParameterError
from repro.graph.digraph import DirectedGraph
from repro.graph.generators import complete_graph, cycle_graph, star_graph


class TestTransitionMatrix:
    def test_rows_are_stochastic_for_non_dangling_nodes(self, mixed_graph):
        matrix = transition_matrix(mixed_graph.to_csr())
        row_sums = np.asarray(matrix.sum(axis=1)).ravel()
        out_degrees = np.asarray(mixed_graph.out_degrees())
        for node, degree in enumerate(out_degrees):
            if degree > 0:
                assert row_sums[node] == pytest.approx(1.0)
            else:
                assert row_sums[node] == pytest.approx(0.0)


class TestPageRank:
    def test_scores_sum_to_one(self, mixed_graph):
        ranking = pagerank(mixed_graph)
        assert ranking.total() == pytest.approx(1.0)
        assert all(score >= 0 for score in ranking.scores)

    def test_uniform_on_symmetric_cycle(self):
        ranking = pagerank(cycle_graph(8))
        assert np.allclose(ranking.scores, 1 / 8, atol=1e-8)

    def test_uniform_on_complete_graph(self):
        ranking = pagerank(complete_graph(5))
        assert np.allclose(ranking.scores, 0.2, atol=1e-8)

    def test_hub_of_star_outranks_leaves(self):
        ranking = pagerank(star_graph(10, reciprocal=True))
        hub_score = ranking.score_of(0)
        assert all(hub_score > ranking.score_of(leaf) for leaf in range(1, 11))
        assert ranking.rank_of(0) == 1

    def test_dangling_nodes_handled(self):
        graph = DirectedGraph()
        graph.add_edge("A", "B")  # B has no outgoing edges
        ranking = pagerank(graph)
        assert ranking.total() == pytest.approx(1.0)
        assert ranking.score_of("B") > ranking.score_of("A")

    def test_alpha_zero_gives_uniform_scores(self, mixed_graph):
        ranking = pagerank(mixed_graph, alpha=0.0)
        assert np.allclose(ranking.scores, 1 / len(ranking), atol=1e-10)

    def test_higher_in_degree_wins_with_default_alpha(self, small_enwiki):
        ranking = pagerank(small_enwiki)
        top_label = ranking.top_labels(1)[0]
        in_degrees = small_enwiki.in_degrees()
        top_in_degree = small_enwiki.in_degree(top_label)
        assert top_in_degree >= 0.5 * max(in_degrees)

    def test_empty_graph(self):
        ranking = pagerank(DirectedGraph())
        assert len(ranking) == 0
        assert ranking.total() == 0.0

    def test_single_node_graph(self):
        graph = DirectedGraph()
        graph.add_node("only")
        ranking = pagerank(graph)
        assert ranking.score_of("only") == pytest.approx(1.0)

    def test_invalid_alpha_rejected(self, triangle):
        with pytest.raises(InvalidParameterError):
            pagerank(triangle, alpha=1.5)
        with pytest.raises(InvalidParameterError):
            pagerank(triangle, alpha=-0.1)

    def test_provenance_recorded(self, triangle):
        ranking = pagerank(triangle, alpha=0.85)
        assert ranking.algorithm == "PageRank"
        assert ranking.parameters["alpha"] == 0.85
        assert ranking.parameters["iterations"] >= 1
        assert ranking.graph_name == "triangle"
        assert ranking.reference is None

    def test_deterministic_across_runs(self, community_graph):
        first = pagerank(community_graph)
        second = pagerank(community_graph)
        assert np.array_equal(first.scores, second.scores)


class TestPowerIteration:
    def test_respects_custom_teleport(self, triangle):
        csr = triangle.to_csr()
        teleport = np.array([1.0, 0.0, 0.0])
        scores, _ = power_iteration(csr, alpha=0.5, teleport=teleport)
        assert scores[0] == max(scores)

    def test_teleport_shape_mismatch_fails(self, triangle):
        with pytest.raises(ValueError):
            power_iteration(triangle.to_csr(), alpha=0.5, teleport=np.array([1.0, 0.0]))

    def test_negative_teleport_fails(self, triangle):
        with pytest.raises(ValueError):
            power_iteration(
                triangle.to_csr(), alpha=0.5, teleport=np.array([1.0, -1.0, 0.0])
            )

    def test_zero_mass_teleport_fails(self, triangle):
        with pytest.raises(ValueError):
            power_iteration(triangle.to_csr(), alpha=0.5, teleport=np.zeros(3))

    def test_non_convergence_raises(self, community_graph):
        with pytest.raises(ConvergenceError) as excinfo:
            power_iteration(community_graph.to_csr(), alpha=0.99, tol=1e-16, max_iter=2)
        assert excinfo.value.iterations == 2
        assert excinfo.value.residual is not None

    def test_iteration_count_reported(self, triangle):
        _, iterations = power_iteration(triangle.to_csr(), alpha=0.85)
        assert iterations >= 1
