"""Unit and integration tests for the job/event subsystem (:mod:`repro.platform.jobs`).

Covers the record/registry mechanics in isolation (monotonic ``seq``,
blocking cursor reads, callback subscription, terminal-state projection,
bounded eviction) and the scheduler integration: every submission emits the
typed lifecycle events in order, non-blocking submission returns while the
comparison runs, cooperative cancellation stops remaining groups, and the
blocking entry points (``wait_for``, ``synchronous=True``) — now implemented
on the event cursor — return results bit-identical to the event-driven path.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.algorithms import registry as algorithm_registry
from repro.algorithms.base import Algorithm, AlgorithmSpec
from repro.algorithms.personalized_pagerank import personalized_pagerank
from repro.datasets.catalog import DatasetCatalog
from repro.exceptions import TaskNotFoundError
from repro.platform.gateway import ApiGateway
from repro.platform.jobs import (
    JobEvent,
    JobRecord,
    JobRegistry,
    JobState,
    QueryState,
)
from repro.platform.tasks import TaskState


# ---------------------------------------------------------------------- #
# JobRecord unit tests
# ---------------------------------------------------------------------- #
class TestJobRecord:
    def test_sequence_numbers_are_monotonic_from_one(self):
        record = JobRecord("job-1", total_queries=2)
        first = record.append("submitted", total_queries=2)
        second = record.append("query_started", query=0)
        assert (first.seq, second.seq) == (1, 2)
        assert [event.seq for event in record.events()] == [1, 2]

    def test_unknown_event_type_is_rejected(self):
        record = JobRecord("job-1", total_queries=1)
        with pytest.raises(ValueError, match="unknown job event type"):
            record.append("telemetry")

    def test_projection_tracks_query_states_and_completion(self):
        record = JobRecord("job-1", total_queries=3)
        record.append("submitted", total_queries=3)
        assert record.state is JobState.QUEUED
        record.append("query_started", query=0)
        assert record.state is JobState.RUNNING
        record.append("query_completed", query=0)
        record.append("query_cached", query=1)
        assert record.completed_queries == 2
        assert record.query_states()[:2] == [QueryState.COMPLETED, QueryState.CACHED]
        assert record.query_states()[2] is QueryState.PENDING

    def test_finish_emits_task_done_exactly_once(self):
        record = JobRecord("job-1", total_queries=1)
        assert record.finish(JobState.DONE) is True
        assert record.finish(JobState.DONE) is False
        assert [event.type for event in record.events()] == ["task_done"]
        assert record.state is JobState.DONE

    def test_appends_after_terminal_state_are_dropped(self):
        record = JobRecord("job-1", total_queries=1)
        record.finish(JobState.DONE)
        assert record.append("query_completed", query=0) is None
        assert record.last_seq == 1

    def test_finish_requires_a_terminal_state(self):
        record = JobRecord("job-1", total_queries=1)
        with pytest.raises(ValueError):
            record.finish(JobState.RUNNING)

    def test_cancelled_finish_settles_unsettled_queries(self):
        record = JobRecord("job-1", total_queries=2)
        record.append("query_completed", query=0)
        record.finish(JobState.CANCELLED)
        assert record.query_states() == [QueryState.COMPLETED, QueryState.CANCELLED]

    def test_request_cancel_is_idempotent_and_refused_after_terminal(self):
        record = JobRecord("job-1", total_queries=1)
        assert record.request_cancel() is True
        assert record.request_cancel() is False
        assert [event.type for event in record.events()] == ["cancelled"]
        done = JobRecord("job-2", total_queries=1)
        done.finish(JobState.DONE)
        assert done.request_cancel() is False

    def test_failed_projection_records_the_error(self):
        record = JobRecord("job-1", total_queries=1)
        record.append("query_failed", query=0, error="node not found")
        record.finish(JobState.FAILED, error="node not found")
        assert record.state is JobState.FAILED
        assert record.error == "node not found"

    def test_event_as_dict_is_the_wire_format(self):
        record = JobRecord("job-1", total_queries=1)
        event = record.append("query_started", query=0, algorithm="pagerank")
        payload = event.as_dict()
        assert payload["seq"] == 1
        assert payload["type"] == "query_started"
        assert payload["query"] == 0
        assert payload["algorithm"] == "pagerank"
        assert isinstance(payload["timestamp"], float)


class TestEventCursor:
    def test_events_since_returns_existing_events_immediately(self):
        record = JobRecord("job-1", total_queries=1)
        record.append("submitted", total_queries=1)
        record.append("query_started", query=0)
        events = record.events_since(0, timeout=0.0)
        assert [event.seq for event in events] == [1, 2]
        assert record.events_since(2, timeout=0.01) == []

    def test_events_since_rejects_negative_cursor(self):
        record = JobRecord("job-1", total_queries=1)
        with pytest.raises(ValueError):
            record.events_since(-1)

    def test_events_since_blocks_until_an_event_arrives(self):
        record = JobRecord("job-1", total_queries=1)

        def appender():
            time.sleep(0.05)
            record.append("submitted", total_queries=1)

        thread = threading.Thread(target=appender)
        started = time.monotonic()
        thread.start()
        events = record.events_since(0, timeout=5.0)
        elapsed = time.monotonic() - started
        thread.join()
        assert [event.type for event in events] == ["submitted"]
        assert 0.03 <= elapsed < 5.0

    def test_events_since_returns_immediately_on_terminal_jobs(self):
        record = JobRecord("job-1", total_queries=1)
        record.finish(JobState.DONE)
        started = time.monotonic()
        # A cursor already past the end would otherwise block for the full
        # timeout; terminal jobs must never make a reader wait.
        assert record.events_since(record.last_seq, timeout=5.0) == []
        assert time.monotonic() - started < 1.0

    def test_wait_done_times_out_and_succeeds(self):
        record = JobRecord("job-1", total_queries=1)
        assert record.wait_done(0.02) is False

        def finisher():
            time.sleep(0.05)
            record.finish(JobState.DONE)

        thread = threading.Thread(target=finisher)
        thread.start()
        assert record.wait_done(5.0) is True
        thread.join()

    def test_subscription_sees_every_event_in_order(self):
        record = JobRecord("job-1", total_queries=2)
        seen: list[JobEvent] = []
        unsubscribe = record.subscribe(seen.append)
        record.append("submitted", total_queries=2)
        record.append("query_started", query=0)
        unsubscribe()
        record.append("query_completed", query=0)
        assert [event.seq for event in seen] == [1, 2]


# ---------------------------------------------------------------------- #
# JobRegistry unit tests
# ---------------------------------------------------------------------- #
class TestJobRegistry:
    def test_create_find_get_and_contains(self):
        registry = JobRegistry()
        record = registry.create("job-1", total_queries=2)
        assert registry.find("job-1") is record
        assert registry.get("job-1") is record
        assert "job-1" in registry
        assert registry.find("missing") is None
        with pytest.raises(TaskNotFoundError):
            registry.get("missing")

    def test_rejects_a_nonpositive_bound(self):
        with pytest.raises(ValueError):
            JobRegistry(max_finished_jobs=0)

    def test_terminal_jobs_are_evicted_beyond_the_bound(self):
        registry = JobRegistry(max_finished_jobs=2)
        for index in range(4):
            registry.create(f"done-{index}", total_queries=1).finish(JobState.DONE)
        registry.create("live", total_queries=1)
        assert registry.find("done-0") is None
        assert registry.find("done-1") is None
        assert registry.find("done-2") is not None
        assert registry.find("done-3") is not None
        assert registry.stats()["evicted"] == 2

    def test_active_jobs_are_never_evicted(self):
        registry = JobRegistry(max_finished_jobs=1)
        active = [registry.create(f"active-{index}", total_queries=1) for index in range(5)]
        registry.create("one-more", total_queries=1)
        for record in active:
            assert registry.find(record.job_id) is record

    def test_stats_reports_states(self):
        registry = JobRegistry()
        registry.create("running", total_queries=1).append("query_started", query=0)
        registry.create("done", total_queries=1).finish(JobState.DONE)
        stats = registry.stats()
        assert stats["jobs"] == 2
        assert stats["by_state"] == {"running": 1, "done": 1}


# ---------------------------------------------------------------------- #
# scheduler integration
# ---------------------------------------------------------------------- #
@pytest.fixture
def toy_gateway(two_triangles):
    catalog = DatasetCatalog()
    catalog.register_graph("toy", two_triangles, description="two triangles")
    with ApiGateway(catalog=catalog, num_workers=2) as gateway:
        yield gateway


def _event_types(events):
    return [event["type"] for event in events]


class TestSchedulerEvents:
    def test_lifecycle_events_are_emitted_in_order(self, toy_gateway):
        queries = [
            {"dataset_id": "toy", "algorithm": "personalized-pagerank", "source": "R"},
            {"dataset_id": "toy", "algorithm": "personalized-pagerank", "source": "A"},
        ]
        comparison = toy_gateway.run_queries(queries, synchronous=False)
        toy_gateway.wait_for(comparison, timeout_seconds=30.0)
        events = toy_gateway.get_events(comparison)
        assert [event["seq"] for event in events] == list(range(1, len(events) + 1))
        types = _event_types(events)
        assert types[0] == "submitted"
        assert types[-1] == "task_done"
        assert types.count("query_started") == 2
        assert types.count("query_completed") == 2
        started_at = {e["query"]: i for i, e in enumerate(events) if e["type"] == "query_started"}
        for position, event in enumerate(events):
            if event["type"] == "query_completed":
                assert started_at[event["query"]] < position

    def test_synchronous_run_emits_the_same_event_shape(self, toy_gateway):
        queries = [
            {"dataset_id": "toy", "algorithm": "personalized-pagerank", "source": "B"}
        ]
        comparison = toy_gateway.run_queries(queries, synchronous=True)
        types = _event_types(toy_gateway.get_events(comparison))
        assert types[0] == "submitted"
        assert "query_started" in types
        assert "query_completed" in types
        assert types[-1] == "task_done"

    def test_cache_hits_emit_query_cached(self, toy_gateway):
        query = [{"dataset_id": "toy", "algorithm": "personalized-pagerank", "source": "R"}]
        toy_gateway.run_queries(query, synchronous=True)
        second = toy_gateway.run_queries(query, synchronous=True)
        types = _event_types(toy_gateway.get_events(second))
        assert "query_cached" in types
        assert "query_started" not in types

    def test_failed_query_emits_query_failed_and_failed_task_done(self, toy_gateway):
        query = [{"dataset_id": "toy", "algorithm": "cyclerank", "source": "ghost"}]
        comparison = toy_gateway.run_queries(query, synchronous=False)
        toy_gateway.wait_for(comparison, timeout_seconds=30.0)
        events = toy_gateway.get_events(comparison)
        types = _event_types(events)
        assert "query_failed" in types
        assert events[-1]["type"] == "task_done"
        assert events[-1]["state"] == "failed"
        assert toy_gateway.get_status(comparison).state is TaskState.FAILED

    def test_task_done_is_emitted_after_results_are_stored(self, toy_gateway):
        query = [{"dataset_id": "toy", "algorithm": "pagerank"}]
        comparison = toy_gateway.run_queries(query, synchronous=False)
        # Block directly on the cursor until task_done, then read the result:
        # the ordering contract says it must already be persisted.
        for event in toy_gateway.stream_events(comparison):
            if event["type"] == "task_done":
                assert toy_gateway.datastore.has_result(comparison)
        assert toy_gateway.status.stored_result(comparison)["state"] == "completed"

    def test_list_comparisons_reports_jobs(self, toy_gateway):
        assert toy_gateway.list_comparisons() == []
        comparison = toy_gateway.run_queries(
            [{"dataset_id": "toy", "algorithm": "pagerank"}], synchronous=True
        )
        rows = toy_gateway.list_comparisons()
        assert len(rows) == 1
        assert rows[0]["comparison_id"] == comparison
        assert rows[0]["state"] == "done"
        assert rows[0]["completed_queries"] == rows[0]["total_queries"] == 1

    def test_events_of_unknown_comparison_raise(self, toy_gateway):
        with pytest.raises(TaskNotFoundError):
            toy_gateway.get_events("no-such-comparison")

    def test_platform_stats_contains_the_job_registry_section(self, toy_gateway):
        toy_gateway.run_queries(
            [{"dataset_id": "toy", "algorithm": "pagerank"}], synchronous=True
        )
        stats = toy_gateway.get_platform_stats()
        assert stats["jobs"]["jobs"] == 1
        assert stats["jobs"]["by_state"] == {"done": 1}


class TestProjectedCompletionCounter:
    def test_completion_events_carry_the_jobs_own_monotonic_count(self):
        # The record stamps its projected counter into each completion
        # event under its lock, so exactly one event reports the full count
        # even when callers race between recording and appending.
        record = JobRecord("job-1", total_queries=3)
        record.append("query_completed", query=0, completed_queries=99)
        record.append("query_cached", query=1, completed_queries=99)
        record.append("query_completed", query=2, completed_queries=99)
        counts = [
            event.payload["completed_queries"]
            for event in record.events()
            if event.type in ("query_completed", "query_cached")
        ]
        assert counts == [1, 2, 3]
