"""Unit tests for :mod:`repro.graph.digraph`."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError, NodeNotFoundError
from repro.graph.digraph import DirectedGraph, Edge


class TestNodeCreation:
    def test_add_node_returns_dense_ids(self):
        graph = DirectedGraph()
        assert graph.add_node("A") == 0
        assert graph.add_node("B") == 1
        assert graph.add_node() == 2
        assert graph.number_of_nodes() == 3

    def test_add_node_with_existing_label_is_idempotent(self):
        graph = DirectedGraph()
        first = graph.add_node("A")
        second = graph.add_node("A")
        assert first == second
        assert graph.number_of_nodes() == 1

    def test_add_nodes_bulk(self):
        graph = DirectedGraph()
        ids = graph.add_nodes(5)
        assert ids == [0, 1, 2, 3, 4]
        assert graph.number_of_nodes() == 5

    def test_add_negative_number_of_nodes_fails(self):
        graph = DirectedGraph()
        with pytest.raises(GraphError):
            graph.add_nodes(-1)

    def test_unlabelled_node_gets_synthetic_display_label(self):
        graph = DirectedGraph()
        node = graph.add_node()
        assert graph.label_of(node) == f"#{node}"
        assert graph.raw_label_of(node) is None


class TestEdges:
    def test_add_edge_by_label_creates_nodes(self):
        graph = DirectedGraph()
        assert graph.add_edge("A", "B") is True
        assert graph.number_of_nodes() == 2
        assert graph.number_of_edges() == 1
        assert graph.has_edge("A", "B")
        assert not graph.has_edge("B", "A")

    def test_duplicate_edge_is_not_counted_twice(self):
        graph = DirectedGraph()
        assert graph.add_edge("A", "B") is True
        assert graph.add_edge("A", "B") is False
        assert graph.number_of_edges() == 1

    def test_add_edge_by_unknown_id_fails(self):
        graph = DirectedGraph()
        graph.add_node("A")
        with pytest.raises(NodeNotFoundError):
            graph.add_edge(0, 5)

    def test_remove_edge(self):
        graph = DirectedGraph()
        graph.add_edge("A", "B")
        assert graph.remove_edge("A", "B") is True
        assert graph.number_of_edges() == 0
        assert graph.remove_edge("A", "B") is False

    def test_add_edges_from_returns_inserted_count(self):
        graph = DirectedGraph()
        inserted = graph.add_edges_from([("A", "B"), ("B", "C"), ("A", "B")])
        assert inserted == 2

    def test_self_loop_allowed_and_detected(self):
        graph = DirectedGraph()
        graph.add_edge("A", "A")
        assert graph.has_self_loop("A")
        assert graph.self_loops() == [0]

    def test_edges_iteration_is_sorted_and_complete(self, triangle):
        edges = list(triangle.edges())
        assert all(isinstance(edge, Edge) for edge in edges)
        assert len(edges) == 3
        assert triangle.edge_list() == sorted(triangle.edge_list())


class TestResolution:
    def test_resolve_label_and_id(self):
        graph = DirectedGraph()
        node = graph.add_node("A")
        assert graph.resolve("A") == node
        assert graph.resolve(node) == node

    def test_resolve_unknown_label_fails(self):
        graph = DirectedGraph()
        with pytest.raises(NodeNotFoundError):
            graph.resolve("missing")

    def test_resolve_out_of_range_id_fails(self):
        graph = DirectedGraph()
        graph.add_node("A")
        with pytest.raises(NodeNotFoundError):
            graph.resolve(3)

    def test_resolve_bool_is_rejected(self):
        graph = DirectedGraph()
        graph.add_node("A")
        with pytest.raises(NodeNotFoundError):
            graph.resolve(True)

    def test_node_for_label_and_has_label(self):
        graph = DirectedGraph()
        graph.add_node("A")
        assert graph.has_label("A")
        assert not graph.has_label("B")
        assert graph.node_for_label("A") == 0
        with pytest.raises(NodeNotFoundError):
            graph.node_for_label("B")

    def test_set_label(self):
        graph = DirectedGraph()
        node = graph.add_node()
        graph.set_label(node, "renamed")
        assert graph.label_of(node) == "renamed"
        assert graph.node_for_label("renamed") == node

    def test_set_label_conflict_fails(self):
        graph = DirectedGraph()
        graph.add_node("A")
        other = graph.add_node("B")
        with pytest.raises(GraphError):
            graph.set_label(other, "A")


class TestDegreesAndNeighbourhoods:
    def test_successors_and_predecessors(self, triangle):
        a = triangle.resolve("A")
        b = triangle.resolve("B")
        c = triangle.resolve("C")
        assert triangle.successors(a) == {b}
        assert triangle.predecessors(a) == {c}

    def test_degrees(self, reciprocal_star):
        hub = reciprocal_star.resolve("H")
        assert reciprocal_star.out_degree(hub) == 5
        assert reciprocal_star.in_degree(hub) == 5
        assert reciprocal_star.out_degrees()[hub] == 5
        assert sum(reciprocal_star.in_degrees()) == reciprocal_star.number_of_edges()

    def test_successor_lists_are_sorted(self, reciprocal_star):
        lists = reciprocal_star.successor_lists()
        for entries in lists:
            assert list(entries) == sorted(entries)

    def test_degree_sums_equal_edge_count(self, community_graph):
        assert sum(community_graph.out_degrees()) == community_graph.number_of_edges()
        assert sum(community_graph.in_degrees()) == community_graph.number_of_edges()


class TestCopiesAndConversions:
    def test_copy_is_deep(self, triangle):
        clone = triangle.copy()
        clone.add_edge("A", "C")
        assert not triangle.has_edge("A", "C")
        assert clone.number_of_edges() == triangle.number_of_edges() + 1

    def test_copy_preserves_equality(self, triangle):
        assert triangle.copy() == triangle

    def test_transpose_reverses_every_edge(self, mixed_graph):
        transposed = mixed_graph.transpose()
        assert transposed.number_of_edges() == mixed_graph.number_of_edges()
        for edge in mixed_graph.edges():
            assert transposed.has_edge(edge.target, edge.source)

    def test_transpose_twice_restores_graph(self, mixed_graph):
        assert mixed_graph.transpose().transpose() == mixed_graph

    def test_from_edges_with_labels(self):
        graph = DirectedGraph.from_edges([("A", "B"), ("B", "C")], name="path")
        assert graph.number_of_nodes() == 3
        assert graph.name == "path"

    def test_from_edges_with_integer_ids_grows_capacity(self):
        graph = DirectedGraph.from_edges([(0, 4), (4, 2)])
        assert graph.number_of_nodes() == 5
        assert graph.has_edge(0, 4)

    def test_from_edges_with_preallocated_nodes(self):
        graph = DirectedGraph.from_edges([(0, 1)], num_nodes=10)
        assert graph.number_of_nodes() == 10

    def test_to_networkx_round_trip(self, triangle):
        nx = pytest.importorskip("networkx")
        nx_graph = triangle.to_networkx()
        assert isinstance(nx_graph, nx.DiGraph)
        back = DirectedGraph.from_networkx(nx_graph)
        assert back.number_of_nodes() == triangle.number_of_nodes()
        assert back.number_of_edges() == triangle.number_of_edges()


class TestDunderProtocol:
    def test_len_iter_contains(self, triangle):
        assert len(triangle) == 3
        assert list(triangle) == [0, 1, 2]
        assert "A" in triangle
        assert 0 in triangle
        assert "missing" not in triangle
        assert 99 not in triangle
        assert 3.5 not in triangle

    def test_repr_mentions_counts(self, triangle):
        text = repr(triangle)
        assert "3 nodes" in text
        assert "3 edges" in text

    def test_equality_with_non_graph(self, triangle):
        assert triangle != 42

    def test_edge_helpers(self):
        edge = Edge(1, 2)
        assert edge.as_tuple() == (1, 2)
        assert edge.reversed() == Edge(2, 1)
