"""End-to-end failover acceptance: kill a shard mid-serving and lose nothing.

The scenario of the replicated tier's acceptance criteria, driven through the
public gateway surface against fault-injected backends (the
:class:`conftest.FlakyStore` harness):

* concurrent writers and readers run mixed comparisons against a
  ``replicas=2`` store while one shard is killed mid-round — every
  submission still completes and every ranking is **bit-identical** to a
  single-store gateway's;
* no acked comparison result is lost: everything written before (and after)
  the kill stays retrievable;
* a ``rebalance`` job started through the gateway restores R live copies of
  every dataset and result among the surviving shards;
* maintenance jobs stream ordered progress events over the REST SSE endpoint
  and are cancellable through ``DELETE``;
* a file-backed ring shard recovers its slice of datasets and results
  bit-identical when reopened (a restart of that node).
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import pytest

from faults import FlakyStore
from repro.datasets.catalog import DatasetCatalog
from repro.graph.generators import reciprocal_communities_graph
from repro.platform.datastore import DataStore, FileBackedDataStore
from repro.platform.gateway import ApiGateway
from repro.platform.replication import ReplicatedShardedDataStore
from repro.platform.restapi import RestApiServer

NUM_SHARDS = 4
WRITERS = 2
ROUNDS = 3


def _make_catalog():
    catalog = DatasetCatalog()
    catalog.register_graph(
        "communities",
        reciprocal_communities_graph(3, 6, seed=21, name="communities"),
        description="planted communities",
    )
    catalog.register_graph(
        "hub",
        reciprocal_communities_graph(2, 7, seed=13, name="hub"),
        description="two dense communities",
    )
    catalog.register_graph(
        "late", reciprocal_communities_graph(2, 5, seed=8, name="late"),
        description="materialised only after the shard kill",
    )
    return catalog


def _queries_for(round_index: int):
    """The mixed workload of one round (distinct PPR sources per round)."""
    batches = [
        [
            {"dataset_id": "communities", "algorithm": "pagerank"},
            {
                "dataset_id": "communities",
                "algorithm": "personalized-pagerank",
                "source": f"c0-n{round_index}",
            },
        ],
        [
            {"dataset_id": "hub", "algorithm": "pagerank"},
            {
                "dataset_id": "hub",
                "algorithm": "personalized-pagerank",
                "source": f"c1-n{round_index}",
            },
        ],
    ]
    if round_index >= 2:
        # A dataset first touched *after* the kill: its materialisation
        # must quorum-write around the dead shard.
        batches.append(
            [
                {"dataset_id": "late", "algorithm": "pagerank"},
                {
                    "dataset_id": "late",
                    "algorithm": "personalized-pagerank",
                    "source": f"c1-n{round_index}",
                },
            ]
        )
    return batches


def _expected_rankings():
    """The ground truth: the same workload on a plain single-store gateway."""
    expected = {}
    with ApiGateway(catalog=_make_catalog(), num_workers=2) as baseline:
        for round_index in range(ROUNDS):
            for queries in _queries_for(round_index):
                comparison = baseline.run_queries(queries, synchronous=True)
                rankings = baseline.get_rankings(comparison)
                for query, ranking in zip(queries, rankings):
                    key = (
                        query["dataset_id"],
                        query["algorithm"],
                        query.get("source"),
                    )
                    expected[key] = ranking.to_dict()
    return expected


class TestShardLossUnderConcurrentServing:
    def test_single_shard_loss_keeps_serving_bit_identical(self, tmp_path):
        expected = _expected_rankings()
        backends = [FlakyStore(DataStore()) for _ in range(NUM_SHARDS - 1)]
        file_shard_dir = tmp_path / "file-shard"
        backends.append(FlakyStore(FileBackedDataStore(file_shard_dir)))
        store = ReplicatedShardedDataStore(
            shards=backends, replicas=2, spill_dir=str(tmp_path / "spill")
        )
        gateway = ApiGateway(catalog=_make_catalog(), datastore=store, num_workers=4)

        barrier = threading.Barrier(WRITERS + 1)
        completed = []  # (comparison id, queries) of acked submissions
        completed_lock = threading.Lock()
        failures = []
        stop_reading = threading.Event()

        def writer(worker: int) -> None:
            try:
                for round_index in range(ROUNDS):
                    barrier.wait(timeout=60)
                    for queries in _queries_for(round_index):
                        comparison = gateway.run_queries(queries, synchronous=True)
                        progress = gateway.get_status(comparison)
                        assert progress.state.value == "completed", progress
                        with completed_lock:
                            completed.append((comparison, queries))
                    barrier.wait(timeout=60)
            except Exception as exc:  # pragma: no cover - failure reporting
                failures.append(f"writer {worker}: {exc!r}")
                stop_reading.set()
                barrier.abort()

        def reader() -> None:
            try:
                while not stop_reading.is_set():
                    with completed_lock:
                        snapshot = list(completed)
                    for comparison, queries in snapshot:
                        table = gateway.get_comparison_table(comparison, k=3)
                        assert len(table.columns) == len(queries)
                        assert store.get_result(comparison)["comparison_id"] == (
                            comparison
                        )
                    time.sleep(0.005)
            except Exception as exc:  # pragma: no cover - failure reporting
                failures.append(f"reader: {exc!r}")

        threads = [
            threading.Thread(target=writer, args=(worker,)) for worker in range(WRITERS)
        ]
        reader_thread = threading.Thread(target=reader)
        for thread in threads:
            thread.start()
        reader_thread.start()

        victim = None
        try:
            for round_index in range(ROUNDS):
                barrier.wait(timeout=60)  # release the round
                if round_index == 1:
                    # Kill one data-holding shard *while* the round is being
                    # served: every call into it raises from here on.
                    time.sleep(0.02)
                    victim = next(
                        shard_id
                        for shard_id, backend in store.shard_stores().items()
                        if backend.occupancy()["datasets"] > 0
                        and not isinstance(backend._inner, FileBackedDataStore)
                    )
                    backends[int(victim.split("-")[1])].go_down()
                barrier.wait(timeout=60)  # round drained
        finally:
            stop_reading.set()
            for thread in threads:
                thread.join(timeout=60)
            reader_thread.join(timeout=60)

        assert not failures, failures
        assert victim is not None

        # Every ranking served during the outage is bit-identical to the
        # single-store gateway's.
        for comparison, queries in completed:
            rankings = gateway.get_rankings(comparison)
            assert len(rankings) == len(queries)
            for query, ranking in zip(queries, rankings):
                key = (query["dataset_id"], query["algorithm"], query.get("source"))
                assert ranking.to_dict() == expected[key], key

        # No acked result was lost: every comparison's payload is readable
        # even with the shard still dead.
        for comparison, _ in completed:
            payload = store.get_result(comparison)
            assert payload["state"] == "completed"

        # The operator marks the dead shard down and a rebalance job restores
        # R live copies of every dataset and result among the survivors.
        store.mark_down(victim)
        job_id = gateway.rebalance_storage(wait=True)
        assert gateway.get_status(job_id).state.value == "completed"
        live = [
            shard_id
            for shard_id, backend in store.shard_stores().items()
            if shard_id != victim
        ]
        for dataset_id in ("communities", "hub", "late"):
            copies = sum(
                1
                for shard_id in live
                if store.shard_stores()[shard_id].has_dataset(dataset_id)
            )
            assert copies == 2, (dataset_id, copies)
        for comparison, _ in completed:
            copies = sum(
                1
                for shard_id in live
                if store.shard_stores()[shard_id].has_result(comparison)
            )
            assert copies == 2, comparison
        lag = gateway.get_platform_stats()["shards"]["replication"]
        assert lag["failover_reads"] > 0

        # Maintenance jobs stream ordered, typed progress over SSE and are
        # cancellable through the comparisons surface.
        server = RestApiServer(gateway)
        server.start()
        try:
            request = urllib.request.Request(
                f"{server.url}/api/storage/replicate", data=b"{}", method="POST"
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                assert response.status == 202
                replicate_id = json.loads(response.read())["job_id"]
            frames = []
            url = (
                f"{server.url}/api/comparisons/{replicate_id}/events"
                "?stream=sse&keepalive=0.5"
            )
            with urllib.request.urlopen(url, timeout=30) as response:
                for raw in response:
                    line = raw.decode("utf-8").strip()
                    if line.startswith("data: "):
                        frames.append(json.loads(line[len("data: "):]))
            assert frames[0]["type"] == "submitted"
            assert frames[-1]["type"] == "task_done"
            progress = [frame for frame in frames if frame["type"] == "progress"]
            assert progress, "replication must stream progress events"
            assert [frame["seq"] for frame in frames] == sorted(
                frame["seq"] for frame in frames
            )
            assert all(frame["kind"] == "replicate" for frame in progress)
            cancel = urllib.request.Request(
                f"{server.url}/api/comparisons/{replicate_id}", method="DELETE"
            )
            with urllib.request.urlopen(cancel, timeout=10) as response:
                body = json.loads(response.read())
            # The job already finished, so the request is refused — the
            # endpoint accepts maintenance job ids either way.
            assert body == {
                "comparison_id": replicate_id,
                "cancelled": False,
                "state": "completed",
            }
        finally:
            server.stop()

        # The file-backed ring shard recovers its slice bit-identical when a
        # fresh store opens the same directory (a node restart).
        file_backend = backends[-1]._inner
        reopened = FileBackedDataStore(file_shard_dir)
        assert reopened.list_datasets() == file_backend.list_datasets()
        for dataset_id in reopened.list_datasets():
            original = file_backend.fetch_dataset(dataset_id)
            recovered = reopened.fetch_dataset(dataset_id)
            assert recovered.edge_list() == original.edge_list()
            assert recovered.labels() == original.labels()
        assert reopened.list_results() == file_backend.list_results()
        for result_id in reopened.list_results()[:5]:
            assert reopened.get_result(result_id) == file_backend.get_result(result_id)

        gateway.shutdown()
