"""Unit tests for :mod:`repro.algorithms.cycle_enumeration`."""

from __future__ import annotations

import itertools

import pytest

from repro.algorithms.cycle_enumeration import (
    count_cycles_by_length,
    enumerate_cycles_through,
    simple_cycles_up_to_length,
)
from repro.exceptions import InvalidParameterError
from repro.graph.digraph import DirectedGraph
from repro.graph.generators import complete_graph, cycle_graph, layered_dag


def brute_force_cycles_through(graph, reference, max_length):
    """Reference implementation: try every node permutation up to max_length."""
    root = graph.resolve(reference)
    found = set()
    other_nodes = [node for node in graph.nodes() if node != root]
    for length in range(2, max_length + 1):
        for middle in itertools.permutations(other_nodes, length - 1):
            path = (root,) + middle
            ok = all(graph.has_edge(path[i], path[i + 1]) for i in range(len(path) - 1))
            if ok and graph.has_edge(path[-1], root):
                found.add(path)
    return found


class TestEnumerateCyclesThrough:
    def test_triangle_has_one_cycle(self, triangle):
        cycles = list(enumerate_cycles_through(triangle, "A", 3))
        assert len(cycles) == 1
        assert len(cycles[0]) == 3
        assert cycles[0][0] == triangle.resolve("A")

    def test_triangle_not_found_with_k_two(self, triangle):
        assert list(enumerate_cycles_through(triangle, "A", 2)) == []

    def test_two_cycles_through_shared_node(self, two_triangles):
        cycles = list(enumerate_cycles_through(two_triangles, "R", 3))
        assert len(cycles) == 2

    def test_reciprocal_star_counts_two_cycles(self, reciprocal_star):
        cycles = list(enumerate_cycles_through(reciprocal_star, "H", 2))
        assert len(cycles) == 5
        assert all(len(cycle) == 2 for cycle in cycles)

    def test_leaf_of_reciprocal_star(self, reciprocal_star):
        # From a leaf, K=2 sees one 2-cycle (leaf <-> hub); K=4 adds the
        # 4-cycles leaf -> hub is not possible (hub-leaf-hub repeats hub), so
        # still exactly one cycle.
        assert len(list(enumerate_cycles_through(reciprocal_star, "A", 2))) == 1
        assert len(list(enumerate_cycles_through(reciprocal_star, "A", 4))) == 1

    def test_dag_has_no_cycles(self, small_dag):
        assert list(enumerate_cycles_through(small_dag, 0, 5)) == []

    def test_directed_cycle_found_only_at_full_length(self):
        graph = cycle_graph(5)
        assert list(enumerate_cycles_through(graph, 0, 4)) == []
        cycles = list(enumerate_cycles_through(graph, 0, 5))
        assert len(cycles) == 1
        assert len(cycles[0]) == 5

    def test_cycles_are_simple(self, community_graph):
        for cycle in enumerate_cycles_through(community_graph, 0, 4):
            assert len(set(cycle)) == len(cycle)

    def test_cycles_start_with_reference(self, community_graph):
        for cycle in enumerate_cycles_through(community_graph, 3, 4):
            assert cycle[0] == 3

    def test_every_cycle_edge_exists(self, community_graph):
        for cycle in enumerate_cycles_through(community_graph, 0, 4):
            for first, second in zip(cycle, cycle[1:]):
                assert community_graph.has_edge(first, second)
            assert community_graph.has_edge(cycle[-1], cycle[0])

    def test_no_duplicate_cycles(self, community_graph):
        cycles = list(enumerate_cycles_through(community_graph, 0, 4))
        assert len(cycles) == len(set(cycles))

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_matches_brute_force_on_complete_graph(self, k):
        graph = complete_graph(5)
        expected = brute_force_cycles_through(graph, 0, k)
        actual = set(enumerate_cycles_through(graph, 0, k))
        assert actual == expected

    def test_matches_brute_force_on_random_graph(self):
        from repro.graph.generators import gnp_random_graph

        graph = gnp_random_graph(9, 0.3, seed=13)
        expected = brute_force_cycles_through(graph, 0, 4)
        actual = set(enumerate_cycles_through(graph, 0, 4))
        assert actual == expected

    def test_complete_graph_cycle_counts(self):
        # In K_n, the number of cycles of length L through a fixed node is
        # P(n-1, L-1) = (n-1)! / (n-L)!.
        graph = complete_graph(5)
        counts = count_cycles_by_length(graph, 0, 4)
        assert counts == {2: 4, 3: 12, 4: 24}

    def test_self_loop_ignored(self):
        graph = DirectedGraph()
        graph.add_edge("A", "A")
        graph.add_edge("A", "B")
        graph.add_edge("B", "A")
        cycles = list(enumerate_cycles_through(graph, "A", 3))
        assert all(len(cycle) >= 2 for cycle in cycles)
        assert len(cycles) == 1

    def test_invalid_max_length_rejected(self, triangle):
        with pytest.raises(InvalidParameterError):
            list(enumerate_cycles_through(triangle, "A", 1))
        with pytest.raises(InvalidParameterError):
            list(enumerate_cycles_through(triangle, "A", 0))

    def test_isolated_reference_yields_nothing(self):
        graph = DirectedGraph()
        graph.add_node("lonely")
        graph.add_edge("A", "B")
        assert list(enumerate_cycles_through(graph, "lonely", 4)) == []


class TestCountCyclesByLength:
    def test_counts_by_length(self, two_triangles):
        assert count_cycles_by_length(two_triangles, "R", 3) == {3: 2}

    def test_counts_accumulate_with_k(self, community_graph):
        counts_small = count_cycles_by_length(community_graph, 0, 3)
        counts_large = count_cycles_by_length(community_graph, 0, 4)
        for length, count in counts_small.items():
            assert counts_large[length] == count
        assert sum(counts_large.values()) >= sum(counts_small.values())


class TestSimpleCyclesUpToLength:
    def test_whole_graph_enumeration_on_two_triangles(self, two_triangles):
        cycles = simple_cycles_up_to_length(two_triangles, 3)
        assert len(cycles) == 2

    def test_whole_graph_enumeration_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        from repro.graph.generators import gnp_random_graph

        graph = gnp_random_graph(10, 0.25, seed=3)
        ours = {frozenset(cycle) for cycle in simple_cycles_up_to_length(graph, 10)
                if len(cycle) == len(frozenset(cycle))}
        nx_graph = graph.to_networkx()
        # Unlabelled nodes are exported to networkx as "#<id>" display labels.
        theirs = {
            frozenset(int(str(label).lstrip("#")) for label in cycle)
            for cycle in nx.simple_cycles(nx_graph)
        }
        # Compare as node sets; both enumerate each simple cycle once.
        assert ours == theirs

    def test_dag_has_no_cycles_at_all(self):
        graph = layered_dag([3, 3, 3], seed=2)
        assert simple_cycles_up_to_length(graph, 6) == []
