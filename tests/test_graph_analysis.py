"""Unit tests for :mod:`repro.graph.analysis`."""

from __future__ import annotations

import pytest

from repro.graph.analysis import (
    degree_histogram,
    density,
    graph_summary,
    reciprocity,
    top_nodes_by_degree,
)
from repro.graph.digraph import DirectedGraph
from repro.graph.generators import complete_graph, cycle_graph, path_graph, star_graph


class TestDensity:
    def test_complete_graph_has_density_one(self):
        assert density(complete_graph(5)) == pytest.approx(1.0)

    def test_cycle_density(self):
        graph = cycle_graph(10)
        assert density(graph) == pytest.approx(10 / (10 * 9))

    def test_tiny_graphs_have_zero_density(self):
        assert density(DirectedGraph()) == 0.0
        single = DirectedGraph()
        single.add_node("A")
        assert density(single) == 0.0


class TestReciprocity:
    def test_fully_reciprocated_graph(self, reciprocal_star):
        assert reciprocity(reciprocal_star) == pytest.approx(1.0)

    def test_one_way_graph(self):
        assert reciprocity(path_graph(5)) == 0.0

    def test_half_reciprocated(self):
        graph = DirectedGraph()
        graph.add_edge("A", "B")
        graph.add_edge("B", "A")
        graph.add_edge("A", "C")
        graph.add_edge("C", "D")
        assert reciprocity(graph) == pytest.approx(0.5)

    def test_empty_graph(self):
        assert reciprocity(DirectedGraph()) == 0.0


class TestDegreeStatistics:
    def test_degree_histogram_in(self):
        graph = star_graph(4)  # hub -> 4 leaves
        histogram = degree_histogram(graph, direction="in")
        assert histogram == {0: 1, 1: 4}

    def test_degree_histogram_out(self):
        graph = star_graph(4)
        histogram = degree_histogram(graph, direction="out")
        assert histogram == {0: 4, 4: 1}

    def test_invalid_direction(self, triangle):
        with pytest.raises(ValueError):
            degree_histogram(triangle, direction="sideways")
        with pytest.raises(ValueError):
            top_nodes_by_degree(triangle, direction="sideways")

    def test_top_nodes_by_degree(self):
        graph = star_graph(4, reciprocal=True)
        top = top_nodes_by_degree(graph, 1, direction="in")
        assert top[0][1] == 4  # the hub receives 4 incoming edges

    def test_top_nodes_respects_k(self, community_graph):
        assert len(top_nodes_by_degree(community_graph, 3)) == 3


class TestGraphSummary:
    def test_summary_fields(self, two_triangles):
        summary = graph_summary(two_triangles)
        assert summary.num_nodes == 5
        assert summary.num_edges == 6
        assert summary.num_self_loops == 0
        assert summary.num_strongly_connected_components == 1
        assert summary.largest_scc_size == 5
        assert summary.num_weakly_connected_components == 1

    def test_summary_as_dict_round_trip(self, triangle):
        payload = graph_summary(triangle).as_dict()
        assert payload["num_nodes"] == 3
        assert payload["num_edges"] == 3
        assert 0.0 <= payload["density"] <= 1.0
        assert set(payload) >= {"name", "reciprocity", "max_in_degree", "max_out_degree"}

    def test_summary_of_empty_graph(self):
        summary = graph_summary(DirectedGraph(name="empty"))
        assert summary.num_nodes == 0
        assert summary.max_in_degree == 0
        assert summary.largest_scc_size == 0
