"""Unit tests for :mod:`repro.algorithms.base` and :mod:`repro.algorithms.registry`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.base import Algorithm, AlgorithmSpec, ParameterSpec
from repro.algorithms.cyclerank import cyclerank
from repro.algorithms.registry import (
    PAPER_ALGORITHMS,
    available_algorithms,
    get_algorithm,
    register_algorithm,
    run_algorithm,
)
from repro.exceptions import AlgorithmNotFoundError, InvalidParameterError
from repro.ranking.result import Ranking


class TestParameterSpec:
    def test_coerce_float(self):
        spec = ParameterSpec(name="alpha", kind="float", default=0.85, minimum=0.0, maximum=1.0)
        assert spec.coerce("0.3") == pytest.approx(0.3)
        assert spec.coerce(None) == 0.85

    def test_coerce_int(self):
        spec = ParameterSpec(name="k", kind="int", default=3, minimum=2)
        assert spec.coerce("5") == 5
        assert isinstance(spec.coerce("5"), int)

    def test_coerce_str_with_choices(self):
        spec = ParameterSpec(name="sigma", kind="str", default="exp", choices=("exp", "lin"))
        assert spec.coerce("lin") == "lin"
        with pytest.raises(InvalidParameterError):
            spec.coerce("nope")

    def test_bounds_enforced(self):
        spec = ParameterSpec(name="alpha", kind="float", default=0.85, minimum=0.0, maximum=1.0)
        with pytest.raises(InvalidParameterError):
            spec.coerce(1.5)
        with pytest.raises(InvalidParameterError):
            spec.coerce(-0.5)

    def test_type_error_reported(self):
        spec = ParameterSpec(name="k", kind="int", default=3)
        with pytest.raises(InvalidParameterError):
            spec.coerce("three")

    def test_unknown_kind_rejected(self):
        spec = ParameterSpec(name="weird", kind="complex", default=None)
        with pytest.raises(InvalidParameterError):
            spec.coerce("1")


class TestAlgorithmSpec:
    def test_parameter_lookup(self):
        algorithm = get_algorithm("cyclerank")
        assert algorithm.spec.parameter("k").kind == "int"
        with pytest.raises(InvalidParameterError):
            algorithm.spec.parameter("unknown")

    def test_defaults(self):
        defaults = get_algorithm("cyclerank").spec.defaults()
        assert defaults == {"k": 3, "sigma": "exp"}


class TestRegistry:
    def test_paper_algorithms_all_registered(self):
        names = available_algorithms()
        for name in PAPER_ALGORITHMS:
            assert name in names
        assert len(PAPER_ALGORITHMS) == 7

    def test_lookup_is_case_and_separator_insensitive(self):
        assert get_algorithm("CycleRank").name == "cyclerank"
        assert get_algorithm("personalized_pagerank").name == "personalized-pagerank"
        assert get_algorithm("  2DRANK ").name == "2drank"

    def test_unknown_algorithm_fails(self):
        with pytest.raises(AlgorithmNotFoundError):
            get_algorithm("simrank")

    def test_personalization_filter(self):
        personalized = available_algorithms(personalized=True)
        global_only = available_algorithms(personalized=False)
        assert "cyclerank" in personalized
        assert "pagerank" in global_only
        assert set(personalized).isdisjoint(global_only)

    def test_register_custom_algorithm_and_replace(self, triangle):
        class InDegreeAlgorithm(Algorithm):
            spec = AlgorithmSpec(
                name="indegree-test",
                display_name="In-degree",
                personalized=False,
                parameters=(),
                description="rank by raw in-degree",
            )

            def _execute(self, graph, *, source, parameters):
                return Ranking(
                    [float(d) for d in graph.in_degrees()],
                    labels=graph.labels(),
                    algorithm=self.display_name,
                    graph_name=graph.name,
                )

        from repro.algorithms import registry as registry_module

        try:
            register_algorithm(InDegreeAlgorithm())
            assert "indegree-test" in available_algorithms()
            ranking = run_algorithm("indegree-test", triangle)
            assert ranking.algorithm == "In-degree"
            with pytest.raises(InvalidParameterError):
                register_algorithm(InDegreeAlgorithm())
            register_algorithm(InDegreeAlgorithm(), replace=True)
        finally:
            registry_module._REGISTRY.pop("indegree-test", None)


class TestAlgorithmRun:
    def test_run_validates_source_requirements(self, triangle):
        with pytest.raises(InvalidParameterError):
            get_algorithm("cyclerank").run(triangle)  # missing source
        with pytest.raises(InvalidParameterError):
            get_algorithm("pagerank").run(triangle, source="A")  # unexpected source

    def test_run_rejects_unknown_parameters(self, triangle):
        with pytest.raises(InvalidParameterError):
            get_algorithm("pagerank").run(triangle, parameters={"beta": 1})

    def test_run_coerces_string_parameters(self, two_triangles):
        ranking = get_algorithm("cyclerank").run(
            two_triangles, source="R", parameters={"k": "3", "sigma": "exp"}
        )
        direct = cyclerank(two_triangles, "R", max_cycle_length=3, scoring="exp")
        assert np.allclose(ranking.scores, direct.scores)

    def test_run_algorithm_shortcut(self, triangle):
        ranking = run_algorithm("pagerank", triangle, parameters={"alpha": 0.5})
        assert ranking.algorithm == "PageRank"
        assert ranking.parameters["alpha"] == 0.5

    @pytest.mark.parametrize("name", list(PAPER_ALGORITHMS))
    def test_every_paper_algorithm_runs_on_a_dataset(self, small_enwiki, name):
        algorithm = get_algorithm(name)
        source = "Freddie Mercury" if algorithm.is_personalized else None
        ranking = algorithm.run(small_enwiki, source=source)
        assert len(ranking) == small_enwiki.number_of_nodes()

    def test_describe_parameters_mentions_every_parameter(self):
        algorithm = get_algorithm("cyclerank")
        lines = algorithm.describe_parameters()
        assert any(line.startswith("k ") for line in lines)
        assert any(line.startswith("sigma ") for line in lines)

    def test_repr(self):
        assert "cyclerank" in repr(get_algorithm("cyclerank"))
