"""Unit tests for :mod:`repro.analysis.temporal`."""

from __future__ import annotations

import pytest

from repro.analysis.temporal import snapshot_comparison
from repro.datasets.wikipedia import generate_wikilink_graph
from repro.exceptions import InvalidParameterError
from repro.graph.digraph import DirectedGraph


@pytest.fixture(scope="module")
def yearly_snapshots():
    """Three snapshots of the English edition, oldest to newest (small and fast)."""
    return {
        snapshot: generate_wikilink_graph("en", snapshot, num_filler_articles=size, seed=5)
        for snapshot, size in [("2008-03-01", 30), ("2013-03-01", 60), ("2018-03-01", 90)]
    }


class TestSnapshotComparison:
    def test_runs_the_query_on_every_snapshot(self, yearly_snapshots):
        comparison = snapshot_comparison(
            yearly_snapshots, "cyclerank", source="Freddie Mercury", parameters={"k": 3}
        )
        assert comparison.snapshots == list(yearly_snapshots)
        assert set(comparison.rankings) == set(yearly_snapshots)
        for ranking in comparison.rankings.values():
            assert ranking.top_labels(1) == ["Freddie Mercury"]

    def test_graph_sizes_grow_over_time(self, yearly_snapshots):
        comparison = snapshot_comparison(
            yearly_snapshots, "cyclerank", source="Freddie Mercury", parameters={"k": 3}
        )
        node_counts = [comparison.graph_sizes[s]["nodes"] for s in comparison.snapshots]
        assert node_counts == sorted(node_counts)
        assert node_counts[0] < node_counts[-1]

    def test_table_has_one_column_per_snapshot(self, yearly_snapshots):
        comparison = snapshot_comparison(
            yearly_snapshots, "cyclerank", source="Freddie Mercury", parameters={"k": 3}
        )
        table = comparison.table(k=5)
        assert len(table.columns) == 3
        assert len(table.rows) == 5

    def test_head_stability_and_newcomers(self, yearly_snapshots):
        comparison = snapshot_comparison(
            yearly_snapshots, "cyclerank", source="Freddie Mercury", parameters={"k": 3}
        )
        stability = comparison.head_stability(5)
        assert len(stability) == 2
        assert all(0.0 <= value <= 1.0 for value in stability.values())
        newcomers = comparison.newcomers(5)
        assert set(newcomers) == set(comparison.snapshots[1:])

    def test_to_text_mentions_sizes_and_stability(self, yearly_snapshots):
        comparison = snapshot_comparison(
            yearly_snapshots, "cyclerank", source="Freddie Mercury", parameters={"k": 3}
        )
        text = comparison.to_text(5)
        assert "Snapshot sizes" in text
        assert "Head stability" in text

    def test_global_algorithm_without_source(self, yearly_snapshots):
        comparison = snapshot_comparison(yearly_snapshots, "pagerank", parameters={"alpha": 0.85})
        assert len(comparison.snapshots) == 3
        assert comparison.reference is None

    def test_labels_with_loader(self, yearly_snapshots):
        comparison = snapshot_comparison(
            list(yearly_snapshots),
            "cyclerank",
            source="Freddie Mercury",
            parameters={"k": 3},
            loader=lambda label: yearly_snapshots[label],
        )
        assert comparison.snapshots == list(yearly_snapshots)

    def test_labels_without_loader_rejected(self, yearly_snapshots):
        with pytest.raises(InvalidParameterError):
            snapshot_comparison(list(yearly_snapshots), "pagerank")

    def test_empty_snapshots_rejected(self):
        with pytest.raises(InvalidParameterError):
            snapshot_comparison({}, "pagerank")

    def test_snapshots_missing_the_reference_are_skipped(self, yearly_snapshots):
        early = DirectedGraph(name="early")
        early.add_edge("Some article", "Another article")
        snapshots = {"1999": early, **yearly_snapshots}
        comparison = snapshot_comparison(
            snapshots, "cyclerank", source="Freddie Mercury", parameters={"k": 3}
        )
        assert "1999" not in comparison.snapshots
        assert len(comparison.snapshots) == 3

    def test_reference_absent_everywhere_rejected(self, yearly_snapshots):
        with pytest.raises(InvalidParameterError):
            snapshot_comparison(
                yearly_snapshots, "cyclerank", source="Not An Article", parameters={"k": 3}
            )
