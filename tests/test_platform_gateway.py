"""Unit tests for :mod:`repro.platform.gateway` and :mod:`repro.platform.webui`."""

from __future__ import annotations

import pytest

from repro.datasets.catalog import DatasetCatalog
from repro.exceptions import TaskError
from repro.graph.digraph import DirectedGraph
from repro.io.edgelist import write_edgelist
from repro.platform.gateway import ApiGateway
from repro.platform.tasks import TaskState
from repro.platform.webui import WebUI


@pytest.fixture
def small_catalog(small_enwiki, small_amazon, two_triangles) -> DatasetCatalog:
    catalog = DatasetCatalog()
    catalog.register_graph("enwiki-small", small_enwiki, family="wikipedia",
                           description="small synthetic enwiki")
    catalog.register_graph("amazon-small", small_amazon, family="amazon",
                           description="small synthetic amazon")
    catalog.register_graph("toy", two_triangles, family="synthetic", description="toy graph")
    return catalog


@pytest.fixture
def gateway(small_catalog):
    with ApiGateway(catalog=small_catalog, num_workers=2) as gateway:
        yield gateway


class TestDiscovery:
    def test_list_datasets(self, gateway):
        datasets = gateway.list_datasets()
        assert {entry["dataset_id"] for entry in datasets} == {
            "enwiki-small", "amazon-small", "toy"
        }
        wikipedia_only = gateway.list_datasets(family="wikipedia")
        assert len(wikipedia_only) == 1

    def test_list_algorithms_includes_the_seven_of_the_paper(self, gateway):
        names = {entry["name"] for entry in gateway.list_algorithms()}
        assert {
            "cyclerank", "pagerank", "personalized-pagerank", "cheirank",
            "personalized-cheirank", "2drank", "personalized-2drank",
        } <= names
        cyclerank_entry = next(e for e in gateway.list_algorithms() if e["name"] == "cyclerank")
        assert cyclerank_entry["personalized"] is True
        assert {p["name"] for p in cyclerank_entry["parameters"]} == {"k", "sigma"}

    def test_dataset_summary(self, gateway):
        summary = gateway.dataset_summary("toy")
        assert summary["num_nodes"] == 5
        assert summary["num_edges"] == 6

    def test_default_catalog_used_when_none_given(self):
        with ApiGateway() as gateway:
            assert len(gateway.list_datasets()) == 50


class TestUpload:
    def test_upload_graph(self, gateway, community_graph):
        summary = gateway.upload_dataset("mine", community_graph, description="uploaded")
        assert summary["num_nodes"] == community_graph.number_of_nodes()
        assert "mine" in {entry["dataset_id"] for entry in gateway.list_datasets()}

    def test_upload_file(self, gateway, tmp_path):
        graph = DirectedGraph()
        graph.add_edge("A", "B")
        graph.add_edge("B", "A")
        path = tmp_path / "uploaded.csv"
        write_edgelist(graph, path)
        summary = gateway.upload_dataset("from-file", path)
        assert summary["num_edges"] == 2

    def test_uploaded_dataset_is_runnable(self, gateway, community_graph):
        gateway.upload_dataset("mine", community_graph)
        comparison = gateway.run_queries(
            [{"dataset_id": "mine", "algorithm": "cyclerank", "source": "c0-n0",
              "parameters": {"k": 3}}]
        )
        assert gateway.get_rankings(comparison)[0].reference == "c0-n0"


class TestComparisons:
    def test_synchronous_algorithm_comparison(self, gateway):
        comparison = gateway.run_queries(
            [
                {"dataset_id": "enwiki-small", "algorithm": "cyclerank",
                 "source": "Freddie Mercury", "parameters": {"k": 3}},
                {"dataset_id": "enwiki-small", "algorithm": "personalized-pagerank",
                 "source": "Freddie Mercury", "parameters": {"alpha": 0.3}},
                {"dataset_id": "enwiki-small", "algorithm": "pagerank",
                 "parameters": {"alpha": 0.85}},
            ]
        )
        progress = gateway.get_status(comparison)
        assert progress.state is TaskState.COMPLETED
        table = gateway.get_comparison_table(comparison, k=5)
        assert table.columns == ["Cyclerank", "Pers. PageRank", "PageRank"]
        assert len(table.rows) == 5
        assert table.rows[0][0] == "Freddie Mercury"

    def test_asynchronous_submission_with_polling(self, gateway):
        query_set = gateway.new_query_set()
        gateway.add_query(query_set, "toy", "cyclerank", source="R", parameters={"k": 3})
        gateway.add_query(query_set, "toy", "personalized-pagerank", source="R")
        comparison = gateway.submit_comparison(query_set)
        assert comparison == query_set.comparison_id
        progress = gateway.wait_for(comparison, timeout_seconds=30)
        assert progress.state is TaskState.COMPLETED
        assert len(gateway.get_rankings(comparison)) == 2

    def test_dataset_comparison_headers_include_dataset(self, gateway):
        comparison = gateway.run_queries(
            [
                {"dataset_id": "enwiki-small", "algorithm": "pagerank"},
                {"dataset_id": "amazon-small", "algorithm": "pagerank"},
            ]
        )
        table = gateway.get_comparison_table(comparison, k=3)
        assert any("enwiki-small" in column for column in table.columns)
        assert any("amazon-small" in column for column in table.columns)

    def test_logs_record_the_lifecycle(self, gateway):
        comparison = gateway.run_queries(
            [{"dataset_id": "toy", "algorithm": "pagerank"}]
        )
        logs = gateway.get_logs(comparison)
        assert any("scheduler" in line for line in logs)
        assert any("done" in line for line in logs)

    def test_empty_query_set_rejected(self, gateway):
        with pytest.raises(TaskError):
            gateway.submit_comparison(gateway.new_query_set())

    def test_invalid_query_rejected_before_submission(self, gateway):
        query_set = gateway.new_query_set()
        with pytest.raises(TaskError):
            gateway.add_query(query_set, "toy", "cyclerank")  # missing source
        with pytest.raises(TaskError):
            gateway.add_query(query_set, "missing-dataset", "pagerank")

    def test_get_task_returns_underlying_object(self, gateway):
        comparison = gateway.run_queries([{"dataset_id": "toy", "algorithm": "pagerank"}])
        task = gateway.get_task(comparison)
        assert task.task_id == comparison


class TestWebUI:
    def test_dataset_and_algorithm_pickers(self, gateway):
        ui = WebUI(gateway)
        datasets_view = ui.render_dataset_picker()
        assert "enwiki-small" in datasets_view
        assert "amazon-small" in datasets_view
        algorithms_view = ui.render_algorithm_picker()
        assert "Cyclerank" in algorithms_view
        assert "damping factor" in algorithms_view

    def test_task_builder_view_matches_figure_two(self, gateway):
        ui = WebUI(gateway)
        query_set = gateway.new_query_set()
        gateway.add_query(query_set, "enwiki-small", "cyclerank",
                          source="Fake news", parameters={"k": 3})
        gateway.add_query(query_set, "enwiki-small", "pagerank", parameters={"alpha": 0.3})
        view = ui.render_task_builder(query_set)
        assert f"Comparison id: {query_set.comparison_id}" in view
        assert "cyclerank" in view
        assert "Fake news" in view
        assert "k=3" in view
        assert "[✕]" in view  # per-row removal
        assert "clear all" in view

    def test_task_builder_view_empty_state(self, gateway):
        ui = WebUI(gateway)
        view = ui.render_task_builder(gateway.new_query_set())
        assert "empty" in view

    def test_results_view_with_logs(self, gateway):
        ui = WebUI(gateway)
        comparison = gateway.run_queries(
            [{"dataset_id": "toy", "algorithm": "cyclerank", "source": "R",
              "parameters": {"k": 3}}]
        )
        view = ui.render_results(comparison, k=3, show_scores=True, include_logs=True)
        assert "completed" in view
        assert "R" in view
        assert "Execution log" in view

    def test_html_rendering(self, gateway):
        ui = WebUI(gateway)
        comparison = gateway.run_queries(
            [{"dataset_id": "toy", "algorithm": "personalized-pagerank", "source": "R"}]
        )
        html_view = ui.render_results_html(comparison, k=3)
        assert "<table>" in html_view
        assert "<td>R</td>" in html_view
