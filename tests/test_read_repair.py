"""Read-repair and automatic-spill tests for the self-healing storage tier.

A failover read — one answered by a non-primary replica — is evidence that
one *specific* key is under-replicated.  Instead of waiting for the next
full :meth:`~repro.platform.replication.ReplicatedShardedDataStore.replicate`
scan, the store enqueues that key on a bounded, coalescing repair queue
and the gateway drains it as a background job: ``underreplicated``
converges to zero from the reads alone.  The second half covers the
automatic spill policy: with ``spill_budget_bytes`` set, the maintenance
loop keeps estimated resident graph bytes under the budget during a
sustained upload run.
"""

from __future__ import annotations

import time

import pytest

from faults import FlakyStore, fault_rounds
from repro.datasets.catalog import DatasetCatalog
from repro.graph.generators import cycle_graph, star_graph
from repro.platform.datastore import DataStore
from repro.platform.gateway import ApiGateway
from repro.platform.replication import ReplicatedShardedDataStore


def _build(num_shards=4, replicas=2, **kwargs):
    backends = [FlakyStore(DataStore()) for _ in range(num_shards)]
    store = ReplicatedShardedDataStore(
        shards=backends, replicas=replicas, **kwargs
    )
    return backends, store


def _holders(store, dataset_id):
    return sorted(
        shard_id
        for shard_id, backend in store.shard_stores().items()
        if not backend.is_down and backend.has_dataset(dataset_id)
    )


def _wait_until(predicate, *, timeout=15.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestReadRepairQueue:
    def test_failover_read_repairs_the_single_key_without_a_full_scan(self):
        backends, store = _build()
        for index in range(6):
            store.store_dataset(f"ds-{index}", cycle_graph(3 + index))
        primary = store.replica_shards_for("ds-0")[0]
        store.shard_stores()[primary].drop_dataset("ds-0")  # lost copy
        assert len(_holders(store, "ds-0")) == 1

        graph = store.fetch_dataset("ds-0")  # served by the surviving replica
        assert graph.edge_list() == cycle_graph(3).edge_list()
        assert store.pending_read_repairs() == 1
        assert store.replication_stats()["failover_reads"] >= 1

        writes_before = sum(b.calls["store_dataset"] for b in backends)
        outcome = store.drain_read_repairs()
        assert outcome["drained"] == 1
        assert outcome["repaired"] >= 1
        assert outcome["pending"] == 0
        # Only the one key was re-copied: at most R writes (the lost copy
        # plus the version-convergence pass) — a full replicate scan could
        # have re-written copies for any of the 6 datasets.  The drain only
        # *recounts* the ring to refresh the underreplicated gauge; it
        # moves no other data.
        writes = sum(b.calls["store_dataset"] for b in backends) - writes_before
        assert 1 <= writes <= store.replicas
        assert len(_holders(store, "ds-0")) == 2
        # Convergence is visible without ever calling replicate().
        stats = store.replication_stats()
        assert stats["underreplicated"] == 0
        assert stats["read_repairs"] >= 1
        assert stats["repair_queue"] == 0

    def test_result_reads_enqueue_and_repair_too(self):
        backends, store = _build()
        store.put_result("res", {"value": 7})
        primary = store.replica_shards_for("res")[0]
        store.shard_stores()[primary].drop_result("res")
        assert store.get_result("res") == {"value": 7}
        assert store.pending_read_repairs() == 1
        store.drain_read_repairs()
        holders = [
            shard_id
            for shard_id, backend in store.shard_stores().items()
            if backend.has_result("res")
        ]
        assert len(holders) == 2

    def test_duplicate_failover_reads_coalesce_to_one_queue_entry(self):
        backends, store = _build()
        store.store_dataset("ds", cycle_graph(4))
        primary = store.replica_shards_for("ds")[0]
        store.shard_stores()[primary].drop_dataset("ds")
        for _ in range(fault_rounds(5)):
            store.fetch_dataset("ds")
        assert store.pending_read_repairs() == 1
        assert store.drain_read_repairs()["drained"] == 1

    def test_queue_is_bounded_and_drops_are_counted(self):
        backends, store = _build(read_repair_queue_limit=2)
        for index in range(4):
            dataset_id = f"ds-{index}"
            store.store_dataset(dataset_id, cycle_graph(3 + index))
            primary = store.replica_shards_for(dataset_id)[0]
            store.shard_stores()[primary].drop_dataset(dataset_id)
            store.fetch_dataset(dataset_id)
        assert store.pending_read_repairs() == 2
        assert store.replication_stats()["repair_dropped"] == 2
        outcome = store.drain_read_repairs()
        assert outcome["drained"] == 2
        # The dropped keys stay under-replicated until the next full scan —
        # which the bounded queue deliberately defers to.
        assert store.replicate()["underreplicated"] == 0

    def test_drain_on_an_empty_queue_is_a_cheap_no_op(self):
        backends, store = _build()
        store.store_dataset("ds", cycle_graph(4))
        outcome = store.drain_read_repairs()
        assert outcome == {"repaired": 0, "drained": 0, "pending": 0}
        assert store.replication_stats()["read_repairs"] == 0


class TestGatewayAutoRepair:
    @pytest.fixture
    def catalog(self, community_graph):
        catalog = DatasetCatalog()
        catalog.register_graph("toy", community_graph, description="communities")
        return catalog

    def test_failover_read_launches_the_repair_job_automatically(self, catalog):
        backends, store = _build()
        with ApiGateway(
            catalog=catalog, datastore=store, probe_interval_seconds=0
        ) as gateway:
            store.store_dataset("ds", cycle_graph(4))
            primary = store.replica_shards_for("ds")[0]
            store.shard_stores()[primary].drop_dataset("ds")
            # The failover read kicks the gateway's repair launcher; no
            # polling loop and no explicit maintenance call is involved.
            store.fetch_dataset("ds")
            assert _wait_until(
                lambda: store.pending_read_repairs() == 0
                and len(_holders(store, "ds")) == 2
            )
            assert store.replication_stats()["underreplicated"] == 0
            descriptions = [
                row["description"] for row in gateway.list_comparisons()
            ]
            assert "storage read-repair" in descriptions

    def test_manual_read_repair_job_is_observable(self, catalog):
        backends, store = _build()
        store.set_repair_launcher(None)  # force the manual path
        with ApiGateway(
            catalog=catalog, datastore=store, probe_interval_seconds=0
        ) as gateway:
            store.set_repair_launcher(None)  # the gateway re-wired it
            store.store_dataset("ds", cycle_graph(4))
            primary = store.replica_shards_for("ds")[0]
            store.shard_stores()[primary].drop_dataset("ds")
            store.fetch_dataset("ds")
            assert store.pending_read_repairs() == 1
            job_id = gateway.read_repair_storage(wait=True)
            assert gateway.get_status(job_id).state.value == "completed"
            kinds = [event["type"] for event in gateway.get_events(job_id)]
            assert "progress" in kinds
            assert len(_holders(store, "ds")) == 2


class TestAutomaticSpill:
    @pytest.fixture
    def catalog(self):
        catalog = DatasetCatalog()
        for index in range(6):
            catalog.register_graph(
                f"g{index}",
                star_graph(40 + index, reciprocal=True),
                description="spill stress",
            )
        return catalog

    def test_resident_bytes_stay_under_budget_during_sustained_uploads(
        self, catalog, tmp_path
    ):
        budget = 15_000  # fits ~2 of the ~6 KB replicated graphs
        with ApiGateway(
            catalog=catalog,
            shards=4,
            replicas=2,
            spill_dir=tmp_path,
            spill_budget_bytes=budget,
            probe_interval_seconds=0.02,
        ) as gateway:
            store = gateway.datastore
            for index in range(6):
                gateway.run_queries(
                    [{"dataset_id": f"g{index}", "algorithm": "pagerank"}],
                    synchronous=True,
                )
                # Each settled work unit runs the maintenance hook; the
                # budget overshoot reconverges before the next upload.
                assert _wait_until(
                    lambda: store.resident_dataset_bytes() <= budget
                ), f"resident bytes stuck over budget after upload {index}"
            stats = gateway.get_platform_stats()["shards"]["spill"]
            assert stats["spilled_datasets"] >= 1
            assert stats["resident_bytes"] <= budget
            # Spilled datasets still serve reads through the file tier.
            for index in range(6):
                assert store.fetch_dataset(f"g{index}") is not None

    def test_budget_requires_a_spill_tier_and_rejects_negatives(self, tmp_path):
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            ApiGateway(shards=3, replicas=2, spill_budget_bytes=1024)
        with pytest.raises(InvalidParameterError):
            ApiGateway(
                shards=3,
                replicas=2,
                spill_dir=tmp_path,
                spill_budget_bytes=-1,
            )
