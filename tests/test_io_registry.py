"""Unit tests for :mod:`repro.io.registry`."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphFormatError
from repro.io.registry import SUPPORTED_FORMATS, detect_format, read_graph, write_graph


class TestFormatDetection:
    @pytest.mark.parametrize(
        "filename, expected",
        [
            ("graph.csv", "edgelist"),
            ("graph.tsv", "edgelist"),
            ("graph.edgelist", "edgelist"),
            ("graph.edges", "edgelist"),
            ("graph.net", "pajek"),
            ("graph.pajek", "pajek"),
            ("graph.asd", "asd"),
            ("graph.json", "json"),
            ("GRAPH.CSV", "edgelist"),
        ],
    )
    def test_known_extensions(self, filename, expected):
        assert detect_format(filename) == expected

    def test_unknown_extension_fails(self):
        with pytest.raises(GraphFormatError):
            detect_format("graph.xyz")

    def test_supported_formats_cover_the_paper_plus_json(self):
        # The three formats of the paper's Instructions page, plus the JSON
        # format added as the announced "new formats in the future".
        assert {"edgelist", "pajek", "asd"} <= set(SUPPORTED_FORMATS)
        assert "json" in SUPPORTED_FORMATS


class TestDispatch:
    @pytest.mark.parametrize("extension", ["csv", "net", "asd", "json"])
    def test_write_read_round_trip(self, tmp_path, mixed_graph, extension):
        path = tmp_path / f"graph.{extension}"
        write_graph(mixed_graph, path)
        loaded = read_graph(path)
        assert loaded.number_of_edges() == mixed_graph.number_of_edges()
        assert sorted(loaded.labels()) == sorted(mixed_graph.labels())

    def test_tsv_uses_tab_delimiter(self, tmp_path, triangle):
        path = tmp_path / "graph.tsv"
        write_graph(triangle, path)
        content = path.read_text(encoding="utf-8")
        assert "\t" in content
        loaded = read_graph(path)
        assert loaded.number_of_edges() == 3

    def test_explicit_format_overrides_extension(self, tmp_path, triangle):
        path = tmp_path / "graph.dat"
        write_graph(triangle, path, format="edgelist")
        loaded = read_graph(path, format="edgelist")
        assert loaded.number_of_edges() == 3

    def test_unsupported_explicit_format_fails(self, tmp_path, triangle):
        with pytest.raises(GraphFormatError):
            write_graph(triangle, tmp_path / "graph.csv", format="graphml")
        with pytest.raises(GraphFormatError):
            read_graph(tmp_path / "graph.csv", format="graphml")

    def test_read_graph_sets_name(self, tmp_path, triangle):
        path = tmp_path / "wikilinks.csv"
        write_graph(triangle, path)
        assert read_graph(path).name == "wikilinks"
        assert read_graph(path, name="custom").name == "custom"
