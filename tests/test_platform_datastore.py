"""Unit tests for :mod:`repro.platform.datastore`."""

from __future__ import annotations

import json
import threading

import pytest

from repro.exceptions import StorageError
from repro.platform.datastore import DataStore


class TestDatasets:
    def test_store_fetch_round_trip(self, triangle):
        store = DataStore()
        store.store_dataset("tri", triangle)
        assert store.has_dataset("tri")
        assert store.fetch_dataset("tri") is triangle
        assert store.list_datasets() == ["tri"]

    def test_fetch_missing_dataset_fails(self):
        with pytest.raises(StorageError):
            DataStore().fetch_dataset("nope")

    def test_drop_dataset(self, triangle):
        store = DataStore()
        store.store_dataset("tri", triangle)
        store.drop_dataset("tri")
        assert not store.has_dataset("tri")
        store.drop_dataset("tri")  # dropping twice is fine


class TestResults:
    def test_put_get_round_trip(self):
        store = DataStore()
        store.put_result("r1", {"value": 42})
        assert store.get_result("r1") == {"value": 42}
        assert store.has_result("r1")
        assert store.list_results() == ["r1"]

    def test_get_returns_a_copy(self):
        store = DataStore()
        store.put_result("r1", {"value": [1, 2]})
        fetched = store.get_result("r1")
        fetched["value"] = "mutated"
        assert store.get_result("r1")["value"] == [1, 2]

    def test_missing_result_fails(self):
        with pytest.raises(StorageError):
            DataStore().get_result("missing")
        assert not DataStore().has_result("missing")


class TestLogs:
    def test_append_and_get(self):
        store = DataStore()
        store.append_log("task", "line one")
        store.append_log("task", "line two")
        assert store.get_logs("task") == ["line one", "line two"]
        assert store.list_logs() == ["task"]

    def test_missing_log_is_empty(self):
        assert DataStore().get_logs("nothing") == []


class TestPersistence:
    def test_results_persisted_to_directory(self, tmp_path):
        store = DataStore(directory=tmp_path)
        store.put_result("r1", {"answer": 42})
        on_disk = json.loads((tmp_path / "results" / "r1.json").read_text(encoding="utf-8"))
        assert on_disk == {"answer": 42}

    def test_results_readable_by_a_new_datastore(self, tmp_path):
        DataStore(directory=tmp_path).put_result("r1", {"answer": 42})
        fresh = DataStore(directory=tmp_path)
        assert fresh.has_result("r1")
        assert fresh.get_result("r1") == {"answer": 42}
        assert "r1" in fresh.list_results()

    def test_logs_persisted_to_directory(self, tmp_path):
        store = DataStore(directory=tmp_path)
        store.append_log("task", "hello")
        content = (tmp_path / "logs" / "task.log").read_text(encoding="utf-8")
        assert "hello" in content

    def test_unreadable_persisted_result_fails(self, tmp_path):
        store = DataStore(directory=tmp_path)
        (tmp_path / "results" / "bad.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(StorageError):
            store.get_result("bad")


class TestConcurrency:
    def test_parallel_writes_are_all_recorded(self):
        store = DataStore()

        def writer(worker_id: int) -> None:
            for i in range(50):
                store.put_result(f"w{worker_id}-{i}", {"worker": worker_id, "i": i})
                store.append_log("shared", f"w{worker_id}-{i}")

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(store.list_results()) == 200
        assert len(store.get_logs("shared")) == 200


class TestLogRetention:
    def test_append_log_keeps_only_the_newest_lines(self):
        store = DataStore(max_log_lines=5)
        for index in range(12):
            store.append_log("restapi", f"line {index}")
        lines = store.get_logs("restapi")
        assert lines == [f"line {index}" for index in range(7, 12)]

    def test_retention_is_per_key(self):
        store = DataStore(max_log_lines=3)
        for index in range(5):
            store.append_log("busy", f"busy {index}")
        store.append_log("quiet", "only line")
        assert len(store.get_logs("busy")) == 3
        assert store.get_logs("quiet") == ["only line"]

    def test_default_bound_is_generous(self):
        store = DataStore()
        for index in range(100):
            store.append_log("task", f"line {index}")
        assert len(store.get_logs("task")) == 100

    def test_rejects_a_nonpositive_bound(self):
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            DataStore(max_log_lines=0)

    def test_persisted_file_keeps_the_full_history(self, tmp_path):
        store = DataStore(tmp_path, max_log_lines=2)
        for index in range(6):
            store.append_log("task", f"line {index}")
        assert store.get_logs("task") == ["line 4", "line 5"]
        persisted = (tmp_path / "logs" / "task.log").read_text().splitlines()
        assert persisted == [f"line {index}" for index in range(6)]
