"""Unit tests for :mod:`repro.graph.generators`."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError
from repro.graph.analysis import reciprocity
from repro.graph.components import is_strongly_connected, strongly_connected_components
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    hub_and_spoke_graph,
    layered_dag,
    path_graph,
    preferential_attachment_graph,
    reciprocal_communities_graph,
    star_graph,
)


class TestDeterministicFamilies:
    def test_cycle_graph(self):
        graph = cycle_graph(5)
        assert graph.number_of_nodes() == 5
        assert graph.number_of_edges() == 5
        assert is_strongly_connected(graph)

    def test_path_graph(self):
        graph = path_graph(5)
        assert graph.number_of_edges() == 4
        assert not is_strongly_connected(graph)

    def test_star_graph(self):
        graph = star_graph(4)
        assert graph.number_of_nodes() == 5
        assert graph.out_degree(0) == 4
        assert graph.in_degree(0) == 0

    def test_reciprocal_star_graph(self):
        graph = star_graph(4, reciprocal=True)
        assert graph.in_degree(0) == 4
        assert reciprocity(graph) == pytest.approx(1.0)

    def test_complete_graph(self):
        graph = complete_graph(4)
        assert graph.number_of_edges() == 12
        assert not graph.has_self_loop(0)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(InvalidParameterError):
            cycle_graph(0)
        with pytest.raises(InvalidParameterError):
            path_graph(-1)
        with pytest.raises(InvalidParameterError):
            star_graph(-2)


class TestRandomFamilies:
    def test_gnp_is_deterministic_per_seed(self):
        first = gnp_random_graph(30, 0.1, seed=5)
        second = gnp_random_graph(30, 0.1, seed=5)
        third = gnp_random_graph(30, 0.1, seed=6)
        assert first == second
        assert first != third

    def test_gnp_extreme_probabilities(self):
        assert gnp_random_graph(10, 0.0, seed=0).number_of_edges() == 0
        assert gnp_random_graph(10, 1.0, seed=0).number_of_edges() == 90

    def test_gnp_invalid_probability(self):
        with pytest.raises(InvalidParameterError):
            gnp_random_graph(10, 1.5)

    def test_preferential_attachment_heavy_tail(self):
        graph = preferential_attachment_graph(200, 3, seed=1)
        assert graph.number_of_nodes() == 200
        in_degrees = sorted(graph.in_degrees(), reverse=True)
        # The most popular node should dominate the median node.
        assert in_degrees[0] >= 5 * max(in_degrees[len(in_degrees) // 2], 1)

    def test_preferential_attachment_requires_enough_nodes(self):
        with pytest.raises(InvalidParameterError):
            preferential_attachment_graph(3, 3)

    def test_hub_and_spoke_structure(self):
        graph = hub_and_spoke_graph(3, 10, seed=2)
        hub_in_degrees = [graph.in_degree(f"hub{i}") for i in range(3)]
        spoke_in_degrees = [graph.in_degree(f"spoke0-{i}") for i in range(10)]
        assert min(hub_in_degrees) > max(spoke_in_degrees)

    def test_reciprocal_communities_reciprocity(self):
        graph = reciprocal_communities_graph(3, 10, seed=4)
        assert reciprocity(graph) > 0.5
        assert graph.number_of_nodes() == 30

    def test_reciprocal_communities_have_intra_cycles(self):
        graph = reciprocal_communities_graph(2, 8, inter_probability=0.0, seed=4)
        components = strongly_connected_components(graph)
        large = [c for c in components if len(c) > 1]
        assert len(large) == 2

    def test_layered_dag_is_acyclic(self):
        graph = layered_dag([3, 4, 3], seed=9)
        assert all(len(c) == 1 for c in strongly_connected_components(graph))

    def test_layered_dag_every_node_has_outgoing_except_last_layer(self):
        graph = layered_dag([2, 2, 2], edge_probability=0.0, seed=1)
        # With probability 0 a single fallback edge per node is still added.
        for node in range(4):
            assert graph.out_degree(node) >= 1

    def test_layered_dag_requires_layers(self):
        with pytest.raises(InvalidParameterError):
            layered_dag([])
