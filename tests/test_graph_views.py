"""Unit tests for :mod:`repro.graph.views`."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError, NodeNotFoundError
from repro.graph.digraph import DirectedGraph
from repro.graph.views import relabeled, reversed_view, simplified, subgraph, transpose


class TestTranspose:
    def test_transpose_reverses_edges(self, triangle):
        reversed_graph = transpose(triangle)
        for edge in triangle.edges():
            assert reversed_graph.has_edge(edge.target, edge.source)

    def test_transpose_is_involution(self, mixed_graph):
        assert transpose(transpose(mixed_graph)) == mixed_graph

    def test_transpose_keeps_labels(self, triangle):
        assert sorted(transpose(triangle).labels()) == sorted(triangle.labels())

    def test_reversed_view_alias(self, triangle):
        assert reversed_view(triangle) == transpose(triangle)

    def test_transpose_custom_name(self, triangle):
        assert transpose(triangle, name="rev").name == "rev"


class TestSubgraph:
    def test_induced_subgraph_keeps_internal_edges(self, mixed_graph):
        induced, mapping = subgraph(mixed_graph, ["X", "Y", "Z"])
        assert induced.number_of_nodes() == 3
        # The X-Y-Z core is fully reciprocated: 6 internal edges.
        assert induced.number_of_edges() == 6
        assert set(mapping) == {mixed_graph.resolve(l) for l in ("X", "Y", "Z")}

    def test_subgraph_drops_external_edges(self, mixed_graph):
        induced, _ = subgraph(mixed_graph, ["X", "P"])
        assert induced.number_of_edges() == 1  # only X -> P survives
        assert induced.has_edge("X", "P")

    def test_subgraph_deduplicates_input(self, triangle):
        induced, _ = subgraph(triangle, ["A", "A", "B"])
        assert induced.number_of_nodes() == 2

    def test_subgraph_unknown_node_fails(self, triangle):
        with pytest.raises(NodeNotFoundError):
            subgraph(triangle, ["A", "missing"])

    def test_subgraph_name(self, triangle):
        induced, _ = subgraph(triangle, ["A"], name="piece")
        assert induced.name == "piece"


class TestRelabeled:
    def test_relabeling_replaces_labels(self, triangle):
        renamed = relabeled(triangle, {"A": "Alpha"})
        assert renamed.has_label("Alpha")
        assert not renamed.has_label("A")
        assert renamed.number_of_edges() == triangle.number_of_edges()

    def test_relabeling_that_merges_fails(self, triangle):
        with pytest.raises(GraphError):
            relabeled(triangle, {"A": "B"})

    def test_relabeling_preserves_structure(self, two_triangles):
        renamed = relabeled(two_triangles, {"R": "Root"})
        assert renamed.has_edge("Root", "A")
        assert renamed.has_edge("B", "Root")


class TestSimplified:
    def test_self_loops_removed(self):
        graph = DirectedGraph()
        graph.add_edge("A", "A")
        graph.add_edge("A", "B")
        cleaned = simplified(graph)
        assert cleaned.number_of_edges() == 1
        assert not cleaned.has_self_loop("A")

    def test_simplified_without_self_loops_is_identity(self, triangle):
        assert simplified(triangle) == triangle

    def test_simplified_preserves_unlabelled_nodes(self):
        graph = DirectedGraph()
        graph.add_nodes(3)
        graph.add_edge(0, 0)
        graph.add_edge(0, 1)
        cleaned = simplified(graph)
        assert cleaned.number_of_nodes() == 3
        assert cleaned.number_of_edges() == 1
