"""Unit tests for :mod:`repro.ranking.result`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import NodeNotFoundError
from repro.ranking.result import Ranking, ScoredNode


def make_ranking() -> Ranking:
    return Ranking(
        [0.1, 0.5, 0.2, 0.2],
        labels=["a", "b", "c", "d"],
        algorithm="Test",
        parameters={"alpha": 0.5},
        graph_name="toy",
        reference="b",
    )


class TestConstruction:
    def test_from_sequence(self):
        ranking = make_ranking()
        assert len(ranking) == 4
        assert ranking.score_of("b") == pytest.approx(0.5)

    def test_from_mapping(self):
        ranking = Ranking({0: 1.0, 2: 3.0}, labels=["x", "y", "z"])
        assert ranking.score_of("y") == 0.0
        assert ranking.score_of("z") == 3.0

    def test_from_numpy_array_is_copied(self):
        scores = np.array([1.0, 2.0])
        ranking = Ranking(scores)
        scores[0] = 99.0
        assert ranking.score_of(0) == 1.0

    def test_negative_node_in_mapping_fails(self):
        with pytest.raises(NodeNotFoundError):
            Ranking({-1: 1.0})

    def test_too_few_labels_fails(self):
        with pytest.raises(ValueError):
            Ranking([1.0, 2.0], labels=["only"])

    def test_default_labels(self):
        ranking = Ranking([1.0, 2.0])
        assert ranking.label_of(0) == "#0"

    def test_empty_ranking(self):
        ranking = Ranking([])
        assert len(ranking) == 0
        assert ranking.top(5) == []
        assert ranking.total() == 0.0


class TestOrderingAndRanks:
    def test_rank_follows_descending_score(self):
        ranking = make_ranking()
        assert ranking.rank_of("b") == 1
        assert ranking.rank_of("a") == 4

    def test_ties_broken_by_label(self):
        ranking = make_ranking()
        # c and d tie at 0.2; "c" < "d" lexicographically.
        assert ranking.rank_of("c") == 2
        assert ranking.rank_of("d") == 3

    def test_top_k(self):
        ranking = make_ranking()
        top = ranking.top(2)
        assert [entry.label for entry in top] == ["b", "c"]
        assert all(isinstance(entry, ScoredNode) for entry in top)
        assert top[0].rank == 1

    def test_top_with_exclusion(self):
        ranking = make_ranking()
        assert ranking.top_labels(2, exclude=("b",)) == ["c", "d"]

    def test_top_k_larger_than_size(self):
        assert len(make_ranking().top(100)) == 4

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            make_ranking().top(-1)

    def test_ordered_nodes_consistent_with_ranks(self):
        ranking = make_ranking()
        for position, node in enumerate(ranking.ordered_nodes(), start=1):
            assert ranking.rank_of(node) == position

    def test_iteration_yields_every_node_in_order(self):
        entries = list(make_ranking())
        assert [entry.rank for entry in entries] == [1, 2, 3, 4]

    def test_scored_node_tuple(self):
        entry = make_ranking().top(1)[0]
        assert entry.as_tuple() == (1, "b", 0.5, 1)


class TestLookups:
    def test_score_and_rank_by_id_or_label(self):
        ranking = make_ranking()
        assert ranking.score_of(1) == ranking.score_of("b")
        assert ranking.rank_of(1) == ranking.rank_of("b")

    def test_unknown_lookups_fail(self):
        ranking = make_ranking()
        with pytest.raises(NodeNotFoundError):
            ranking.score_of("missing")
        with pytest.raises(NodeNotFoundError):
            ranking.score_of(77)
        with pytest.raises(NodeNotFoundError):
            ranking.label_of(77)

    def test_contains(self):
        ranking = make_ranking()
        assert "a" in ranking
        assert 0 in ranking
        assert "zz" not in ranking
        assert 9 not in ranking
        assert None not in ranking

    def test_nonzero_count_and_total(self):
        ranking = Ranking([0.0, 1.0, 2.0])
        assert ranking.nonzero_count() == 2
        assert ranking.total() == pytest.approx(3.0)

    def test_as_dict_and_label_dict(self):
        ranking = make_ranking()
        assert ranking.as_dict()[1] == pytest.approx(0.5)
        assert ranking.as_label_dict()["b"] == pytest.approx(0.5)


class TestTransformsAndSerialisation:
    def test_normalized(self):
        ranking = Ranking([1.0, 3.0])
        normalized = ranking.normalized()
        assert normalized.total() == pytest.approx(1.0)
        assert normalized.score_of(1) == pytest.approx(0.75)

    def test_normalized_of_all_zero_is_noop(self):
        ranking = Ranking([0.0, 0.0])
        assert ranking.normalized().total() == 0.0

    def test_describe_mentions_provenance(self):
        text = make_ranking().describe()
        assert "Test" in text
        assert "alpha=0.5" in text
        assert "toy" in text

    def test_to_dict_from_dict_round_trip(self):
        ranking = make_ranking()
        restored = Ranking.from_dict(ranking.to_dict())
        assert restored.algorithm == ranking.algorithm
        assert restored.reference == ranking.reference
        assert restored.top_labels(4) == ranking.top_labels(4)
        assert np.allclose(restored.scores, ranking.scores)

    def test_repr_contains_top_entries(self):
        assert "b=" in repr(make_ranking())
