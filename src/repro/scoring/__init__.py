"""Scoring functions σ(n) used by CycleRank (Equation 1 of the paper).

The CycleRank score of node ``i`` with respect to reference ``r`` is

.. math::

    CR_{r,K}(i) = \\sum_{n=2}^{K} \\sigma(n) \\cdot c_{r,n}(i)

where ``c_{r,n}(i)`` counts the cycles of length ``n`` through both ``r`` and
``i`` and σ weights shorter cycles more heavily.  The paper uses the
exponential damping σ(n) = e⁻ⁿ ("experimentally found to be the best choice
for Wikipedia"); this module also provides the linear, quadratic and constant
alternatives studied in the original CycleRank article, and a registry so the
scoring function can be selected by name from task parameters.
"""

from __future__ import annotations

from .functions import (
    ConstantScoring,
    ExponentialScoring,
    LinearScoring,
    QuadraticScoring,
    ScoringFunction,
    available_scoring_functions,
    get_scoring_function,
    register_scoring_function,
)

__all__ = [
    "ScoringFunction",
    "ExponentialScoring",
    "LinearScoring",
    "QuadraticScoring",
    "ConstantScoring",
    "get_scoring_function",
    "register_scoring_function",
    "available_scoring_functions",
]
