"""Concrete scoring functions and their registry.

Each scoring function maps a cycle length ``n >= 2`` to a positive weight.
Shorter cycles indicate a tighter relationship between the reference node and
the nodes on the cycle, so every provided function is non-increasing in ``n``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, List, Type

from ..exceptions import InvalidParameterError

__all__ = [
    "ScoringFunction",
    "ExponentialScoring",
    "LinearScoring",
    "QuadraticScoring",
    "ConstantScoring",
    "register_scoring_function",
    "get_scoring_function",
    "available_scoring_functions",
]


class ScoringFunction(ABC):
    """Weight assigned to a cycle as a function of its length.

    Subclasses implement :meth:`weight`; the instance is callable for
    convenience (``sigma(n)``).
    """

    #: Registry name; subclasses must override.
    name: str = ""

    @abstractmethod
    def weight(self, cycle_length: int) -> float:
        """Return the weight of a cycle of length ``cycle_length`` (>= 2)."""

    def __call__(self, cycle_length: int) -> float:
        if cycle_length < 2:
            raise InvalidParameterError(
                f"cycles have length >= 2, got {cycle_length}"
            )
        return self.weight(cycle_length)

    def weights_up_to(self, max_length: int) -> List[float]:
        """Return the weights for every length ``2 .. max_length`` (inclusive).

        CycleRank precomputes this table once per run instead of calling the
        scoring function on every enumerated cycle.
        """
        if max_length < 2:
            raise InvalidParameterError(f"max_length must be >= 2, got {max_length}")
        return [self.weight(n) for n in range(2, max_length + 1)]

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self))


class ExponentialScoring(ScoringFunction):
    """σ(n) = e⁻ⁿ — the paper's default (used in Tables I, II and III)."""

    name = "exp"

    def weight(self, cycle_length: int) -> float:
        return math.exp(-cycle_length)


class LinearScoring(ScoringFunction):
    """σ(n) = 1 / n — linear damping of longer cycles."""

    name = "lin"

    def weight(self, cycle_length: int) -> float:
        return 1.0 / cycle_length


class QuadraticScoring(ScoringFunction):
    """σ(n) = 1 / n² — quadratic damping of longer cycles."""

    name = "quad"

    def weight(self, cycle_length: int) -> float:
        return 1.0 / (cycle_length * cycle_length)


class ConstantScoring(ScoringFunction):
    """σ(n) = 1 — pure cycle counting, no length damping."""

    name = "const"

    def weight(self, cycle_length: int) -> float:
        return 1.0


_REGISTRY: Dict[str, Type[ScoringFunction]] = {}


def register_scoring_function(cls: Type[ScoringFunction]) -> Type[ScoringFunction]:
    """Register a scoring-function class under its ``name`` attribute.

    Can be used as a decorator for user-defined scoring functions::

        @register_scoring_function
        class MyScoring(ScoringFunction):
            name = "mine"
            def weight(self, cycle_length):
                return 2.0 ** -cycle_length
    """
    if not cls.name:
        raise InvalidParameterError(f"{cls.__name__} must define a non-empty 'name'")
    _REGISTRY[cls.name] = cls
    return cls


for _builtin in (ExponentialScoring, LinearScoring, QuadraticScoring, ConstantScoring):
    register_scoring_function(_builtin)


def get_scoring_function(name_or_instance) -> ScoringFunction:
    """Resolve a scoring function from a name, class, or instance.

    Accepts the registry names (``"exp"``, ``"lin"``, ``"quad"``, ``"const"``),
    an already-constructed :class:`ScoringFunction`, or a subclass of it.
    """
    if isinstance(name_or_instance, ScoringFunction):
        return name_or_instance
    if isinstance(name_or_instance, type) and issubclass(name_or_instance, ScoringFunction):
        return name_or_instance()
    if isinstance(name_or_instance, str):
        cls = _REGISTRY.get(name_or_instance)
        if cls is None:
            raise InvalidParameterError(
                f"unknown scoring function {name_or_instance!r}; "
                f"available: {', '.join(sorted(_REGISTRY))}"
            )
        return cls()
    raise InvalidParameterError(
        f"cannot interpret {name_or_instance!r} as a scoring function"
    )


def available_scoring_functions() -> List[str]:
    """Return the names of all registered scoring functions, sorted."""
    return sorted(_REGISTRY)
