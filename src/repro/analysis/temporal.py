"""Comparing snapshots of a dataset over time.

The paper's dataset-comparison use case has a temporal flavour the demo also
supports: "a similar analysis can also be performed by comparing snapshots of
a graph at different points in time".  :func:`snapshot_comparison` runs the
same algorithm and reference node over a sequence of snapshots (e.g. the
yearly WikiLinkGraphs dumps) and packages:

* the side-by-side top-k table (one column per snapshot),
* the head stability between consecutive snapshots (overlap@k),
* simple size statistics showing how the graph — and the query's
  neighbourhood — grew over time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..algorithms.registry import get_algorithm
from ..exceptions import InvalidParameterError
from ..graph.digraph import DirectedGraph
from ..ranking.comparison import ComparisonTable, dataset_comparison
from ..ranking.metrics import overlap_at_k
from ..ranking.result import Ranking

__all__ = ["SnapshotComparison", "snapshot_comparison"]


@dataclass
class SnapshotComparison:
    """The result of running one query across several snapshots of a dataset."""

    algorithm: str
    reference: Optional[str]
    snapshots: List[str]
    rankings: Dict[str, Ranking] = field(default_factory=dict)
    graph_sizes: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def table(self, k: int = 5) -> ComparisonTable:
        """Return the one-column-per-snapshot top-k table."""
        return dataset_comparison(
            {snapshot: self.rankings[snapshot] for snapshot in self.snapshots},
            k=k,
            title=(
                f"Top-{k} results of {self.algorithm} for {self.reference!r} "
                "across snapshots"
            ),
        )

    def head_stability(self, k: int = 5) -> Dict[str, float]:
        """Return overlap@k between each snapshot and the one before it.

        Keys are ``"<previous> -> <current>"``; an empty dict if fewer than
        two snapshots were compared.
        """
        stability = {}
        for previous, current in zip(self.snapshots, self.snapshots[1:]):
            stability[f"{previous} -> {current}"] = overlap_at_k(
                self.rankings[previous], self.rankings[current], k
            )
        return stability

    def newcomers(self, k: int = 5) -> Dict[str, List[str]]:
        """Return, per snapshot, the top-k labels absent from the previous snapshot's top-k."""
        result: Dict[str, List[str]] = {}
        for previous, current in zip(self.snapshots, self.snapshots[1:]):
            previous_top = set(self.rankings[previous].top_labels(k))
            current_top = self.rankings[current].top_labels(k)
            result[current] = [label for label in current_top if label not in previous_top]
        return result

    def to_text(self, k: int = 5) -> str:
        """Render the table, growth statistics and stability as plain text."""
        lines = [self.table(k).to_text(), "", "Snapshot sizes:"]
        for snapshot in self.snapshots:
            sizes = self.graph_sizes.get(snapshot, {})
            lines.append(
                f"  {snapshot}: {sizes.get('nodes', '?')} nodes, "
                f"{sizes.get('edges', '?')} edges"
            )
        stability = self.head_stability(k)
        if stability:
            lines.append("")
            lines.append(f"Head stability (overlap@{k}) between consecutive snapshots:")
            for transition, value in stability.items():
                lines.append(f"  {transition}: {value:.2f}")
        return "\n".join(lines)


def snapshot_comparison(
    snapshots: Mapping[str, DirectedGraph] | Sequence[str],
    algorithm: str,
    *,
    source: Optional[str] = None,
    parameters: Optional[Mapping[str, object]] = None,
    loader: Optional[Callable[[str], DirectedGraph]] = None,
) -> SnapshotComparison:
    """Run the same query across several snapshots of a dataset.

    Parameters
    ----------
    snapshots:
        Either a mapping ``snapshot label -> graph`` (insertion order is the
        temporal order) or a sequence of snapshot labels resolved through
        ``loader``.
    algorithm:
        Registry name of the algorithm to run (e.g. ``"cyclerank"``).
    source:
        Reference node label for personalized algorithms.
    parameters:
        Algorithm parameters (validated against the algorithm's spec).
    loader:
        Required when ``snapshots`` is a sequence of labels: a callable
        mapping each label to its graph (e.g. a dataset-catalog ``load``).

    Notes
    -----
    Snapshots in which the reference node does not exist yet are skipped and
    do not appear in the result — articles are created over time, so older
    wikilink snapshots may simply not contain the query article.
    """
    if isinstance(snapshots, Mapping):
        materialised: Dict[str, DirectedGraph] = dict(snapshots)
    else:
        if loader is None:
            raise InvalidParameterError(
                "a loader is required when snapshots are given as labels"
            )
        materialised = {label: loader(label) for label in snapshots}
    if not materialised:
        raise InvalidParameterError("snapshot_comparison needs at least one snapshot")

    algorithm_impl = get_algorithm(algorithm)
    comparison = SnapshotComparison(
        algorithm=algorithm_impl.display_name,
        reference=source,
        snapshots=[],
    )
    for label, graph in materialised.items():
        if algorithm_impl.is_personalized and source is not None and not graph.has_label(source):
            continue
        ranking = algorithm_impl.run(graph, source=source, parameters=dict(parameters or {}))
        comparison.snapshots.append(label)
        comparison.rankings[label] = ranking
        comparison.graph_sizes[label] = {
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
        }
    if not comparison.snapshots:
        raise InvalidParameterError(
            f"the reference node {source!r} is not present in any of the snapshots"
        )
    return comparison
