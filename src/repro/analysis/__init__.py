"""Higher-level analyses built on top of the ranking algorithms.

Three analyses complement the demo's two headline use cases:

``temporal``
    The paper notes that "a similar analysis can also be performed by
    comparing snapshots of a graph at different points in time, another
    functionality available in the demo".  :func:`snapshot_comparison` runs
    the same query across the yearly snapshots of a dataset family and
    reports how the ranking evolves.

``agreement``
    Pairwise agreement between algorithms on the same query (overlap@k,
    Kendall's tau, rank-biased overlap), summarising the algorithm-comparison
    use case in one matrix instead of eyeballing top-5 tables.

``popularity``
    A quantitative form of the paper's central qualitative claim — that
    Personalized PageRank over-promotes globally popular nodes while
    CycleRank does not.  :func:`popularity_bias` measures how strongly a
    personalized ranking's head correlates with global popularity (in-degree
    or global PageRank), so the claim becomes a number that can be compared
    across algorithms and asserted in tests and benchmarks.
"""

from __future__ import annotations

from .agreement import AgreementMatrix, agreement_matrix
from .popularity import PopularityBiasReport, popularity_bias, popularity_bias_report
from .temporal import SnapshotComparison, snapshot_comparison

__all__ = [
    "AgreementMatrix",
    "agreement_matrix",
    "popularity_bias",
    "popularity_bias_report",
    "PopularityBiasReport",
    "snapshot_comparison",
    "SnapshotComparison",
]
