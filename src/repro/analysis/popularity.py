"""Quantifying the "popular node" bias of personalized rankings.

The paper's central qualitative observation is that Personalized PageRank
"tends to assign a high score to nodes with high global centrality in the
graph, regardless of the query node", while CycleRank does not.  This module
turns that observation into a measurement:

* :func:`popularity_bias` — given a personalized ranking and a notion of
  global popularity (raw in-degree or global PageRank), return the average
  popularity *percentile* of the ranking's top-k (excluding the reference).
  A value near 1.0 means the head of the ranking is made of the globally
  most popular nodes; a value near 0.5 means the head looks like a random
  sample with respect to popularity.
* :func:`popularity_bias_report` — compute the bias for several rankings of
  the same graph side by side, which is what the popularity-bias ablation
  benchmark prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from .._validation import require_one_of, require_positive_int
from ..algorithms.pagerank import pagerank
from ..exceptions import InvalidParameterError
from ..graph.digraph import DirectedGraph
from ..ranking.result import Ranking

__all__ = ["popularity_bias", "popularity_bias_report", "PopularityBiasReport"]

#: Supported notions of global popularity.
POPULARITY_MEASURES = ("in-degree", "pagerank")


def _popularity_percentiles(
    graph: DirectedGraph, measure: str, *, alpha: float = 0.85
) -> Dict[str, float]:
    """Return each node label's popularity percentile in [0, 1]."""
    require_one_of(measure, "measure", POPULARITY_MEASURES)
    if measure == "in-degree":
        values = np.asarray(graph.in_degrees(), dtype=np.float64)
    else:
        values = pagerank(graph, alpha=alpha).scores
    n = values.size
    if n == 0:
        return {}
    # Percentile by rank: the most popular node gets 1.0, the least popular
    # 1/n; ties share the average of their positions.
    order = np.argsort(np.argsort(values, kind="stable"), kind="stable") + 1
    # Handle ties by averaging positions of equal values.
    percentiles = np.empty(n, dtype=np.float64)
    unique_values = {}
    for node, value in enumerate(values):
        unique_values.setdefault(float(value), []).append(node)
    for nodes in unique_values.values():
        mean_position = float(np.mean([order[node] for node in nodes]))
        for node in nodes:
            percentiles[node] = mean_position / n
    return {graph.label_of(node): float(percentiles[node]) for node in graph.nodes()}


def popularity_bias(
    ranking: Ranking,
    graph: DirectedGraph,
    *,
    k: int = 10,
    measure: str = "in-degree",
    exclude_reference: bool = True,
) -> float:
    """Return the mean global-popularity percentile of the ranking's top-k.

    Parameters
    ----------
    ranking:
        A (typically personalized) ranking over ``graph``.
    graph:
        The graph the ranking was computed on.
    k:
        How many head entries to average over.
    measure:
        ``"in-degree"`` (default) or ``"pagerank"``.
    exclude_reference:
        Drop the reference node itself before taking the top-k (it is
        trivially at the top of every personalized ranking).

    Returns
    -------
    float
        Mean percentile in [0, 1]; higher means the ranking's head is made of
        globally popular nodes.  Returns ``float("nan")`` for an empty head.
    """
    require_positive_int(k, "k")
    percentiles = _popularity_percentiles(graph, measure)
    exclude = ()
    if exclude_reference and ranking.reference:
        exclude = (ranking.reference,)
    head = ranking.top_labels(k, exclude=exclude)
    head = [label for label in head if ranking.score_of(label) > 0 or not exclude_reference]
    if not head:
        return float("nan")
    missing = [label for label in head if label not in percentiles]
    if missing:
        raise InvalidParameterError(
            f"ranking labels not present in the graph: {', '.join(missing[:3])}"
        )
    return float(np.mean([percentiles[label] for label in head]))


@dataclass
class PopularityBiasReport:
    """Popularity bias of several rankings over the same graph."""

    graph_name: str
    measure: str
    k: int
    biases: Dict[str, float] = field(default_factory=dict)

    def ordered(self) -> List[tuple]:
        """Return ``(name, bias)`` pairs sorted from most to least biased."""
        return sorted(self.biases.items(), key=lambda item: -item[1])

    def most_biased(self) -> str:
        """Return the name of the most popularity-biased ranking."""
        return self.ordered()[0][0]

    def least_biased(self) -> str:
        """Return the name of the least popularity-biased ranking."""
        return self.ordered()[-1][0]

    def to_text(self) -> str:
        """Render the report as aligned plain text."""
        width = max(len(name) for name in self.biases) + 2
        lines = [
            f"Popularity bias ({self.measure} percentile of the top-{self.k}) on "
            f"{self.graph_name}",
        ]
        for name, bias in self.ordered():
            lines.append(f"  {name.ljust(width)} {bias:.3f}")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        """Serialise the report to plain Python types."""
        return {
            "graph_name": self.graph_name,
            "measure": self.measure,
            "k": self.k,
            "biases": dict(self.biases),
        }


def popularity_bias_report(
    rankings: Mapping[str, Ranking],
    graph: DirectedGraph,
    *,
    k: int = 10,
    measure: str = "in-degree",
) -> PopularityBiasReport:
    """Compute :func:`popularity_bias` for several rankings of the same graph."""
    if not rankings:
        raise InvalidParameterError("popularity_bias_report needs at least one ranking")
    report = PopularityBiasReport(graph_name=graph.name, measure=measure, k=k)
    for name, ranking in rankings.items():
        report.biases[name] = popularity_bias(ranking, graph, k=k, measure=measure)
    return report
