"""Pairwise agreement between rankings produced by different algorithms.

The demo's algorithm-comparison use case shows top-5 columns side by side;
this module condenses any number of rankings over the same graph into a
symmetric agreement matrix under a chosen measure (overlap@k, Jaccard@k,
Kendall's tau, Spearman's rho, or rank-biased overlap), plus helpers to find
the most- and least-agreeing pairs — e.g. "Personalized PageRank agrees far
more with global PageRank than CycleRank does", which is the paper's point
rendered quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Tuple

from ..exceptions import InvalidParameterError
from ..ranking.metrics import (
    jaccard_at_k,
    kendall_tau,
    overlap_at_k,
    rank_biased_overlap,
    spearman_rho,
)
from ..ranking.result import Ranking

__all__ = ["AgreementMatrix", "agreement_matrix", "AGREEMENT_MEASURES"]

#: Measures usable by :func:`agreement_matrix`.  Each maps two rankings to a
#: similarity in [-1, 1] (correlations) or [0, 1] (set-overlap measures).
AGREEMENT_MEASURES: Dict[str, Callable[..., float]] = {
    "overlap": overlap_at_k,
    "jaccard": jaccard_at_k,
    "kendall": kendall_tau,
    "spearman": spearman_rho,
    "rbo": rank_biased_overlap,
}


@dataclass
class AgreementMatrix:
    """A symmetric matrix of pairwise ranking agreement.

    Attributes
    ----------
    names:
        Ranking (column) names, in display order.
    values:
        ``values[i][j]`` is the agreement between ``names[i]`` and
        ``names[j]``; the diagonal is the measure's self-agreement (1.0).
    measure:
        Name of the measure used (one of :data:`AGREEMENT_MEASURES`).
    k:
        Depth used by the set-overlap measures (ignored by correlations).
    """

    names: List[str]
    values: List[List[float]]
    measure: str
    k: int = 10
    metadata: Dict[str, object] = field(default_factory=dict)

    def value(self, first: str, second: str) -> float:
        """Return the agreement between two named rankings."""
        return self.values[self.names.index(first)][self.names.index(second)]

    def pairs_by_agreement(self) -> List[Tuple[str, str, float]]:
        """Return every unordered pair sorted by decreasing agreement."""
        pairs = []
        for i, first in enumerate(self.names):
            for j in range(i + 1, len(self.names)):
                pairs.append((first, self.names[j], self.values[i][j]))
        return sorted(pairs, key=lambda entry: -entry[2])

    def most_similar_pair(self) -> Tuple[str, str, float]:
        """Return the pair of rankings that agree the most."""
        return self.pairs_by_agreement()[0]

    def least_similar_pair(self) -> Tuple[str, str, float]:
        """Return the pair of rankings that agree the least."""
        return self.pairs_by_agreement()[-1]

    def to_text(self) -> str:
        """Render the matrix as aligned plain text."""
        width = max(12, max(len(name) for name in self.names) + 2)
        lines = [f"Pairwise {self.measure} agreement (k={self.k})"]
        header = " " * width + "".join(name.rjust(width) for name in self.names)
        lines.append(header)
        for name, row in zip(self.names, self.values):
            lines.append(name.rjust(width) + "".join(f"{value:>{width}.3f}" for value in row))
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        """Serialise the matrix to plain Python types."""
        return {
            "names": list(self.names),
            "values": [list(row) for row in self.values],
            "measure": self.measure,
            "k": self.k,
            "metadata": dict(self.metadata),
        }


def agreement_matrix(
    rankings: Mapping[str, Ranking],
    *,
    measure: str = "overlap",
    k: int = 10,
) -> AgreementMatrix:
    """Compute the pairwise agreement matrix of several rankings.

    Parameters
    ----------
    rankings:
        Mapping from display name to ranking; all rankings should cover the
        same graph (they are matched by node label).
    measure:
        One of ``"overlap"``, ``"jaccard"``, ``"kendall"``, ``"spearman"``,
        ``"rbo"``.
    k:
        Depth for the set-overlap measures (``overlap`` / ``jaccard``) and
        for ``rbo``'s truncation.
    """
    if len(rankings) < 2:
        raise InvalidParameterError("agreement_matrix needs at least two rankings")
    if measure not in AGREEMENT_MEASURES:
        raise InvalidParameterError(
            f"unknown agreement measure {measure!r}; "
            f"available: {', '.join(sorted(AGREEMENT_MEASURES))}"
        )
    function = AGREEMENT_MEASURES[measure]
    names = list(rankings)
    values: List[List[float]] = []
    for first in names:
        row = []
        for second in names:
            if first == second:
                row.append(1.0)
                continue
            if measure in ("overlap", "jaccard"):
                row.append(function(rankings[first], rankings[second], k))
            elif measure == "rbo":
                row.append(function(rankings[first], rankings[second], depth=k))
            else:
                row.append(function(rankings[first], rankings[second]))
        values.append(row)
    graph_names = {ranking.graph_name for ranking in rankings.values() if ranking.graph_name}
    return AgreementMatrix(
        names=names,
        values=values,
        measure=measure,
        k=k,
        metadata={"datasets": sorted(graph_names)},
    )
