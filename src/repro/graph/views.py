"""Graph transformations: transpose, subgraph extraction, relabelling.

All functions in this module return a *new* :class:`DirectedGraph`; the input
graph is never modified.  They are deliberately simple copies rather than lazy
views because the graphs of the paper (wikilink snapshots, co-purchase
networks) are small enough at reproduction scale that copying is cheaper than
the indirection a true view would add to every algorithm's inner loop.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..exceptions import GraphError
from .digraph import DirectedGraph, NodeRef

__all__ = ["transpose", "reversed_view", "subgraph", "relabeled", "simplified"]


def transpose(graph: DirectedGraph, *, name: Optional[str] = None) -> DirectedGraph:
    """Return a new graph with every edge reversed.

    The transpose is the substrate of CheiRank: ``CheiRank(G) == PageRank(Gᵀ)``.
    """
    return graph.transpose(name=name)


def reversed_view(graph: DirectedGraph) -> DirectedGraph:
    """Alias of :func:`transpose`, matching networkx terminology."""
    return transpose(graph)


def subgraph(
    graph: DirectedGraph,
    nodes: Iterable[NodeRef],
    *,
    name: Optional[str] = None,
) -> Tuple[DirectedGraph, Dict[int, int]]:
    """Extract the subgraph induced by ``nodes``.

    Returns
    -------
    (subgraph, mapping):
        ``subgraph`` is a new graph whose node ids are renumbered densely;
        ``mapping`` maps original node ids to subgraph node ids.
    """
    resolved = []
    seen = set()
    for ref in nodes:
        node = graph.resolve(ref)
        if node not in seen:
            seen.add(node)
            resolved.append(node)
    induced = DirectedGraph(name=name if name is not None else f"{graph.name}-subgraph")
    mapping: Dict[int, int] = {}
    for node in resolved:
        mapping[node] = induced.add_node(graph.raw_label_of(node) or f"#{node}")
    for node in resolved:
        for successor in graph.successors(node):
            if successor in mapping:
                induced.add_edge(mapping[node], mapping[successor])
    return induced, mapping


def relabeled(
    graph: DirectedGraph,
    mapping: Mapping[str, str],
    *,
    name: Optional[str] = None,
) -> DirectedGraph:
    """Return a copy of ``graph`` with node labels replaced via ``mapping``.

    Labels not present in ``mapping`` are kept unchanged.  The mapping must not
    merge two distinct labels into one.
    """
    new_labels = {}
    for node in graph.nodes():
        old = graph.label_of(node)
        new = mapping.get(old, old)
        if new in new_labels.values():
            raise GraphError(f"relabeling would merge two nodes into label {new!r}")
        new_labels[node] = new
    result = DirectedGraph(name=name if name is not None else graph.name)
    for node in graph.nodes():
        result.add_node(new_labels[node])
    for edge in graph.edges():
        result.add_edge(edge.source, edge.target)
    return result


def simplified(graph: DirectedGraph, *, name: Optional[str] = None) -> DirectedGraph:
    """Return a copy of ``graph`` without self loops.

    Parallel edges cannot occur in :class:`DirectedGraph` (they are collapsed
    on insertion), so removing self loops is all that is needed to obtain the
    simple directed graph the paper's algorithms are defined on.
    """
    result = DirectedGraph(name=name if name is not None else graph.name)
    for node in graph.nodes():
        result.add_node(graph.raw_label_of(node) or f"#{node}")
    for edge in graph.edges():
        if edge.source != edge.target:
            result.add_edge(edge.source, edge.target)
    return result
