"""Breadth-first / depth-first traversal utilities.

These helpers back the CycleRank pruning step (nodes that cannot reach the
reference node within the cycle-length budget can be discarded before cycle
enumeration) and several dataset-analysis functions.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set

from .digraph import DirectedGraph, NodeRef

__all__ = [
    "bfs_order",
    "bfs_tree",
    "dfs_order",
    "descendants",
    "ancestors",
    "shortest_path_lengths",
    "nodes_within_distance",
]


def bfs_order(graph: DirectedGraph, source: NodeRef) -> List[int]:
    """Return nodes reachable from ``source`` in breadth-first order."""
    start = graph.resolve(source)
    seen = {start}
    order = [start]
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for neighbour in sorted(graph.successors(node)):
            if neighbour not in seen:
                seen.add(neighbour)
                order.append(neighbour)
                queue.append(neighbour)
    return order


def bfs_tree(graph: DirectedGraph, source: NodeRef) -> Dict[int, Optional[int]]:
    """Return the BFS parent of every reachable node (``None`` for the source)."""
    start = graph.resolve(source)
    parents: Dict[int, Optional[int]] = {start: None}
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for neighbour in sorted(graph.successors(node)):
            if neighbour not in parents:
                parents[neighbour] = node
                queue.append(neighbour)
    return parents


def dfs_order(graph: DirectedGraph, source: NodeRef) -> List[int]:
    """Return nodes reachable from ``source`` in (pre-order) depth-first order."""
    start = graph.resolve(source)
    seen: Set[int] = set()
    order: List[int] = []
    stack = [start]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        order.append(node)
        # Reverse-sorted push so that smaller ids are visited first.
        for neighbour in sorted(graph.successors(node), reverse=True):
            if neighbour not in seen:
                stack.append(neighbour)
    return order


def descendants(graph: DirectedGraph, source: NodeRef) -> Set[int]:
    """Return every node reachable from ``source`` (excluding ``source`` itself)."""
    start = graph.resolve(source)
    reachable = set(bfs_order(graph, start))
    reachable.discard(start)
    return reachable


def ancestors(graph: DirectedGraph, target: NodeRef) -> Set[int]:
    """Return every node that can reach ``target`` (excluding ``target`` itself)."""
    end = graph.resolve(target)
    seen = {end}
    queue = deque([end])
    while queue:
        node = queue.popleft()
        for predecessor in sorted(graph.predecessors(node)):
            if predecessor not in seen:
                seen.add(predecessor)
                queue.append(predecessor)
    seen.discard(end)
    return seen


def shortest_path_lengths(
    graph: DirectedGraph,
    source: NodeRef,
    *,
    reverse: bool = False,
    cutoff: Optional[int] = None,
) -> Dict[int, int]:
    """Return unweighted shortest-path lengths from ``source``.

    Parameters
    ----------
    reverse:
        When ``True`` follow edges backwards, i.e. compute distances *to*
        ``source`` instead of from it.
    cutoff:
        Stop expanding once this distance is reached (inclusive).
    """
    start = graph.resolve(source)
    distances = {start: 0}
    queue = deque([start])
    while queue:
        node = queue.popleft()
        distance = distances[node]
        if cutoff is not None and distance >= cutoff:
            continue
        neighbours = graph.predecessors(node) if reverse else graph.successors(node)
        for neighbour in sorted(neighbours):
            if neighbour not in distances:
                distances[neighbour] = distance + 1
                queue.append(neighbour)
    return distances


def nodes_within_distance(
    graph: DirectedGraph,
    source: NodeRef,
    max_distance: int,
    *,
    reverse: bool = False,
) -> Set[int]:
    """Return the nodes within ``max_distance`` hops of ``source``."""
    return set(
        shortest_path_lengths(graph, source, reverse=reverse, cutoff=max_distance)
    )
