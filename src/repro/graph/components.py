"""Connected components of directed graphs.

CycleRank only ever assigns a positive score to nodes in the same strongly
connected component (SCC) as the reference node — a cycle through ``r`` and
``i`` requires a path in both directions — so SCC computation is both a
useful pre-filter and the basis of several property tests.

The SCC implementation is an iterative version of Tarjan's algorithm (no
recursion, so it works on graphs far deeper than Python's recursion limit).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .digraph import DirectedGraph, NodeRef

__all__ = [
    "strongly_connected_components",
    "strongly_connected_component_of",
    "weakly_connected_components",
    "is_strongly_connected",
    "is_weakly_connected",
    "condensation",
]


def strongly_connected_components(graph: DirectedGraph) -> List[Set[int]]:
    """Return the strongly connected components of ``graph``.

    The components are returned as a list of sets of node ids, in reverse
    topological order of the condensation (a property of Tarjan's algorithm:
    a component is emitted only after every component it can reach).
    """
    n = graph.number_of_nodes()
    successors = graph.successor_lists()

    index_counter = 0
    indices: List[int] = [-1] * n
    lowlink: List[int] = [0] * n
    on_stack: List[bool] = [False] * n
    stack: List[int] = []
    components: List[Set[int]] = []

    for root in range(n):
        if indices[root] != -1:
            continue
        # Each work-stack entry is (node, iterator position into successors).
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, position = work[-1]
            if position == 0:
                indices[node] = index_counter
                lowlink[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            succ = successors[node]
            while position < len(succ):
                neighbour = succ[position]
                position += 1
                if indices[neighbour] == -1:
                    work[-1] = (node, position)
                    work.append((neighbour, 0))
                    advanced = True
                    break
                if on_stack[neighbour]:
                    lowlink[node] = min(lowlink[node], indices[neighbour])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == indices[node]:
                component: Set[int] = set()
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def strongly_connected_component_of(graph: DirectedGraph, ref: NodeRef) -> Set[int]:
    """Return the SCC containing the node ``ref``."""
    node = graph.resolve(ref)
    for component in strongly_connected_components(graph):
        if node in component:
            return component
    # Unreachable: every node belongs to exactly one SCC.
    return {node}


def weakly_connected_components(graph: DirectedGraph) -> List[Set[int]]:
    """Return the weakly connected components (ignoring edge direction)."""
    n = graph.number_of_nodes()
    seen = [False] * n
    components: List[Set[int]] = []
    for root in range(n):
        if seen[root]:
            continue
        component: Set[int] = set()
        frontier = [root]
        seen[root] = True
        while frontier:
            node = frontier.pop()
            component.add(node)
            for neighbour in graph.successors(node) | graph.predecessors(node):
                if not seen[neighbour]:
                    seen[neighbour] = True
                    frontier.append(neighbour)
        components.append(component)
    return components


def is_strongly_connected(graph: DirectedGraph) -> bool:
    """Return ``True`` if the graph has a single strongly connected component."""
    if graph.number_of_nodes() == 0:
        return True
    return len(strongly_connected_components(graph)) == 1


def is_weakly_connected(graph: DirectedGraph) -> bool:
    """Return ``True`` if the graph has a single weakly connected component."""
    if graph.number_of_nodes() == 0:
        return True
    return len(weakly_connected_components(graph)) == 1


def condensation(graph: DirectedGraph) -> Tuple[DirectedGraph, Dict[int, int]]:
    """Contract each SCC into a single node.

    Returns
    -------
    (dag, membership):
        ``dag`` is the condensation graph (always acyclic, nodes labelled
        ``"scc<i>"``); ``membership`` maps each original node id to its
        condensation node id.
    """
    components = strongly_connected_components(graph)
    membership: Dict[int, int] = {}
    dag = DirectedGraph(name=f"{graph.name}-condensation")
    for component_id, component in enumerate(components):
        dag.add_node(f"scc{component_id}")
        for node in component:
            membership[node] = component_id
    for edge in graph.edges():
        source_component = membership[edge.source]
        target_component = membership[edge.target]
        if source_component != target_component:
            dag.add_edge(source_component, target_component)
    return dag, membership
