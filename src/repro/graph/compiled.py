"""Compiled graph artifact: every derived structure the executors need, built once.

Each relevance algorithm derives the same handful of structures from a
:class:`~repro.graph.digraph.DirectedGraph` before doing any real work — the
CSR adjacency (and its transpose), the out-degree vector, the dangling-node
mask, the :mod:`scipy.sparse` adjacency matrix, and (for CycleRank) flat
adjacency lists the cycle-search engine can walk without per-node dict
lookups.  Rebuilding them per query is pure overhead: on the platform's
dominant workload (many queries against the same dataset) the conversions can
cost more than the algorithms themselves.

:class:`CompiledGraph` bundles those structures as a frozen, lazily-built,
thread-safe artifact.  It is a drop-in stand-in for the source graph —
attribute access falls through to the wrapped :class:`DirectedGraph`, and
``to_csr()`` returns the cached snapshot — so every algorithm (including
user-registered ones that know nothing about artifacts) runs unchanged while
the ones on the hot path pick up the precompiled structures automatically.

The platform caches one ``CompiledGraph`` per dataset version in the
:class:`~repro.platform.datastore.DataStore`; mutating the source graph after
compilation is not supported (take a new artifact instead, which is exactly
what the datastore's version-keyed invalidation does).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import List, Optional, Tuple

import numpy as np

from .csr import CSRGraph
from .digraph import DirectedGraph

__all__ = ["CompiledGraph", "compiled_of"]

#: Distinct (alpha, direction) folded transition matrices retained per
#: artifact; production traffic uses one or two alphas, so a handful covers
#: every realistic workload while bounding an alpha-sweeping client.
MAX_FOLDED_TRANSITIONS = 8

#: Flat adjacency lists: (indptr, indices) for the forward graph followed by
#: (indptr, indices) for the transpose, all as plain Python int lists.
AdjacencyLists = Tuple[List[int], List[int], List[int], List[int]]


class CompiledGraph:
    """Frozen, lazily-built bundle of the derived structures of one graph.

    Every structure is computed at most once (under a lock, so concurrent
    executor threads share a single build) and is immutable afterwards:

    * :meth:`to_csr` — the CSR adjacency snapshot;
    * :meth:`transpose_csr` — the CSR snapshot of the reversed graph;
    * :meth:`out_degrees` / :meth:`dangling_mask` — degree structure used by
      the power-iteration family;
    * :meth:`adjacency` / :meth:`adjacency_transpose` — ``scipy.sparse``
      matrices for the matrix-shaped kernels (HITS, Katz);
    * :meth:`adjacency_lists` — flat Python-list CSR for the cycle engine;
    * :meth:`folded_transition_transpose` — the alpha-folded transposed
      transition matrix the batched power iteration multiplies by, cached
      per ``(alpha, direction)`` so repeat PPR/CheiRank groups skip the
      rebuild.

    Any other attribute (``resolve``, ``labels``, ``successors``, ...) is
    delegated to the wrapped :class:`DirectedGraph`, so a ``CompiledGraph``
    can be handed to any algorithm in place of the graph itself.
    """

    def __init__(self, graph: DirectedGraph, *, csr: Optional[CSRGraph] = None) -> None:
        self._graph = graph
        self._build_lock = threading.Lock()
        #: ``csr`` pre-seeds the snapshot — file-backed datastores recover a
        #: persisted CSR on restart instead of reconverting the graph.
        self._csr: Optional[CSRGraph] = csr
        self._transpose: Optional[CSRGraph] = None
        self._out_degrees: Optional[np.ndarray] = None
        self._dangling: Optional[np.ndarray] = None
        self._scipy_adjacency = None
        self._scipy_transpose = None
        self._lists: Optional[AdjacencyLists] = None
        self._labels_array: Optional[np.ndarray] = None
        #: (alpha, reverse) -> alpha-folded transposed transition matrix; the
        #: batched power iteration fetches these instead of rebuilding per
        #: query group.  Bounded LRU: each entry is an |E|-sized matrix and
        #: the artifact lives as long as the dataset, so a client sweeping
        #: alphas must not grow it without limit.
        self._folded_transitions: "OrderedDict[Tuple[float, bool], object]" = OrderedDict()

    @property
    def graph(self) -> DirectedGraph:
        """Return the wrapped source graph."""
        return self._graph

    @property
    def csr_ready(self) -> bool:
        """Return ``True`` if the CSR snapshot has already been built.

        Kernels with a cheaper direct-from-graph path for one-off queries
        (e.g. CycleRank's short-cycle counting) use this to avoid forcing a
        full compilation on a throwaway artifact while still reusing the CSR
        when the platform hands them a warmed cached one.
        """
        return self._csr is not None

    # ------------------------------------------------------------------ #
    # compiled structures
    # ------------------------------------------------------------------ #
    def to_csr(self) -> CSRGraph:
        """Return the (cached) CSR snapshot of the graph."""
        if self._csr is None:
            with self._build_lock:
                if self._csr is None:
                    self._csr = self._graph.to_csr()
        return self._csr

    def transpose_csr(self) -> CSRGraph:
        """Return the (cached) CSR snapshot of the reversed graph."""
        if self._transpose is None:
            csr = self.to_csr()
            with self._build_lock:
                if self._transpose is None:
                    self._transpose = csr.transpose()
        return self._transpose

    def out_degrees(self) -> np.ndarray:
        """Return the out-degree of every node (cached, do not mutate)."""
        if self._out_degrees is None:
            csr = self.to_csr()
            with self._build_lock:
                if self._out_degrees is None:
                    self._out_degrees = csr.out_degrees()
        return self._out_degrees

    def dangling_mask(self) -> np.ndarray:
        """Return the float mask of dangling nodes (cached, do not mutate)."""
        if self._dangling is None:
            degrees = self.out_degrees()
            with self._build_lock:
                if self._dangling is None:
                    self._dangling = np.asarray(degrees == 0, dtype=np.float64)
        return self._dangling

    def adjacency(self):
        """Return the ``scipy.sparse.csr_matrix`` adjacency (cached, read-only)."""
        if self._scipy_adjacency is None:
            csr = self.to_csr()
            with self._build_lock:
                if self._scipy_adjacency is None:
                    self._scipy_adjacency = csr.to_scipy()
        return self._scipy_adjacency

    def adjacency_transpose(self):
        """Return the ``scipy.sparse.csr_matrix`` of the reversed graph (cached)."""
        if self._scipy_transpose is None:
            transpose = self.transpose_csr()
            with self._build_lock:
                if self._scipy_transpose is None:
                    self._scipy_transpose = transpose.to_scipy()
        return self._scipy_transpose

    def adjacency_lists(self) -> AdjacencyLists:
        """Return flat-list CSR arrays ``(indptr, indices, t_indptr, t_indices)``.

        Plain Python lists index faster than NumPy scalars inside the cycle
        engine's tight search loops; the one-off conversion is cached here so
        a batch (or a cached artifact) pays it a single time.
        """
        if self._lists is None:
            csr = self.to_csr()
            transpose = self.transpose_csr()
            with self._build_lock:
                if self._lists is None:
                    self._lists = (
                        csr.indptr.tolist(),
                        csr.indices.tolist(),
                        transpose.indptr.tolist(),
                        transpose.indices.tolist(),
                    )
        return self._lists

    def folded_transition_transpose(self, alpha: float, *, reverse: bool = False):
        """Return ``alpha * P^T`` in CSR form, cached per ``(alpha, reverse)``.

        ``P`` is the row-stochastic transition matrix of the graph (rows of
        dangling nodes all-zero) — of the *reversed* graph when ``reverse``
        is true, which is what personalized CheiRank iterates on.  The
        batched power iteration multiplies by this transposed matrix every
        step with the damping factor folded into the data, so caching it per
        alpha lets repeat PPR/CheiRank groups on the platform skip the
        rebuild entirely.  At most :data:`MAX_FOLDED_TRANSITIONS` distinct
        matrices are retained (least recently used evicted), bounding the
        artifact's footprint against alpha-sweeping clients.  The returned
        matrix is shared: treat it as read-only.
        """
        key = (float(alpha), bool(reverse))
        with self._build_lock:
            cached = self._folded_transitions.get(key)
            if cached is not None:
                self._folded_transitions.move_to_end(key)
                return cached
        # Function-local import: repro.algorithms imports this module at
        # package-init time, so a top-level import would be circular.  The
        # shared builder keeps this cache exactly equivalent to the rebuild
        # path in power_iteration_batch.
        from ..algorithms.pagerank import transition_matrix

        csr = self.transpose_csr() if reverse else self.to_csr()
        folded = transition_matrix(csr).transpose().tocsr()
        folded.data = folded.data * float(alpha)
        with self._build_lock:
            existing = self._folded_transitions.setdefault(key, folded)
            self._folded_transitions.move_to_end(key)
            while len(self._folded_transitions) > MAX_FOLDED_TRANSITIONS:
                self._folded_transitions.popitem(last=False)
            return existing

    def labels_array(self) -> np.ndarray:
        """Return the node labels as a (cached) NumPy string array.

        Batch kernels attach this one shared array to every
        :class:`~repro.ranking.result.Ranking` they produce instead of
        rebuilding a per-query label list.
        """
        if self._labels_array is None:
            labels = self._graph.labels()
            with self._build_lock:
                if self._labels_array is None:
                    self._labels_array = np.asarray(labels, dtype=str)
        return self._labels_array

    # ------------------------------------------------------------------ #
    # graph facade
    # ------------------------------------------------------------------ #
    def __getattr__(self, name: str):
        # Fallback for everything DirectedGraph offers (resolve, labels,
        # successors, number_of_nodes, name, ...): the artifact is usable
        # wherever a graph is expected.
        return getattr(self._graph, name)

    def __len__(self) -> int:
        return len(self._graph)

    def __contains__(self, ref: object) -> bool:
        return ref in self._graph

    def __iter__(self):
        return iter(self._graph)

    def __repr__(self) -> str:
        return f"<CompiledGraph of {self._graph!r}>"


def compiled_of(graph) -> CompiledGraph:
    """Return ``graph`` as a :class:`CompiledGraph`, wrapping it if needed.

    Algorithms call this on their ``graph`` argument: when the platform hands
    them a cached artifact the precompiled structures are reused, and a bare
    :class:`DirectedGraph` still works (a throwaway artifact is built for the
    duration of the call).
    """
    if isinstance(graph, CompiledGraph):
        return graph
    return CompiledGraph(graph)
