"""Compiled graph artifact: every derived structure the executors need, built once.

Each relevance algorithm derives the same handful of structures from a
:class:`~repro.graph.digraph.DirectedGraph` before doing any real work — the
CSR adjacency (and its transpose), the out-degree vector, the dangling-node
mask, the :mod:`scipy.sparse` adjacency matrix, and (for CycleRank) flat
adjacency lists the cycle-search engine can walk without per-node dict
lookups.  Rebuilding them per query is pure overhead: on the platform's
dominant workload (many queries against the same dataset) the conversions can
cost more than the algorithms themselves.

:class:`CompiledGraph` bundles those structures as a frozen, lazily-built,
thread-safe artifact.  It is a drop-in stand-in for the source graph —
attribute access falls through to the wrapped :class:`DirectedGraph`, and
``to_csr()`` returns the cached snapshot — so every algorithm (including
user-registered ones that know nothing about artifacts) runs unchanged while
the ones on the hot path pick up the precompiled structures automatically.

The platform caches one ``CompiledGraph`` per dataset version in the
:class:`~repro.platform.datastore.DataStore`; mutating the source graph after
compilation is not supported (take a new artifact instead, which is exactly
what the datastore's version-keyed invalidation does).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import GraphError
from .csr import CSRGraph
from .digraph import DirectedGraph

__all__ = ["CompiledGraph", "SharedGraphHandle", "compiled_of"]

#: Distinct (alpha, direction) folded transition matrices retained per
#: artifact; production traffic uses one or two alphas, so a handful covers
#: every realistic workload while bounding an alpha-sweeping client.
MAX_FOLDED_TRANSITIONS = 8

#: Flat adjacency lists: (indptr, indices) for the forward graph followed by
#: (indptr, indices) for the transpose, all as plain Python int lists.
AdjacencyLists = Tuple[List[int], List[int], List[int], List[int]]

#: Alignment of each array inside a shared segment; 64 bytes keeps every
#: array cache-line aligned regardless of the preceding array's length.
_SHARED_ALIGNMENT = 64

#: Byte length of the version stamp written at the start of every shared
#: segment (one little-endian int64, re-checked on attach).
_SHARED_STAMP_BYTES = 8


@dataclass(frozen=True)
class SharedGraphHandle:
    """A picklable description of a :class:`CompiledGraph` exported to shared memory.

    The handle is everything a worker process needs to rebuild a read-only
    artifact over the exported buffers: the ``multiprocessing.shared_memory``
    segment name, the byte layout of each array (offset, shape, dtype string)
    and provenance (graph name, dataset version).  The arrays themselves
    never travel through the handle — only their coordinates do, so shipping
    a handle to a worker costs a few hundred bytes regardless of graph size.

    ``version`` is stamped into the first 8 bytes of the segment at export
    time; :meth:`CompiledGraph.from_shared` re-reads the stamp on attach and
    refuses a mismatch, mirroring the datastore's publish-time version
    recheck so a worker can never compute on a stale CSR.
    """

    segment: str
    version: int
    graph_name: str
    num_nodes: int
    num_edges: int
    total_bytes: int
    #: array name -> (byte offset, shape tuple, dtype string)
    layout: Dict[str, Tuple[int, Tuple[int, ...], str]] = field(default_factory=dict)

    @property
    def csr_bytes(self) -> int:
        """Return the bytes of the CSR structure proper (indptr + indices, both
        directions) — the figure worker RSS deltas are compared against."""
        return int(
            sum(
                int(np.prod(shape)) * np.dtype(dtype).itemsize
                for name, (_, shape, dtype) in self.layout.items()
                if name in ("indptr", "indices", "t_indptr", "t_indices")
            )
        )


class _SharedGraphView:
    """Label-resolving facade over shared CSR buffers.

    Stands in for the :class:`DirectedGraph` a :class:`CompiledGraph` wraps:
    it offers exactly the surface the algorithm kernels touch through the
    artifact's ``__getattr__`` fallback — ``resolve``/``has_label``/
    ``label_of``/``labels``/``number_of_nodes``/``name`` — backed by the
    attached arrays, with no adjacency dictionaries of its own.
    """

    def __init__(
        self,
        csr: CSRGraph,
        transpose: CSRGraph,
        labels: np.ndarray,
        *,
        keepalive=None,
    ) -> None:
        self._csr = csr
        self._transpose = transpose
        self._shared_labels = labels
        self._label_index: Optional[Dict[str, int]] = None
        #: The attached SharedMemory object(s); held so the exported buffers
        #: outlive every array view handed out by this graph.
        self._keepalive = keepalive

    @property
    def name(self) -> str:
        return self._csr.name

    def number_of_nodes(self) -> int:
        return self._csr.number_of_nodes()

    def number_of_edges(self) -> int:
        return self._csr.number_of_edges()

    def to_csr(self) -> CSRGraph:
        return self._csr

    def out_degrees(self) -> List[int]:
        return self._csr.out_degrees().tolist()

    def labels(self) -> List[str]:
        return self._shared_labels.tolist()

    def label_of(self, node: int) -> str:
        if not 0 <= node < self.number_of_nodes():
            from ..exceptions import NodeNotFoundError

            raise NodeNotFoundError(node)
        return str(self._shared_labels[node])

    def _index(self) -> Dict[str, int]:
        if self._label_index is None:
            self._label_index = {
                str(label): node for node, label in enumerate(self._shared_labels)
            }
        return self._label_index

    def has_label(self, label: str) -> bool:
        return label in self._index()

    def node_for_label(self, label: str) -> int:
        node = self._index().get(label)
        if node is None:
            from ..exceptions import NodeNotFoundError

            raise NodeNotFoundError(label)
        return node

    def resolve(self, ref) -> int:
        if isinstance(ref, str):
            return self.node_for_label(ref)
        node = int(ref)
        if not 0 <= node < self.number_of_nodes():
            from ..exceptions import NodeNotFoundError

            raise NodeNotFoundError(ref)
        return node

    def nodes(self) -> range:
        return range(self.number_of_nodes())

    def successors(self, ref) -> set:
        row = self._csr.successors(self.resolve(ref))
        return {int(node) for node in row}

    def predecessors(self, ref) -> set:
        row = self._transpose.successors(self.resolve(ref))
        return {int(node) for node in row}

    def out_degree(self, ref) -> int:
        node = self.resolve(ref)
        indptr = self._csr.indptr
        return int(indptr[node + 1] - indptr[node])

    def in_degree(self, ref) -> int:
        node = self.resolve(ref)
        indptr = self._transpose.indptr
        return int(indptr[node + 1] - indptr[node])

    def in_degrees(self) -> List[int]:
        return self._transpose.out_degrees().tolist()

    def flattened_successors(self) -> List[int]:
        return self._csr.indices.tolist()

    def successor_lists(self) -> List[Tuple[int, ...]]:
        # Sorted tuples, mirroring DirectedGraph.successor_lists so the
        # traversal-heavy kernels visit neighbours in the identical order.
        return [
            tuple(sorted(self._csr.successors(node).tolist()))
            for node in range(self.number_of_nodes())
        ]

    def predecessor_lists(self) -> List[Tuple[int, ...]]:
        return [
            tuple(sorted(self._transpose.successors(node).tolist()))
            for node in range(self.number_of_nodes())
        ]

    def has_edge(self, source, target) -> bool:
        try:
            u = self.resolve(source)
            v = self.resolve(target)
        except Exception:
            return False
        return bool(np.any(self._csr.successors(u) == v))

    def has_self_loop(self, ref) -> bool:
        node = self.resolve(ref)
        return bool(np.any(self._csr.successors(node) == node))

    def transpose(self, name: Optional[str] = None) -> "_SharedGraphView":
        """Return the reversed graph as a view sharing the same buffers."""
        view = _SharedGraphView(
            self._transpose, self._csr, self._shared_labels,
            keepalive=self._keepalive,
        )
        if name is not None:
            view._csr = CSRGraph(
                self._transpose.indptr, self._transpose.indices, name=name
            )
        return view

    def __len__(self) -> int:
        return self.number_of_nodes()

    def __contains__(self, ref: object) -> bool:
        try:
            self.resolve(ref)
        except Exception:
            return False
        return True

    def __iter__(self):
        return iter(range(self.number_of_nodes()))

    def __repr__(self) -> str:
        return (
            f"<_SharedGraphView {self.name!r} with {self.number_of_nodes()} nodes "
            f"and {self.number_of_edges()} edges>"
        )


def _aligned(offset: int) -> int:
    """Round ``offset`` up to the shared-segment array alignment."""
    remainder = offset % _SHARED_ALIGNMENT
    return offset if remainder == 0 else offset + (_SHARED_ALIGNMENT - remainder)


class CompiledGraph:
    """Frozen, lazily-built bundle of the derived structures of one graph.

    Every structure is computed at most once (under a lock, so concurrent
    executor threads share a single build) and is immutable afterwards:

    * :meth:`to_csr` — the CSR adjacency snapshot;
    * :meth:`transpose_csr` — the CSR snapshot of the reversed graph;
    * :meth:`out_degrees` / :meth:`dangling_mask` — degree structure used by
      the power-iteration family;
    * :meth:`adjacency` / :meth:`adjacency_transpose` — ``scipy.sparse``
      matrices for the matrix-shaped kernels (HITS, Katz);
    * :meth:`adjacency_lists` — flat Python-list CSR for the cycle engine;
    * :meth:`folded_transition_transpose` — the alpha-folded transposed
      transition matrix the batched power iteration multiplies by, cached
      per ``(alpha, direction)`` so repeat PPR/CheiRank groups skip the
      rebuild.

    Any other attribute (``resolve``, ``labels``, ``successors``, ...) is
    delegated to the wrapped :class:`DirectedGraph`, so a ``CompiledGraph``
    can be handed to any algorithm in place of the graph itself.
    """

    def __init__(self, graph: DirectedGraph, *, csr: Optional[CSRGraph] = None) -> None:
        self._graph = graph
        self._build_lock = threading.Lock()
        #: ``csr`` pre-seeds the snapshot — file-backed datastores recover a
        #: persisted CSR on restart instead of reconverting the graph.
        self._csr: Optional[CSRGraph] = csr
        self._transpose: Optional[CSRGraph] = None
        self._out_degrees: Optional[np.ndarray] = None
        self._dangling: Optional[np.ndarray] = None
        self._scipy_adjacency = None
        self._scipy_transpose = None
        self._lists: Optional[AdjacencyLists] = None
        self._labels_array: Optional[np.ndarray] = None
        #: (alpha, reverse) -> alpha-folded transposed transition matrix; the
        #: batched power iteration fetches these instead of rebuilding per
        #: query group.  Bounded LRU: each entry is an |E|-sized matrix and
        #: the artifact lives as long as the dataset, so a client sweeping
        #: alphas must not grow it without limit.
        self._folded_transitions: "OrderedDict[Tuple[float, bool], object]" = OrderedDict()

    @property
    def graph(self) -> DirectedGraph:
        """Return the wrapped source graph."""
        return self._graph

    @property
    def csr_ready(self) -> bool:
        """Return ``True`` if the CSR snapshot has already been built.

        Kernels with a cheaper direct-from-graph path for one-off queries
        (e.g. CycleRank's short-cycle counting) use this to avoid forcing a
        full compilation on a throwaway artifact while still reusing the CSR
        when the platform hands them a warmed cached one.
        """
        return self._csr is not None

    # ------------------------------------------------------------------ #
    # compiled structures
    # ------------------------------------------------------------------ #
    def to_csr(self) -> CSRGraph:
        """Return the (cached) CSR snapshot of the graph."""
        if self._csr is None:
            with self._build_lock:
                if self._csr is None:
                    self._csr = self._graph.to_csr()
        return self._csr

    def transpose_csr(self) -> CSRGraph:
        """Return the (cached) CSR snapshot of the reversed graph."""
        if self._transpose is None:
            csr = self.to_csr()
            with self._build_lock:
                if self._transpose is None:
                    self._transpose = csr.transpose()
        return self._transpose

    def out_degrees(self) -> np.ndarray:
        """Return the out-degree of every node (cached, do not mutate)."""
        if self._out_degrees is None:
            csr = self.to_csr()
            with self._build_lock:
                if self._out_degrees is None:
                    self._out_degrees = csr.out_degrees()
        return self._out_degrees

    def dangling_mask(self) -> np.ndarray:
        """Return the float mask of dangling nodes (cached, do not mutate)."""
        if self._dangling is None:
            degrees = self.out_degrees()
            with self._build_lock:
                if self._dangling is None:
                    self._dangling = np.asarray(degrees == 0, dtype=np.float64)
        return self._dangling

    def adjacency(self):
        """Return the ``scipy.sparse.csr_matrix`` adjacency (cached, read-only)."""
        if self._scipy_adjacency is None:
            csr = self.to_csr()
            with self._build_lock:
                if self._scipy_adjacency is None:
                    self._scipy_adjacency = csr.to_scipy()
        return self._scipy_adjacency

    def adjacency_transpose(self):
        """Return the ``scipy.sparse.csr_matrix`` of the reversed graph (cached)."""
        if self._scipy_transpose is None:
            transpose = self.transpose_csr()
            with self._build_lock:
                if self._scipy_transpose is None:
                    self._scipy_transpose = transpose.to_scipy()
        return self._scipy_transpose

    def adjacency_lists(self) -> AdjacencyLists:
        """Return flat-list CSR arrays ``(indptr, indices, t_indptr, t_indices)``.

        Plain Python lists index faster than NumPy scalars inside the cycle
        engine's tight search loops; the one-off conversion is cached here so
        a batch (or a cached artifact) pays it a single time.
        """
        if self._lists is None:
            csr = self.to_csr()
            transpose = self.transpose_csr()
            with self._build_lock:
                if self._lists is None:
                    self._lists = (
                        csr.indptr.tolist(),
                        csr.indices.tolist(),
                        transpose.indptr.tolist(),
                        transpose.indices.tolist(),
                    )
        return self._lists

    def folded_transition_transpose(self, alpha: float, *, reverse: bool = False):
        """Return ``alpha * P^T`` in CSR form, cached per ``(alpha, reverse)``.

        ``P`` is the row-stochastic transition matrix of the graph (rows of
        dangling nodes all-zero) — of the *reversed* graph when ``reverse``
        is true, which is what personalized CheiRank iterates on.  The
        batched power iteration multiplies by this transposed matrix every
        step with the damping factor folded into the data, so caching it per
        alpha lets repeat PPR/CheiRank groups on the platform skip the
        rebuild entirely.  At most :data:`MAX_FOLDED_TRANSITIONS` distinct
        matrices are retained (least recently used evicted), bounding the
        artifact's footprint against alpha-sweeping clients.  The returned
        matrix is shared: treat it as read-only.
        """
        key = (float(alpha), bool(reverse))
        with self._build_lock:
            cached = self._folded_transitions.get(key)
            if cached is not None:
                self._folded_transitions.move_to_end(key)
                return cached
        # Function-local import: repro.algorithms imports this module at
        # package-init time, so a top-level import would be circular.  The
        # shared builder keeps this cache exactly equivalent to the rebuild
        # path in power_iteration_batch.
        from ..algorithms.pagerank import transition_matrix

        csr = self.transpose_csr() if reverse else self.to_csr()
        folded = transition_matrix(csr).transpose().tocsr()
        folded.data = folded.data * float(alpha)
        with self._build_lock:
            existing = self._folded_transitions.setdefault(key, folded)
            self._folded_transitions.move_to_end(key)
            while len(self._folded_transitions) > MAX_FOLDED_TRANSITIONS:
                self._folded_transitions.popitem(last=False)
            return existing

    def labels_array(self) -> np.ndarray:
        """Return the node labels as a (cached) NumPy string array.

        Batch kernels attach this one shared array to every
        :class:`~repro.ranking.result.Ranking` they produce instead of
        rebuilding a per-query label list.
        """
        if self._labels_array is None:
            labels = self._graph.labels()
            with self._build_lock:
                if self._labels_array is None:
                    self._labels_array = np.asarray(labels, dtype=str)
        return self._labels_array

    # ------------------------------------------------------------------ #
    # cross-process serialisation seam
    # ------------------------------------------------------------------ #
    def to_shared(self, *, segment: str, version: int = 0):
        """Export the compiled arrays into one shared-memory segment.

        Everything the numerical kernels read — CSR ``indptr``/``indices``,
        the transpose pair, out-degrees, the dangling mask and the label
        array — is copied once into a single
        :class:`multiprocessing.shared_memory.SharedMemory` segment named
        ``segment``, prefixed with a ``version`` stamp.  Returns
        ``(handle, shm)``: the picklable :class:`SharedGraphHandle` to ship
        to workers and the owning segment object (the caller controls its
        lifecycle — ``close()``/``unlink()`` on artifact invalidation).

        Worker processes reconstruct a read-only artifact over the same
        physical pages with :meth:`from_shared`; no per-worker copy of the
        graph is ever made.
        """
        from multiprocessing import shared_memory

        arrays: Dict[str, np.ndarray] = {
            "indptr": self.to_csr().indptr,
            "indices": self.to_csr().indices,
            "t_indptr": self.transpose_csr().indptr,
            "t_indices": self.transpose_csr().indices,
            "out_degrees": np.ascontiguousarray(self.out_degrees(), dtype=np.int64),
            "dangling": np.ascontiguousarray(self.dangling_mask(), dtype=np.float64),
            "labels": np.ascontiguousarray(self.labels_array()),
        }
        layout: Dict[str, Tuple[int, Tuple[int, ...], str]] = {}
        offset = _SHARED_STAMP_BYTES
        for name, array in arrays.items():
            offset = _aligned(offset)
            layout[name] = (offset, tuple(array.shape), array.dtype.str)
            offset += array.nbytes
        shm = shared_memory.SharedMemory(name=segment, create=True, size=max(offset, 1))
        try:
            np.frombuffer(shm.buf, dtype=np.int64, count=1)[0] = int(version)
            for name, array in arrays.items():
                start, shape, dtype = layout[name]
                destination = np.frombuffer(
                    shm.buf, dtype=np.dtype(dtype), count=int(np.prod(shape)),
                    offset=start,
                ).reshape(shape)
                destination[...] = array
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        handle = SharedGraphHandle(
            segment=shm.name,
            version=int(version),
            graph_name=str(getattr(self._graph, "name", "") or ""),
            num_nodes=self.to_csr().number_of_nodes(),
            num_edges=self.to_csr().number_of_edges(),
            total_bytes=offset,
            layout=layout,
        )
        return handle, shm

    @classmethod
    def from_shared(cls, handle: SharedGraphHandle) -> "CompiledGraph":
        """Reconstruct a read-only artifact over an exported segment.

        Attaches to ``handle.segment`` and builds a :class:`CompiledGraph`
        whose CSR, transpose, out-degree, dangling-mask and label structures
        are zero-copy views over the shared buffers — nothing is rebuilt and
        nothing is copied.  The version stamp written by :meth:`to_shared`
        is re-checked against the handle before any array is trusted: a
        mismatch (the exporter re-published for a newer dataset upload)
        raises :class:`~repro.exceptions.GraphError` instead of silently
        serving a stale CSR.

        The attach is registered as a *borrow*: the segment is closed when
        the returned artifact is garbage collected, and never unlinked (the
        exporting process owns the name).
        """
        from multiprocessing import shared_memory

        # A borrowing process must not let the resource tracker "clean up"
        # (unlink) a segment it does not own: suppress the tracker
        # registration that SharedMemory performs on attach (Python < 3.13
        # has no ``track=False``).  Only the exporting process registers the
        # name, so leak protection on crash stays with the owner.
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register

        def _borrowing_register(name, rtype):  # pragma: no cover - trivial
            if rtype != "shared_memory":
                original_register(name, rtype)

        resource_tracker.register = _borrowing_register
        try:
            shm = shared_memory.SharedMemory(name=handle.segment, create=False)
        except FileNotFoundError:
            raise GraphError(
                f"shared graph segment {handle.segment!r} no longer exists "
                "(artifact invalidated)"
            ) from None
        finally:
            resource_tracker.register = original_register
        stamped = int(np.frombuffer(shm.buf, dtype=np.int64, count=1)[0])
        if stamped != int(handle.version):
            shm.close()
            raise GraphError(
                f"shared graph segment {handle.segment!r} carries version "
                f"{stamped}, expected {handle.version} (stale artifact)"
            )
        views: Dict[str, np.ndarray] = {}
        for name, (start, shape, dtype) in handle.layout.items():
            view = np.frombuffer(
                shm.buf, dtype=np.dtype(dtype), count=int(np.prod(shape)),
                offset=start,
            ).reshape(shape)
            view.flags.writeable = False
            views[name] = view
        csr = CSRGraph(views["indptr"], views["indices"], name=handle.graph_name)
        transpose = CSRGraph(
            views["t_indptr"],
            views["t_indices"],
            name=(handle.graph_name + "-transposed") if handle.graph_name else "",
        )
        graph_view = _SharedGraphView(csr, transpose, views["labels"], keepalive=shm)
        compiled = cls(graph_view, csr=csr)
        compiled._transpose = transpose
        compiled._out_degrees = views["out_degrees"]
        compiled._dangling = views["dangling"]
        compiled._labels_array = views["labels"]
        return compiled

    # ------------------------------------------------------------------ #
    # graph facade
    # ------------------------------------------------------------------ #
    def __getattr__(self, name: str):
        # Fallback for everything DirectedGraph offers (resolve, labels,
        # successors, number_of_nodes, name, ...): the artifact is usable
        # wherever a graph is expected.
        return getattr(self._graph, name)

    def __len__(self) -> int:
        return len(self._graph)

    def __contains__(self, ref: object) -> bool:
        return ref in self._graph

    def __iter__(self):
        return iter(self._graph)

    def __repr__(self) -> str:
        return f"<CompiledGraph of {self._graph!r}>"


def compiled_of(graph) -> CompiledGraph:
    """Return ``graph`` as a :class:`CompiledGraph`, wrapping it if needed.

    Algorithms call this on their ``graph`` argument: when the platform hands
    them a cached artifact the precompiled structures are reused, and a bare
    :class:`DirectedGraph` still works (a throwaway artifact is built for the
    duration of the call).
    """
    if isinstance(graph, CompiledGraph):
        return graph
    return CompiledGraph(graph)
