"""Directed-graph substrate used by every relevance algorithm in the library.

The central type is :class:`~repro.graph.digraph.DirectedGraph`, a mutable
directed graph with labelled nodes, designed for the workloads of the paper
(wikilink networks, co-purchase graphs, interaction networks).  For numeric
algorithms that want vectorised access, :class:`~repro.graph.csr.CSRGraph`
provides an immutable compressed-sparse-row view that converts losslessly to
and from :class:`DirectedGraph` and to a :mod:`scipy.sparse` matrix.

Supporting modules:

``builder``
    Incremental :class:`GraphBuilder` used by the file-format readers and the
    synthetic dataset generators.
``views``
    Structure-sharing transformations: transpose, subgraph extraction,
    relabelling, simplification (removal of self loops and parallel edges).
``components``
    Strongly / weakly connected components (iterative Tarjan), condensation.
``traversal``
    BFS/DFS orders, reachability sets, unweighted shortest path lengths.
``analysis``
    Degree statistics, density, reciprocity, degree distributions.
``generators``
    Deterministic synthetic graph families used by tests and ablations.
"""

from __future__ import annotations

from .analysis import (
    degree_histogram,
    density,
    graph_summary,
    reciprocity,
)
from .builder import GraphBuilder
from .components import (
    condensation,
    is_strongly_connected,
    is_weakly_connected,
    strongly_connected_components,
    weakly_connected_components,
)
from .compiled import CompiledGraph, compiled_of
from .csr import CSRGraph
from .digraph import DirectedGraph, Edge
from .generators import (
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    hub_and_spoke_graph,
    layered_dag,
    path_graph,
    preferential_attachment_graph,
    reciprocal_communities_graph,
    star_graph,
)
from .traversal import (
    bfs_order,
    bfs_tree,
    dfs_order,
    descendants,
    ancestors,
    shortest_path_lengths,
)
from .views import (
    relabeled,
    reversed_view,
    simplified,
    subgraph,
    transpose,
)

__all__ = [
    "DirectedGraph",
    "Edge",
    "CSRGraph",
    "CompiledGraph",
    "compiled_of",
    "GraphBuilder",
    # views
    "transpose",
    "reversed_view",
    "subgraph",
    "relabeled",
    "simplified",
    # components
    "strongly_connected_components",
    "weakly_connected_components",
    "is_strongly_connected",
    "is_weakly_connected",
    "condensation",
    # traversal
    "bfs_order",
    "bfs_tree",
    "dfs_order",
    "descendants",
    "ancestors",
    "shortest_path_lengths",
    # analysis
    "density",
    "reciprocity",
    "degree_histogram",
    "graph_summary",
    # generators
    "cycle_graph",
    "path_graph",
    "star_graph",
    "complete_graph",
    "gnp_random_graph",
    "preferential_attachment_graph",
    "hub_and_spoke_graph",
    "reciprocal_communities_graph",
    "layered_dag",
]
