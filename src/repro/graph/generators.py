"""Deterministic synthetic graph families.

These generators back the unit tests (small graphs with known structure), the
hypothesis strategies, and the scaling ablation benchmarks.  All stochastic
generators take an explicit ``seed`` and are fully deterministic for a given
seed, so benchmark results are reproducible run to run.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from .._validation import (
    require_in_range,
    require_non_negative_int,
    require_positive_int,
    require_probability,
)
from ..exceptions import InvalidParameterError
from .digraph import DirectedGraph

__all__ = [
    "cycle_graph",
    "path_graph",
    "star_graph",
    "complete_graph",
    "gnp_random_graph",
    "preferential_attachment_graph",
    "hub_and_spoke_graph",
    "reciprocal_communities_graph",
    "layered_dag",
]


def cycle_graph(num_nodes: int, *, name: str = "cycle") -> DirectedGraph:
    """Return the directed cycle ``0 -> 1 -> ... -> n-1 -> 0``."""
    require_positive_int(num_nodes, "num_nodes")
    graph = DirectedGraph(name=name)
    graph.add_nodes(num_nodes)
    for node in range(num_nodes):
        graph.add_edge(node, (node + 1) % num_nodes)
    return graph


def path_graph(num_nodes: int, *, name: str = "path") -> DirectedGraph:
    """Return the directed path ``0 -> 1 -> ... -> n-1``."""
    require_positive_int(num_nodes, "num_nodes")
    graph = DirectedGraph(name=name)
    graph.add_nodes(num_nodes)
    for node in range(num_nodes - 1):
        graph.add_edge(node, node + 1)
    return graph


def star_graph(num_leaves: int, *, reciprocal: bool = False, name: str = "star") -> DirectedGraph:
    """Return a star with node 0 at the centre pointing to ``num_leaves`` leaves.

    With ``reciprocal=True`` every leaf also points back at the centre, which
    creates ``num_leaves`` cycles of length 2 through the hub.
    """
    require_non_negative_int(num_leaves, "num_leaves")
    graph = DirectedGraph(name=name)
    graph.add_nodes(num_leaves + 1)
    for leaf in range(1, num_leaves + 1):
        graph.add_edge(0, leaf)
        if reciprocal:
            graph.add_edge(leaf, 0)
    return graph


def complete_graph(num_nodes: int, *, name: str = "complete") -> DirectedGraph:
    """Return the complete directed graph (all ordered pairs, no self loops)."""
    require_positive_int(num_nodes, "num_nodes")
    graph = DirectedGraph(name=name)
    graph.add_nodes(num_nodes)
    for source in range(num_nodes):
        for target in range(num_nodes):
            if source != target:
                graph.add_edge(source, target)
    return graph


def gnp_random_graph(
    num_nodes: int,
    edge_probability: float,
    *,
    seed: int = 0,
    name: str = "gnp",
) -> DirectedGraph:
    """Return a directed Erdős–Rényi G(n, p) graph.

    Every ordered pair ``(u, v)`` with ``u != v`` is an edge independently
    with probability ``edge_probability``.
    """
    require_positive_int(num_nodes, "num_nodes")
    require_probability(edge_probability, "edge_probability")
    rng = random.Random(seed)
    graph = DirectedGraph(name=name)
    graph.add_nodes(num_nodes)
    for source in range(num_nodes):
        for target in range(num_nodes):
            if source != target and rng.random() < edge_probability:
                graph.add_edge(source, target)
    return graph


def preferential_attachment_graph(
    num_nodes: int,
    out_degree: int = 3,
    *,
    reciprocation_probability: float = 0.3,
    seed: int = 0,
    name: str = "preferential-attachment",
) -> DirectedGraph:
    """Return a directed preferential-attachment ("rich get richer") graph.

    Each new node sends ``out_degree`` edges to existing nodes chosen with
    probability proportional to their current in-degree (plus one).  With
    probability ``reciprocation_probability`` the chosen target links back,
    creating the reciprocated edges CycleRank relies on.  The resulting
    in-degree distribution is heavy-tailed, mimicking the wikilink and
    co-purchase graphs of the paper.
    """
    require_positive_int(num_nodes, "num_nodes")
    require_positive_int(out_degree, "out_degree")
    require_probability(reciprocation_probability, "reciprocation_probability")
    if num_nodes <= out_degree:
        raise InvalidParameterError(
            f"num_nodes ({num_nodes}) must exceed out_degree ({out_degree})"
        )
    rng = random.Random(seed)
    graph = DirectedGraph(name=name)
    graph.add_nodes(num_nodes)
    # Seed clique among the first (out_degree + 1) nodes so early choices exist.
    seed_size = out_degree + 1
    for source in range(seed_size):
        for target in range(seed_size):
            if source != target:
                graph.add_edge(source, target)
    # Attachment targets are sampled from this multiset, where each node
    # appears once per incoming edge plus once unconditionally.
    attachment_pool: List[int] = list(range(seed_size)) * seed_size
    for new_node in range(seed_size, num_nodes):
        chosen = set()
        while len(chosen) < out_degree:
            chosen.add(rng.choice(attachment_pool))
        for target in chosen:
            graph.add_edge(new_node, target)
            attachment_pool.append(target)
            if rng.random() < reciprocation_probability:
                graph.add_edge(target, new_node)
                attachment_pool.append(new_node)
        attachment_pool.append(new_node)
    return graph


def hub_and_spoke_graph(
    num_hubs: int,
    spokes_per_hub: int,
    *,
    hub_back_probability: float = 0.0,
    seed: int = 0,
    name: str = "hub-and-spoke",
) -> DirectedGraph:
    """Return a graph of hubs receiving edges from many spokes.

    Every spoke points to its hub and to one random other hub; hubs point back
    to each spoke with probability ``hub_back_probability``.  This is the
    minimal structure exhibiting the "popular node" pathology of Personalized
    PageRank described in the paper: hubs accumulate relevance from everywhere
    regardless of the query node.
    """
    require_positive_int(num_hubs, "num_hubs")
    require_positive_int(spokes_per_hub, "spokes_per_hub")
    require_probability(hub_back_probability, "hub_back_probability")
    rng = random.Random(seed)
    graph = DirectedGraph(name=name)
    hubs = [graph.add_node(f"hub{i}") for i in range(num_hubs)]
    for hub_index, hub in enumerate(hubs):
        for spoke_index in range(spokes_per_hub):
            spoke = graph.add_node(f"spoke{hub_index}-{spoke_index}")
            graph.add_edge(spoke, hub)
            other = rng.choice(hubs)
            if other != spoke:
                graph.add_edge(spoke, other)
            if rng.random() < hub_back_probability:
                graph.add_edge(hub, spoke)
    return graph


def reciprocal_communities_graph(
    num_communities: int,
    community_size: int,
    *,
    intra_probability: float = 0.5,
    inter_probability: float = 0.01,
    reciprocation_probability: float = 0.8,
    seed: int = 0,
    name: str = "communities",
) -> DirectedGraph:
    """Return a planted-partition directed graph with reciprocated intra-community edges.

    Nodes are labelled ``"c<community>-n<index>"``.  Intra-community edges are
    frequent and mostly reciprocated (so communities are rich in short
    cycles), inter-community edges are rare and one-directional.  CycleRank
    run from any node should therefore surface its own community, which is the
    behaviour exercised by several integration tests.
    """
    require_positive_int(num_communities, "num_communities")
    require_positive_int(community_size, "community_size")
    require_probability(intra_probability, "intra_probability")
    require_probability(inter_probability, "inter_probability")
    require_probability(reciprocation_probability, "reciprocation_probability")
    rng = random.Random(seed)
    graph = DirectedGraph(name=name)
    members: List[List[int]] = []
    for community in range(num_communities):
        members.append(
            [graph.add_node(f"c{community}-n{i}") for i in range(community_size)]
        )
    for community, nodes in enumerate(members):
        for source in nodes:
            for target in nodes:
                if source != target and rng.random() < intra_probability:
                    graph.add_edge(source, target)
                    if rng.random() < reciprocation_probability:
                        graph.add_edge(target, source)
        for other_community, other_nodes in enumerate(members):
            if other_community == community:
                continue
            for source in nodes:
                for target in other_nodes:
                    if rng.random() < inter_probability:
                        graph.add_edge(source, target)
    return graph


def layered_dag(
    layer_sizes: Sequence[int],
    *,
    edge_probability: float = 0.5,
    seed: int = 0,
    name: str = "layered-dag",
) -> DirectedGraph:
    """Return a layered DAG with edges only from layer ``i`` to layer ``i + 1``.

    A DAG has no cycles at all, so CycleRank scores every node except the
    reference as zero — a useful degenerate case for tests.
    """
    if not layer_sizes:
        raise InvalidParameterError("layer_sizes must contain at least one layer")
    for size in layer_sizes:
        require_positive_int(size, "layer size")
    require_in_range(edge_probability, "edge_probability", 0.0, 1.0)
    rng = random.Random(seed)
    graph = DirectedGraph(name=name)
    layers: List[List[int]] = []
    for layer_index, size in enumerate(layer_sizes):
        layers.append([graph.add_node(f"L{layer_index}-{i}") for i in range(size)])
    for upper, lower in zip(layers, layers[1:]):
        for source in upper:
            targets = [t for t in lower if rng.random() < edge_probability]
            if not targets:
                targets = [rng.choice(lower)]
            for target in targets:
                graph.add_edge(source, target)
    return graph
