"""Incremental graph construction helper.

:class:`GraphBuilder` is the shared construction front-end used by the file
format readers (:mod:`repro.io`) and the synthetic dataset generators
(:mod:`repro.datasets`).  It accumulates nodes and edges, tracks simple
statistics about what was skipped (duplicate edges, self loops when they are
disallowed), and produces a :class:`~repro.graph.digraph.DirectedGraph`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple

from ..exceptions import GraphError
from .digraph import DirectedGraph, NodeRef

__all__ = ["GraphBuilder", "BuildReport"]


@dataclass
class BuildReport:
    """Statistics accumulated while building a graph."""

    nodes_added: int = 0
    edges_added: int = 0
    duplicate_edges_skipped: int = 0
    self_loops_skipped: int = 0
    lines_skipped: int = 0
    warnings: list = field(default_factory=list)

    def merge(self, other: "BuildReport") -> "BuildReport":
        """Return a new report summing this report with ``other``."""
        return BuildReport(
            nodes_added=self.nodes_added + other.nodes_added,
            edges_added=self.edges_added + other.edges_added,
            duplicate_edges_skipped=self.duplicate_edges_skipped + other.duplicate_edges_skipped,
            self_loops_skipped=self.self_loops_skipped + other.self_loops_skipped,
            lines_skipped=self.lines_skipped + other.lines_skipped,
            warnings=self.warnings + other.warnings,
        )


class GraphBuilder:
    """Accumulate nodes and edges and build a :class:`DirectedGraph`.

    Parameters
    ----------
    name:
        Name assigned to the built graph.
    allow_self_loops:
        When ``False`` (the default for the paper's datasets) edges
        ``u -> u`` are silently dropped and counted in the report.

    Examples
    --------
    >>> builder = GraphBuilder(name="toy")
    >>> builder.add_edge("A", "B")
    >>> builder.add_edge("B", "A")
    >>> graph = builder.build()
    >>> graph.number_of_edges()
    2
    """

    def __init__(self, name: str = "", *, allow_self_loops: bool = False) -> None:
        self.name = name
        self.allow_self_loops = allow_self_loops
        self._graph = DirectedGraph(name=name)
        self._report = BuildReport()
        self._built = False

    # ------------------------------------------------------------------ #
    # accumulation
    # ------------------------------------------------------------------ #
    def add_node(self, label: Optional[str] = None) -> int:
        """Register a node (by optional label) and return its id."""
        self._ensure_not_built()
        before = self._graph.number_of_nodes()
        node = self._graph.add_node(label)
        if self._graph.number_of_nodes() > before:
            self._report.nodes_added += 1
        return node

    def add_edge(self, source: NodeRef, target: NodeRef) -> None:
        """Register a directed edge, applying the self-loop policy.

        String endpoints create labelled nodes on first use; integer endpoints
        grow the dense id space as needed (file formats commonly reference
        node ids before all nodes have been declared).
        """
        self._ensure_not_built()
        nodes_before = self._graph.number_of_nodes()
        self._graph._ensure_capacity(source)
        self._graph._ensure_capacity(target)
        resolved_source = self._graph._resolve_or_create(source)
        resolved_target = self._graph._resolve_or_create(target)
        self._report.nodes_added += self._graph.number_of_nodes() - nodes_before
        if resolved_source == resolved_target and not self.allow_self_loops:
            self._report.self_loops_skipped += 1
            return
        if self._graph.add_edge(resolved_source, resolved_target):
            self._report.edges_added += 1
        else:
            self._report.duplicate_edges_skipped += 1

    def add_edges_from(self, edges: Iterable[Tuple[NodeRef, NodeRef]]) -> None:
        """Register every edge in ``edges``."""
        for source, target in edges:
            self.add_edge(source, target)

    def skip_line(self, message: Optional[str] = None) -> None:
        """Record a skipped input line (used by the file-format readers)."""
        self._report.lines_skipped += 1
        if message:
            self._report.warnings.append(message)

    def warn(self, message: str) -> None:
        """Record a non-fatal warning about the input."""
        self._report.warnings.append(message)

    # ------------------------------------------------------------------ #
    # inspection / finalisation
    # ------------------------------------------------------------------ #
    @property
    def report(self) -> BuildReport:
        """Return the statistics accumulated so far."""
        return self._report

    def number_of_nodes(self) -> int:
        """Return the number of nodes registered so far."""
        return self._graph.number_of_nodes()

    def number_of_edges(self) -> int:
        """Return the number of edges registered so far."""
        return self._graph.number_of_edges()

    def build(self) -> DirectedGraph:
        """Finalise and return the built graph.

        The builder cannot be reused after :meth:`build`; create a new one for
        the next graph.
        """
        self._ensure_not_built()
        self._built = True
        return self._graph

    def _ensure_not_built(self) -> None:
        if self._built:
            raise GraphError("GraphBuilder.build() was already called; create a new builder")
