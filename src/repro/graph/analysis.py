"""Descriptive statistics over directed graphs.

Used by the dataset catalog (each pre-loaded dataset carries a summary), the
text Web UI (dataset cards) and the dataset-comparison use case of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .components import strongly_connected_components, weakly_connected_components
from .digraph import DirectedGraph

__all__ = [
    "density",
    "reciprocity",
    "degree_histogram",
    "top_nodes_by_degree",
    "GraphSummary",
    "graph_summary",
]


def density(graph: DirectedGraph) -> float:
    """Return the edge density ``m / (n * (n - 1))`` of a directed graph.

    Graphs with fewer than two nodes have density 0 by convention.
    """
    n = graph.number_of_nodes()
    if n < 2:
        return 0.0
    return graph.number_of_edges() / (n * (n - 1))


def reciprocity(graph: DirectedGraph) -> float:
    """Return the fraction of edges whose reverse edge also exists.

    Reciprocity is the single strongest structural predictor of where
    CycleRank and Personalized PageRank diverge: CycleRank only rewards nodes
    connected to the reference by paths in *both* directions.
    """
    m = graph.number_of_edges()
    if m == 0:
        return 0.0
    reciprocated = sum(
        1 for edge in graph.edges() if graph.has_edge(edge.target, edge.source)
    )
    return reciprocated / m


def degree_histogram(graph: DirectedGraph, *, direction: str = "in") -> Dict[int, int]:
    """Return a ``{degree: count}`` histogram of in- or out-degrees."""
    if direction not in ("in", "out"):
        raise ValueError(f"direction must be 'in' or 'out', got {direction!r}")
    degrees = graph.in_degrees() if direction == "in" else graph.out_degrees()
    histogram: Dict[int, int] = {}
    for degree in degrees:
        histogram[degree] = histogram.get(degree, 0) + 1
    return dict(sorted(histogram.items()))


def top_nodes_by_degree(
    graph: DirectedGraph,
    k: int = 10,
    *,
    direction: str = "in",
) -> List[Tuple[str, int]]:
    """Return the ``k`` nodes with the highest in- or out-degree as (label, degree)."""
    if direction not in ("in", "out"):
        raise ValueError(f"direction must be 'in' or 'out', got {direction!r}")
    degrees = graph.in_degrees() if direction == "in" else graph.out_degrees()
    ranked = sorted(range(graph.number_of_nodes()), key=lambda u: (-degrees[u], u))
    return [(graph.label_of(u), degrees[u]) for u in ranked[:k]]


@dataclass(frozen=True)
class GraphSummary:
    """A compact structural summary of a directed graph."""

    name: str
    num_nodes: int
    num_edges: int
    density: float
    reciprocity: float
    num_self_loops: int
    max_in_degree: int
    max_out_degree: int
    num_weakly_connected_components: int
    num_strongly_connected_components: int
    largest_scc_size: int

    def as_dict(self) -> Dict[str, object]:
        """Return the summary as a plain dictionary (for JSON serialisation)."""
        return {
            "name": self.name,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "density": self.density,
            "reciprocity": self.reciprocity,
            "num_self_loops": self.num_self_loops,
            "max_in_degree": self.max_in_degree,
            "max_out_degree": self.max_out_degree,
            "num_weakly_connected_components": self.num_weakly_connected_components,
            "num_strongly_connected_components": self.num_strongly_connected_components,
            "largest_scc_size": self.largest_scc_size,
        }


def graph_summary(graph: DirectedGraph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``graph``."""
    in_degrees = graph.in_degrees()
    out_degrees = graph.out_degrees()
    sccs = strongly_connected_components(graph)
    wccs = weakly_connected_components(graph)
    return GraphSummary(
        name=graph.name,
        num_nodes=graph.number_of_nodes(),
        num_edges=graph.number_of_edges(),
        density=density(graph),
        reciprocity=reciprocity(graph),
        num_self_loops=len(graph.self_loops()),
        max_in_degree=max(in_degrees, default=0),
        max_out_degree=max(out_degrees, default=0),
        num_weakly_connected_components=len(wccs),
        num_strongly_connected_components=len(sccs),
        largest_scc_size=max((len(c) for c in sccs), default=0),
    )
