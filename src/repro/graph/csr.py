"""Immutable compressed-sparse-row (CSR) representation of a directed graph.

The numerical algorithms (PageRank, Personalized PageRank, CheiRank) operate
on the adjacency structure as arrays.  :class:`CSRGraph` stores the graph as
the classic ``indptr`` / ``indices`` pair (row = source node, columns =
successors) together with the node labels, and converts to a
:class:`scipy.sparse.csr_matrix` on demand.

A :class:`CSRGraph` is a frozen snapshot: mutating the originating
:class:`~repro.graph.digraph.DirectedGraph` afterwards does not affect it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import GraphError, NodeNotFoundError

__all__ = ["CSRGraph"]


class CSRGraph:
    """Read-only CSR adjacency structure with labels.

    Parameters
    ----------
    indptr:
        Array of length ``n + 1``; successors of node ``u`` live in
        ``indices[indptr[u]:indptr[u + 1]]``.
    indices:
        Array of length ``m`` holding successor node ids.
    labels:
        Optional display labels, indexed by node id.
    name:
        Optional graph name.
    """

    __slots__ = ("_indptr", "_indices", "_labels", "_label_index", "name")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        labels: Optional[Sequence[str]] = None,
        name: str = "",
    ) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise GraphError("indptr and indices must be one-dimensional arrays")
        if indptr.size == 0 or indptr[0] != 0:
            raise GraphError("indptr must start with 0 and be non-empty")
        if indptr[-1] != indices.size:
            raise GraphError(
                f"indptr[-1] ({int(indptr[-1])}) must equal len(indices) ({indices.size})"
            )
        if np.any(np.diff(indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        num_nodes = indptr.size - 1
        if indices.size and (indices.min() < 0 or indices.max() >= num_nodes):
            raise GraphError("indices contain node ids outside [0, n)")
        self._indptr = indptr
        self._indices = indices
        if labels is not None and len(labels) != num_nodes:
            raise GraphError(
                f"labels has length {len(labels)} but the graph has {num_nodes} nodes"
            )
        self._labels: Optional[List[str]] = list(labels) if labels is not None else None
        # Built lazily on the first label lookup: most CSR snapshots are
        # consumed by array kernels that never resolve a label.
        self._label_index: Optional[dict] = None
        self.name = name

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_directed_graph(cls, graph) -> "CSRGraph":
        """Build a CSR snapshot from a :class:`DirectedGraph`.

        Rows are sorted with one stable lexsort over the flattened successor
        lists instead of a per-node ``sorted(...)`` loop, so the conversion —
        the setup cost of every array-based kernel — is O(m log m) with the
        heavy lifting in NumPy.
        """
        num_nodes = graph.number_of_nodes()
        counts = np.asarray(graph.out_degrees(), dtype=np.int64)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        targets = np.asarray(graph.flattened_successors(), dtype=np.int64)
        sources = np.repeat(np.arange(num_nodes, dtype=np.int64), counts)
        # Sources are already grouped in ascending order; the stable sort on
        # targets therefore yields each row's successors in ascending order.
        order = np.lexsort((targets, sources))
        return cls(indptr, targets[order], labels=graph.labels(), name=graph.name)

    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: Sequence[Tuple[int, int]],
        labels: Optional[Sequence[str]] = None,
        name: str = "",
    ) -> "CSRGraph":
        """Build a CSR graph directly from ``(source, target)`` integer pairs."""
        if num_nodes < 0:
            raise GraphError(f"num_nodes must be non-negative, got {num_nodes}")
        sources = np.fromiter((e[0] for e in edges), dtype=np.int64, count=len(edges))
        targets = np.fromiter((e[1] for e in edges), dtype=np.int64, count=len(edges))
        if sources.size:
            if sources.min() < 0 or sources.max() >= num_nodes:
                raise GraphError("edge sources contain node ids outside [0, n)")
            if targets.min() < 0 or targets.max() >= num_nodes:
                raise GraphError("edge targets contain node ids outside [0, n)")
        order = np.lexsort((targets, sources))
        sources, targets = sources[order], targets[order]
        # Collapse parallel edges so the structure stays a simple graph.
        if sources.size:
            keep = np.ones(sources.size, dtype=bool)
            keep[1:] = (sources[1:] != sources[:-1]) | (targets[1:] != targets[:-1])
            sources, targets = sources[keep], targets[keep]
        counts = np.bincount(sources, minlength=num_nodes)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, targets, labels=labels, name=name)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def indptr(self) -> np.ndarray:
        """Row-pointer array (length ``n + 1``)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Column-index (successor) array (length ``m``)."""
        return self._indices

    def number_of_nodes(self) -> int:
        """Return the number of nodes."""
        return int(self._indptr.size - 1)

    def number_of_edges(self) -> int:
        """Return the number of directed edges."""
        return int(self._indices.size)

    def successors(self, node: int) -> np.ndarray:
        """Return the successor ids of ``node`` as an array."""
        self._check_id(node)
        return self._indices[self._indptr[node] : self._indptr[node + 1]]

    def out_degree(self, node: int) -> int:
        """Return the out-degree of ``node``."""
        self._check_id(node)
        return int(self._indptr[node + 1] - self._indptr[node])

    def out_degrees(self) -> np.ndarray:
        """Return the out-degree of every node as an array."""
        return np.diff(self._indptr)

    def in_degrees(self) -> np.ndarray:
        """Return the in-degree of every node as an array."""
        return np.bincount(self._indices, minlength=self.number_of_nodes()).astype(np.int64)

    def has_edge(self, source: int, target: int) -> bool:
        """Return ``True`` if the edge ``source -> target`` exists."""
        row = self.successors(source)
        position = np.searchsorted(row, target)
        return bool(position < row.size and row[position] == target)

    def edges(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(sources, targets)`` arrays listing every edge."""
        sources = np.repeat(np.arange(self.number_of_nodes(), dtype=np.int64), self.out_degrees())
        return sources, self._indices.copy()

    def _check_id(self, node: int) -> None:
        if not 0 <= node < self.number_of_nodes():
            raise NodeNotFoundError(node)

    # ------------------------------------------------------------------ #
    # labels
    # ------------------------------------------------------------------ #
    def label_of(self, node: int) -> str:
        """Return the display label of ``node``."""
        self._check_id(node)
        if self._labels is None:
            return f"#{node}"
        return self._labels[node]

    def node_for_label(self, label: str) -> int:
        """Return the node id carrying ``label`` (raises if unknown)."""
        if self._label_index is None:
            self._label_index = (
                {label: i for i, label in enumerate(self._labels)}
                if self._labels
                else {}
            )
        node = self._label_index.get(label)
        if node is None:
            raise NodeNotFoundError(label)
        return node

    def labels(self) -> List[str]:
        """Return the display labels of all nodes."""
        if self._labels is not None:
            return list(self._labels)
        return [f"#{i}" for i in range(self.number_of_nodes())]

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    def transpose(self) -> "CSRGraph":
        """Return a CSR graph with every edge reversed.

        Built entirely with array operations (counting sort on the target
        ids), so transposing stays O(n + m) with no per-edge Python loop.
        """
        n = self.number_of_nodes()
        sources = np.repeat(np.arange(n, dtype=np.int64), np.diff(self._indptr))
        # Stable sort by target: within each target bucket the sources keep
        # their ascending order, so every row of the transpose is sorted.
        order = np.argsort(self._indices, kind="stable")
        t_indices = sources[order]
        t_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(self._indices, minlength=n), out=t_indptr[1:])
        return CSRGraph(
            t_indptr,
            t_indices,
            labels=self._labels,
            name=(self.name + "-transposed") if self.name else "",
        )

    def to_scipy(self, dtype=np.float64):
        """Return the adjacency matrix as a :class:`scipy.sparse.csr_matrix`.

        ``A[u, v] == 1`` iff the edge ``u -> v`` exists.
        """
        from scipy.sparse import csr_matrix

        n = self.number_of_nodes()
        data = np.ones(self.number_of_edges(), dtype=dtype)
        return csr_matrix((data, self._indices, self._indptr), shape=(n, n))

    def to_directed_graph(self):
        """Convert back to a mutable :class:`DirectedGraph`."""
        from .digraph import DirectedGraph

        graph = DirectedGraph(name=self.name)
        for label in self.labels():
            graph.add_node(label)
        sources, targets = self.edges()
        for u, v in zip(sources.tolist(), targets.tolist()):
            graph.add_edge(int(u), int(v))
        return graph

    # ------------------------------------------------------------------ #
    # dunder protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.number_of_nodes()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
            and self.labels() == other.labels()
        )

    def __repr__(self) -> str:
        name = f" {self.name!r}" if self.name else ""
        return (
            f"<CSRGraph{name} with {self.number_of_nodes()} nodes "
            f"and {self.number_of_edges()} edges>"
        )
