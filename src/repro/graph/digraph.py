"""Mutable directed graph with labelled nodes.

:class:`DirectedGraph` is the workhorse data structure of the library.  It is
an adjacency-list directed graph whose nodes are dense integer identifiers
(``0 .. n-1``) optionally associated with a human-readable label (an article
title, a product name, a Twitter handle).  All relevance algorithms accept a
:class:`DirectedGraph` and refer to nodes either by id or by label.

Design notes
------------
* Node ids are dense and never reused; this keeps conversion to array-based
  representations (:class:`~repro.graph.csr.CSRGraph`, ``scipy.sparse``)
  trivial and cheap.
* Successor and predecessor lists are both maintained so that algorithms that
  need reverse edges (CheiRank, CycleRank's backward pruning) do not have to
  build a transpose.
* The graph is *simple* by default: parallel edges are ignored on insertion
  (``add_edge`` returns ``False`` for a duplicate).  Self loops are allowed
  but can be stripped with :func:`repro.graph.views.simplified` — the ranking
  algorithms of the paper are defined on graphs without parallel edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..exceptions import GraphError, NodeNotFoundError

__all__ = ["DirectedGraph", "Edge", "NodeRef"]

#: A node reference accepted by the public API: either a dense integer id or a
#: string label previously registered with the graph.
NodeRef = Union[int, str]


@dataclass(frozen=True)
class Edge:
    """A directed edge ``source -> target`` (by node id)."""

    source: int
    target: int

    def reversed(self) -> "Edge":
        """Return the edge pointing in the opposite direction."""
        return Edge(self.target, self.source)

    def as_tuple(self) -> Tuple[int, int]:
        """Return the edge as a plain ``(source, target)`` tuple."""
        return (self.source, self.target)


class DirectedGraph:
    """A simple directed graph with optional node labels.

    Parameters
    ----------
    name:
        Optional human-readable name of the graph (e.g. the dataset id it was
        loaded from).  Purely informational.

    Examples
    --------
    >>> g = DirectedGraph(name="toy")
    >>> a = g.add_node("A")
    >>> b = g.add_node("B")
    >>> g.add_edge(a, b)
    True
    >>> g.add_edge("B", "A")
    True
    >>> sorted(g.successors(a))
    [1]
    >>> g.number_of_edges()
    2
    """

    __slots__ = ("name", "_succ", "_pred", "_labels", "_label_index", "_num_edges")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._succ: List[Set[int]] = []
        self._pred: List[Set[int]] = []
        self._labels: List[Optional[str]] = []
        self._label_index: Dict[str, int] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_node(self, label: Optional[str] = None) -> int:
        """Add a node and return its dense integer id.

        If ``label`` is given and already present, the existing node id is
        returned instead of creating a duplicate node.
        """
        if label is not None:
            existing = self._label_index.get(label)
            if existing is not None:
                return existing
        node_id = len(self._succ)
        self._succ.append(set())
        self._pred.append(set())
        self._labels.append(label)
        if label is not None:
            self._label_index[label] = node_id
        return node_id

    def add_nodes(self, count: int) -> List[int]:
        """Add ``count`` unlabelled nodes and return their ids."""
        if count < 0:
            raise GraphError(f"cannot add a negative number of nodes: {count}")
        return [self.add_node() for _ in range(count)]

    def add_edge(self, source: NodeRef, target: NodeRef) -> bool:
        """Add the directed edge ``source -> target``.

        Unknown *labels* are created on the fly (convenient for loaders and
        generators); unknown integer ids raise :class:`NodeNotFoundError`.
        Returns ``True`` if the edge was inserted, ``False`` if it already
        existed (parallel edges are collapsed).
        """
        u = self._resolve_or_create(source)
        v = self._resolve_or_create(target)
        if v in self._succ[u]:
            return False
        self._succ[u].add(v)
        self._pred[v].add(u)
        self._num_edges += 1
        return True

    def add_edges_from(self, edges: Iterable[Tuple[NodeRef, NodeRef]]) -> int:
        """Add every edge in ``edges``; return the number actually inserted."""
        added = 0
        for source, target in edges:
            if self.add_edge(source, target):
                added += 1
        return added

    def remove_edge(self, source: NodeRef, target: NodeRef) -> bool:
        """Remove the edge ``source -> target``; return ``True`` if it existed."""
        u = self.resolve(source)
        v = self.resolve(target)
        if v not in self._succ[u]:
            return False
        self._succ[u].discard(v)
        self._pred[v].discard(u)
        self._num_edges -= 1
        return True

    def _resolve_or_create(self, ref: NodeRef) -> int:
        if isinstance(ref, str):
            existing = self._label_index.get(ref)
            if existing is not None:
                return existing
            return self.add_node(ref)
        return self._check_id(ref)

    # ------------------------------------------------------------------ #
    # node / label resolution
    # ------------------------------------------------------------------ #
    def resolve(self, ref: NodeRef) -> int:
        """Resolve a node reference (id or label) to a node id.

        Raises
        ------
        NodeNotFoundError
            If the id is out of range or the label is unknown.
        """
        if isinstance(ref, str):
            node_id = self._label_index.get(ref)
            if node_id is None:
                raise NodeNotFoundError(ref)
            return node_id
        return self._check_id(ref)

    def _check_id(self, node_id: int) -> int:
        if isinstance(node_id, bool) or not isinstance(node_id, int):
            raise NodeNotFoundError(node_id)
        if not 0 <= node_id < len(self._succ):
            raise NodeNotFoundError(node_id)
        return node_id

    def label_of(self, node_id: int) -> str:
        """Return the label of ``node_id``, or ``"#<id>"`` if it is unlabelled."""
        self._check_id(node_id)
        label = self._labels[node_id]
        return label if label is not None else f"#{node_id}"

    def raw_label_of(self, node_id: int) -> Optional[str]:
        """Return the stored label of ``node_id`` (``None`` if unlabelled)."""
        self._check_id(node_id)
        return self._labels[node_id]

    def set_label(self, node_id: int, label: str) -> None:
        """Assign or replace the label of an existing node."""
        self._check_id(node_id)
        if label in self._label_index and self._label_index[label] != node_id:
            raise GraphError(f"label {label!r} is already assigned to another node")
        old = self._labels[node_id]
        if old is not None:
            del self._label_index[old]
        self._labels[node_id] = label
        self._label_index[label] = node_id

    def has_label(self, label: str) -> bool:
        """Return ``True`` if some node carries ``label``."""
        return label in self._label_index

    def node_for_label(self, label: str) -> int:
        """Return the node id carrying ``label`` (raises if unknown)."""
        node_id = self._label_index.get(label)
        if node_id is None:
            raise NodeNotFoundError(label)
        return node_id

    def labels(self) -> List[str]:
        """Return the display labels of all nodes, indexed by node id."""
        return [
            label if label is not None else f"#{node}"
            for node, label in enumerate(self._labels)
        ]

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    def number_of_nodes(self) -> int:
        """Return the number of nodes."""
        return len(self._succ)

    def number_of_edges(self) -> int:
        """Return the number of directed edges."""
        return self._num_edges

    def nodes(self) -> range:
        """Return the node ids as a :class:`range`."""
        return range(len(self._succ))

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges in node-id order."""
        for u, targets in enumerate(self._succ):
            for v in sorted(targets):
                yield Edge(u, v)

    def edge_list(self) -> List[Tuple[int, int]]:
        """Return all edges as a sorted list of ``(source, target)`` tuples."""
        return [edge.as_tuple() for edge in self.edges()]

    def has_node(self, ref: NodeRef) -> bool:
        """Return ``True`` if the node reference exists in the graph."""
        try:
            self.resolve(ref)
        except NodeNotFoundError:
            return False
        return True

    def has_edge(self, source: NodeRef, target: NodeRef) -> bool:
        """Return ``True`` if the edge ``source -> target`` exists."""
        try:
            u = self.resolve(source)
            v = self.resolve(target)
        except NodeNotFoundError:
            return False
        return v in self._succ[u]

    def successors(self, ref: NodeRef) -> Set[int]:
        """Return the set of nodes reachable by one edge from ``ref``."""
        return set(self._succ[self.resolve(ref)])

    def predecessors(self, ref: NodeRef) -> Set[int]:
        """Return the set of nodes with an edge into ``ref``."""
        return set(self._pred[self.resolve(ref)])

    def out_degree(self, ref: NodeRef) -> int:
        """Return the number of outgoing edges of ``ref``."""
        return len(self._succ[self.resolve(ref)])

    def in_degree(self, ref: NodeRef) -> int:
        """Return the number of incoming edges of ``ref``."""
        return len(self._pred[self.resolve(ref)])

    def out_degrees(self) -> List[int]:
        """Return the out-degree of every node, indexed by node id."""
        return [len(s) for s in self._succ]

    def flattened_successors(self) -> List[int]:
        """Return every node's successors concatenated in node-id order.

        Within one node's block the order is arbitrary (sets are unordered);
        pair with :meth:`out_degrees` to recover the per-node boundaries.
        This is the zero-copy-per-node feed for CSR conversion.
        """
        from itertools import chain

        return list(chain.from_iterable(self._succ))

    def in_degrees(self) -> List[int]:
        """Return the in-degree of every node, indexed by node id."""
        return [len(p) for p in self._pred]

    def has_self_loop(self, ref: NodeRef) -> bool:
        """Return ``True`` if ``ref`` has an edge to itself."""
        node = self.resolve(ref)
        return node in self._succ[node]

    def self_loops(self) -> List[int]:
        """Return the ids of all nodes carrying a self loop."""
        return [u for u in self.nodes() if u in self._succ[u]]

    # ------------------------------------------------------------------ #
    # copies and conversions
    # ------------------------------------------------------------------ #
    def copy(self, name: Optional[str] = None) -> "DirectedGraph":
        """Return a deep copy of the graph (labels included)."""
        clone = DirectedGraph(name=self.name if name is None else name)
        clone._succ = [set(s) for s in self._succ]
        clone._pred = [set(p) for p in self._pred]
        clone._labels = list(self._labels)
        clone._label_index = dict(self._label_index)
        clone._num_edges = self._num_edges
        return clone

    def transpose(self, name: Optional[str] = None) -> "DirectedGraph":
        """Return a new graph with every edge reversed (labels preserved)."""
        reversed_graph = DirectedGraph(
            name=(self.name + "-transposed") if name is None else name
        )
        reversed_graph._succ = [set(p) for p in self._pred]
        reversed_graph._pred = [set(s) for s in self._succ]
        reversed_graph._labels = list(self._labels)
        reversed_graph._label_index = dict(self._label_index)
        reversed_graph._num_edges = self._num_edges
        return reversed_graph

    def to_csr(self):
        """Return an immutable :class:`~repro.graph.csr.CSRGraph` view."""
        from .csr import CSRGraph

        return CSRGraph.from_directed_graph(self)

    def to_networkx(self):
        """Return a :class:`networkx.DiGraph` copy (requires networkx).

        Nodes of the returned graph are the display labels, which is the most
        convenient form for interoperability and plotting.
        """
        import networkx as nx

        nx_graph = nx.DiGraph(name=self.name)
        for node in self.nodes():
            nx_graph.add_node(self.label_of(node))
        for edge in self.edges():
            nx_graph.add_edge(self.label_of(edge.source), self.label_of(edge.target))
        return nx_graph

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[NodeRef, NodeRef]],
        *,
        name: str = "",
        num_nodes: Optional[int] = None,
    ) -> "DirectedGraph":
        """Build a graph from an iterable of edges.

        String endpoints become labelled nodes; integer endpoints index into a
        dense id space that is grown as needed (``num_nodes`` pre-allocates).
        """
        graph = cls(name=name)
        if num_nodes is not None:
            graph.add_nodes(num_nodes)
        for source, target in edges:
            graph._ensure_capacity(source)
            graph._ensure_capacity(target)
            graph.add_edge(source, target)
        return graph

    def _ensure_capacity(self, ref: NodeRef) -> None:
        if isinstance(ref, int) and not isinstance(ref, bool) and ref >= len(self._succ):
            while len(self._succ) <= ref:
                self.add_node()

    @classmethod
    def from_networkx(cls, nx_graph, *, name: Optional[str] = None) -> "DirectedGraph":
        """Build a :class:`DirectedGraph` from a :class:`networkx.DiGraph`.

        Node objects are converted to their ``str()`` form and used as labels.
        """
        graph = cls(name=name if name is not None else str(nx_graph.name or ""))
        for node in nx_graph.nodes():
            graph.add_node(str(node))
        for source, target in nx_graph.edges():
            graph.add_edge(str(source), str(target))
        return graph

    # ------------------------------------------------------------------ #
    # dunder protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._succ)

    def __contains__(self, ref: object) -> bool:
        if isinstance(ref, (int, str)):
            return self.has_node(ref)
        return False

    def __iter__(self) -> Iterator[int]:
        return iter(self.nodes())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DirectedGraph):
            return NotImplemented
        return (
            self._labels == other._labels
            and self._succ == other._succ
        )

    def __repr__(self) -> str:
        name = f" {self.name!r}" if self.name else ""
        return (
            f"<DirectedGraph{name} with {self.number_of_nodes()} nodes "
            f"and {self.number_of_edges()} edges>"
        )

    # ------------------------------------------------------------------ #
    # convenience accessors used across the library
    # ------------------------------------------------------------------ #
    def successor_lists(self) -> List[Sequence[int]]:
        """Return, for each node, a sorted tuple of its successors.

        This is the representation most traversal-heavy algorithms (CycleRank's
        cycle enumeration) iterate over; sorting makes runs deterministic.
        """
        return [tuple(sorted(s)) for s in self._succ]

    def predecessor_lists(self) -> List[Sequence[int]]:
        """Return, for each node, a sorted tuple of its predecessors."""
        return [tuple(sorted(p)) for p in self._pred]
