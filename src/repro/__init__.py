"""repro — personalized relevance algorithms for directed graphs.

A from-scratch reproduction of *"Comparing Personalized Relevance Algorithms
for Directed Graphs"* (ICDE 2024): the CycleRank algorithm, the six
PageRank-family baselines it is compared against, the synthetic stand-ins
for the paper's 50 pre-loaded datasets, and the task-builder / scheduler /
executor / datastore platform that serves the comparisons.

Quickstart
----------
>>> from repro import cyclerank, personalized_pagerank, pagerank
>>> from repro.datasets import generate_wikilink_graph
>>> graph = generate_wikilink_graph("en", "2018-03-01")
>>> cr = cyclerank(graph, "Freddie Mercury", max_cycle_length=3)
>>> ppr = personalized_pagerank(graph, "Freddie Mercury", alpha=0.3)
>>> cr.top_labels(5)[0]
'Freddie Mercury'

The higher-level entry point is the platform gateway, which mirrors the web
demo's API::

    from repro.platform import ApiGateway

    with ApiGateway() as gateway:
        comparison = gateway.run_queries([
            {"dataset_id": "enwiki-2018", "algorithm": "cyclerank",
             "source": "Freddie Mercury", "parameters": {"k": 3}},
            {"dataset_id": "enwiki-2018", "algorithm": "personalized-pagerank",
             "source": "Freddie Mercury", "parameters": {"alpha": 0.3}},
        ])
        print(gateway.get_comparison_table(comparison, k=5).to_text())
"""

from __future__ import annotations

from .algorithms import (
    Algorithm,
    available_algorithms,
    cheirank,
    cyclerank,
    get_algorithm,
    pagerank,
    personalized_cheirank,
    personalized_pagerank,
    personalized_twodrank,
    ppr_montecarlo,
    ppr_push,
    register_algorithm,
    run_algorithm,
    twodrank,
)
from .exceptions import ReproError
from .graph import CSRGraph, DirectedGraph, GraphBuilder
from .io import read_graph, write_graph
from .ranking import ComparisonTable, Ranking, algorithm_comparison, dataset_comparison
from .scoring import ScoringFunction, get_scoring_function
from .version import __version__

__all__ = [
    "__version__",
    # graph substrate
    "DirectedGraph",
    "CSRGraph",
    "GraphBuilder",
    # io
    "read_graph",
    "write_graph",
    # algorithms
    "pagerank",
    "personalized_pagerank",
    "cheirank",
    "personalized_cheirank",
    "twodrank",
    "personalized_twodrank",
    "cyclerank",
    "ppr_push",
    "ppr_montecarlo",
    "Algorithm",
    "register_algorithm",
    "get_algorithm",
    "available_algorithms",
    "run_algorithm",
    # ranking
    "Ranking",
    "ComparisonTable",
    "algorithm_comparison",
    "dataset_comparison",
    # scoring
    "ScoringFunction",
    "get_scoring_function",
    # errors
    "ReproError",
]
