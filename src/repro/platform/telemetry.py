"""End-to-end request tracing and a metrics exposition surface.

The platform's earlier subsystems each answer "is it working?" through
lump-sum counters (cache hits, degraded writes, shed submissions).  This
module answers the two operator questions those counters cannot:

* "where did this slow request spend its time?" — a :class:`Tracer` mints
  one trace id per submission and threads a span context through the same
  thread-local seam ``deadline_scope`` already proved out, so every layer
  (REST handling, admission, scheduler dispatch, cache lookup, single-flight
  joins, batch execution, and each replicated-storage replica attempt) can
  hang a timed span off the ambient parent without any explicit wiring;
* "what is p99 latency right now?" — a :class:`MetricsRegistry` keeps
  thread-safe counters, gauges and fixed-log-bucket histograms, rendered as
  a Prometheus text exposition (``GET /metrics``) and as a ``telemetry``
  section inside ``platform_stats()``.

Design constraints, in order:

* **Zero wiring for deep components.**  ``replication``/``resilience``/
  ``executor`` never see a tracer or registry — they call the module-level
  helpers :func:`child_span` and :func:`add_span_event`, which read the
  ambient span from a thread local and degrade to no-ops when nothing is
  recording.  A span carries a reference to the tracer that minted it, so
  finished spans find their way home through the parent chain.
* **Bounded memory.**  Finished spans are kept per trace in an LRU-bounded
  store (``max_traces`` × ``max_spans_per_trace``); spans slower than a
  configurable threshold additionally land in a fixed-size ring buffer.
  Span names form a small fixed vocabulary, so the per-span-name latency
  histograms cannot blow up metric cardinality.
* **Negligible overhead.**  With ``enabled=False`` every entry point
  returns a shared no-op span immediately; ``benchmarks/
  bench_telemetry_overhead.py`` holds the instrumented/uninstrumented
  gateway-throughput delta under 5%.
"""

from __future__ import annotations

import math
import threading
import time
import uuid
from collections import OrderedDict, deque
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "MetricsRegistry",
    "Span",
    "Tracer",
    "add_span_event",
    "child_span",
    "current_span",
    "trace_scope",
]

# Log-spaced latency buckets in milliseconds, shared by every histogram
# unless a caller overrides them.  The top bucket comfortably covers a
# full comparison against a large dataset; everything slower lands in +Inf.
DEFAULT_BUCKETS_MS: Tuple[float, ...] = (
    0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000,
)

_MAX_EVENTS_PER_SPAN = 64


# --------------------------------------------------------------------- #
# Metrics registry
# --------------------------------------------------------------------- #
class _Histogram:
    """Fixed-bucket histogram with percentile readout.

    Observations are only bucketed — individual values are not retained —
    so memory is constant and percentiles are estimated by linear
    interpolation inside the bucket that crosses the requested quantile.
    """

    __slots__ = ("bounds", "counts", "total", "sum")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # final slot is +Inf
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        index = len(self.bounds)
        for position, bound in enumerate(self.bounds):
            if value <= bound:
                index = position
                break
        self.counts[index] += 1
        self.total += 1
        self.sum += value

    def percentile(self, quantile: float) -> float:
        if self.total == 0:
            return 0.0
        target = quantile * self.total
        cumulative = 0
        for position, count in enumerate(self.counts):
            previous = cumulative
            cumulative += count
            if cumulative >= target and count:
                lower = self.bounds[position - 1] if position > 0 else 0.0
                if position >= len(self.bounds):
                    return lower  # +Inf bucket: report its lower bound
                upper = self.bounds[position]
                fraction = (target - previous) / count
                return lower + (upper - lower) * fraction
        return self.bounds[-1]

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.total,
            "sum": round(self.sum, 3),
            "p50": round(self.percentile(0.50), 3),
            "p95": round(self.percentile(0.95), 3),
            "p99": round(self.percentile(0.99), 3),
        }


class _Metric:
    __slots__ = ("kind", "help", "samples")

    def __init__(self, kind: str, help_text: str) -> None:
        self.kind = kind
        self.help = help_text
        # label tuple (sorted (key, value) pairs) -> float or _Histogram
        self.samples: Dict[Tuple[Tuple[str, str], ...], Any] = {}


def _label_key(labels: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def _format_labels(key: Tuple[Tuple[str, str], ...], extra: str = "") -> str:
    parts = [
        '%s="%s"' % (name, value.replace("\\", "\\\\").replace('"', '\\"'))
        for name, value in key
    ]
    if extra:
        parts.append(extra)
    return "{%s}" % ",".join(parts) if parts else ""


class MetricsRegistry:
    """Thread-safe counters, gauges and histograms with Prometheus output.

    Metrics are created lazily on first use; re-using a name with a
    different kind raises ``ValueError`` so the exposition can never carry
    duplicate, conflicting ``# TYPE`` lines.  ``enabled=False`` turns every
    recording call into an early-return no-op (the uninstrumented arm of
    the overhead benchmark).
    """

    def __init__(self, *, namespace: str = "repro", enabled: bool = True) -> None:
        self.namespace = namespace
        self.enabled = enabled
        self._lock = threading.Lock()
        self._metrics: "OrderedDict[str, _Metric]" = OrderedDict()
        self._callbacks: "OrderedDict[str, Tuple[Callable[[], float], str]]" = (
            OrderedDict()
        )

    # -- recording ----------------------------------------------------- #
    def _metric(self, name: str, kind: str, help_text: str) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = _Metric(kind, help_text)
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}, not {kind}"
            )
        return metric

    def counter_inc(
        self, name: str, amount: float = 1.0, *, help: str = "", **labels: Any
    ) -> None:
        if not self.enabled:
            return
        key = _label_key(labels)
        with self._lock:
            metric = self._metric(name, "counter", help)
            metric.samples[key] = metric.samples.get(key, 0.0) + amount

    def gauge_set(
        self, name: str, value: float, *, help: str = "", **labels: Any
    ) -> None:
        if not self.enabled:
            return
        key = _label_key(labels)
        with self._lock:
            metric = self._metric(name, "gauge", help)
            metric.samples[key] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        *,
        help: str = "",
        buckets: Optional[Tuple[float, ...]] = None,
        **labels: Any,
    ) -> None:
        if not self.enabled:
            return
        key = _label_key(labels)
        with self._lock:
            metric = self._metric(name, "histogram", help)
            histogram = metric.samples.get(key)
            if histogram is None:
                histogram = _Histogram(buckets or DEFAULT_BUCKETS_MS)
                metric.samples[key] = histogram
            histogram.observe(value)

    def register_callback(
        self, name: str, provider: Callable[[], float], *, help: str = ""
    ) -> None:
        """Register a gauge whose value is pulled at scrape time."""
        with self._lock:
            if name in self._metrics:
                raise ValueError(f"metric {name!r} already registered")
            self._callbacks[name] = (provider, help)

    # -- readout ------------------------------------------------------- #
    def snapshot(self) -> Dict[str, Any]:
        """Structured readout for the ``telemetry`` stats section."""
        out: Dict[str, Any] = {}
        with self._lock:
            for name, metric in self._metrics.items():
                if metric.kind == "histogram":
                    out[name] = {
                        (_format_labels(key) or "_"): histogram.summary()
                        for key, histogram in metric.samples.items()
                    }
                elif len(metric.samples) == 1 and () in metric.samples:
                    out[name] = metric.samples[()]
                else:
                    out[name] = {
                        _format_labels(key): value
                        for key, value in metric.samples.items()
                    }
            callbacks = list(self._callbacks.items())
        for name, (provider, _help) in callbacks:
            try:
                out[name] = provider()
            except Exception:  # pragma: no cover - defensive
                out[name] = None
        return out

    def render_prometheus(self) -> str:
        """Render the registry in the Prometheus text exposition format."""
        lines: List[str] = []
        with self._lock:
            metrics = [
                (name, metric.kind, metric.help, dict(metric.samples))
                for name, metric in self._metrics.items()
            ]
            callbacks = list(self._callbacks.items())
        prefix = f"{self.namespace}_" if self.namespace else ""
        for name, kind, help_text, samples in metrics:
            full = prefix + name
            if help_text:
                lines.append(f"# HELP {full} {help_text}")
            lines.append(f"# TYPE {full} {kind}")
            for key, value in sorted(samples.items()):
                if kind == "histogram":
                    cumulative = 0
                    for bound, count in zip(value.bounds, value.counts):
                        cumulative += count
                        labels = _format_labels(key, f'le="{_format_bound(bound)}"')
                        lines.append(f"{full}_bucket{labels} {cumulative}")
                    labels = _format_labels(key, 'le="+Inf"')
                    lines.append(f"{full}_bucket{labels} {value.total}")
                    lines.append(f"{full}_sum{_format_labels(key)} {value.sum:g}")
                    lines.append(f"{full}_count{_format_labels(key)} {value.total}")
                else:
                    lines.append(f"{full}{_format_labels(key)} {value:g}")
        for name, (provider, help_text) in callbacks:
            full = prefix + name
            try:
                value = float(provider())
            except Exception:  # pragma: no cover - defensive
                continue
            if help_text:
                lines.append(f"# HELP {full} {help_text}")
            lines.append(f"# TYPE {full} gauge")
            lines.append(f"{full} {value:g}")
        if not lines:
            return ""
        return "\n".join(lines) + "\n"


def _format_bound(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    return f"{bound:g}"


# --------------------------------------------------------------------- #
# Spans and the thread-local trace scope
# --------------------------------------------------------------------- #
class Span:
    """One timed operation inside a trace.

    Spans are cheap value objects: wall-clock start for display, a
    monotonic ``perf_counter`` pair for the duration, a bounded event list
    and free-form annotations.  ``finish()`` is idempotent and hands the
    span to the owning tracer for collection.
    """

    recording = True

    __slots__ = (
        "tracer",
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "annotations",
        "events",
        "started_at",
        "_started_perf",
        "duration_ms",
        "_finished",
        "_lock",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        *,
        trace_id: str,
        parent_id: Optional[str],
        annotations: Dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = uuid.uuid4().hex[:16]
        self.parent_id = parent_id
        self.annotations = dict(annotations)
        self.events: List[Dict[str, Any]] = []
        self.started_at = time.time()
        self._started_perf = time.perf_counter()
        self.duration_ms: Optional[float] = None
        self._finished = False
        self._lock = threading.Lock()

    def annotate(self, **fields: Any) -> None:
        with self._lock:
            self.annotations.update(fields)

    def add_event(self, name: str, **fields: Any) -> None:
        offset_ms = (time.perf_counter() - self._started_perf) * 1000.0
        with self._lock:
            if len(self.events) < _MAX_EVENTS_PER_SPAN:
                self.events.append(
                    {"name": name, "offset_ms": round(offset_ms, 3), **fields}
                )

    def finish(self) -> None:
        with self._lock:
            if self._finished:
                return
            self._finished = True
            self.duration_ms = (time.perf_counter() - self._started_perf) * 1000.0
        self.tracer._collect(self)

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "name": self.name,
                "trace_id": self.trace_id,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "started_at": self.started_at,
                "duration_ms": (
                    round(self.duration_ms, 3)
                    if self.duration_ms is not None
                    else None
                ),
                "annotations": dict(self.annotations),
                "events": [dict(event) for event in self.events],
            }


class _NoopSpan:
    """Shared sentinel installed when nothing is recording."""

    recording = False
    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_id: Optional[str] = None
    tracer: Optional["Tracer"] = None

    def annotate(self, **fields: Any) -> None:
        pass

    def add_event(self, name: str, **fields: Any) -> None:
        pass

    def finish(self) -> None:
        pass

    def as_dict(self) -> Dict[str, Any]:
        return {}


NOOP_SPAN = _NoopSpan()

_trace_local = threading.local()


class _TraceScope:
    """Install a span as the thread's ambient parent; mirror of
    ``resilience._DeadlineScope`` so the two compose in any order."""

    __slots__ = ("_span", "_previous")

    def __init__(self, span: Optional[Span]) -> None:
        self._span = span
        self._previous: Optional[Span] = None

    def __enter__(self) -> Optional[Span]:
        self._previous = getattr(_trace_local, "span", None)
        _trace_local.span = self._span
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        _trace_local.span = self._previous
        return False


def trace_scope(span: Optional[Span]) -> _TraceScope:
    """Context manager installing ``span`` (may be ``None`` or a no-op span)
    as the calling thread's ambient trace parent."""
    return _TraceScope(span)


def current_span() -> Optional[Span]:
    """The span installed on this thread, or ``None``."""
    return getattr(_trace_local, "span", None)


@contextmanager
def child_span(name: str, **annotations: Any) -> Iterator[Any]:
    """Open a child of the ambient span, install it for the duration, and
    finish it on exit; yields a shared no-op span when nothing is recording
    so call sites never branch.  An escaping exception is recorded as an
    ``error`` annotation before re-raising."""
    parent = current_span()
    if parent is None or not parent.recording or parent.tracer is None:
        yield NOOP_SPAN
        return
    span = parent.tracer.start_span(name, parent=parent, **annotations)
    with trace_scope(span):
        try:
            yield span
        except BaseException as exc:
            span.annotate(error=type(exc).__name__)
            raise
        finally:
            span.finish()


def add_span_event(name: str, **fields: Any) -> None:
    """Attach a point-in-time event to the ambient span, if any."""
    span = current_span()
    if span is not None and span.recording:
        span.add_event(name, **fields)


# --------------------------------------------------------------------- #
# Tracer
# --------------------------------------------------------------------- #
class Tracer:
    """Mints trace ids, collects finished spans, reconstructs span trees.

    Finished spans are stored per trace id in an LRU-bounded map so a
    completed comparison's full tree can be rebuilt on demand; every span
    duration also feeds the shared ``span_duration_ms`` histogram (labelled
    by span name — a fixed vocabulary), and spans slower than
    ``slow_threshold_ms`` land in a bounded ring surfaced through stats.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        enabled: bool = True,
        slow_threshold_ms: float = 500.0,
        max_traces: int = 256,
        max_spans_per_trace: int = 512,
        slow_ring_size: int = 64,
    ) -> None:
        self.registry = registry
        self.enabled = enabled
        self.slow_threshold_ms = float(slow_threshold_ms)
        self.max_traces = int(max_traces)
        self.max_spans_per_trace = int(max_spans_per_trace)
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, List[Dict[str, Any]]]" = OrderedDict()
        self._slow: deque = deque(maxlen=int(slow_ring_size))
        self._spans_collected = 0
        self._spans_dropped = 0

    # -- span creation ------------------------------------------------- #
    def start_trace(self, name: str, **annotations: Any) -> Any:
        """Open a root span.  If the calling thread already carries a
        recording span (e.g. the REST request span around a submission),
        the new span joins that trace as a child instead of minting a
        fresh trace id — so one HTTP request and the comparison it spawns
        share a single trace."""
        if not self.enabled:
            return NOOP_SPAN
        parent = current_span()
        if parent is not None and parent.recording:
            return self.start_span(name, parent=parent, **annotations)
        return Span(
            self,
            name,
            trace_id=uuid.uuid4().hex,
            parent_id=None,
            annotations=annotations,
        )

    def start_span(
        self, name: str, *, parent: Optional[Span] = None, **annotations: Any
    ) -> Any:
        if not self.enabled:
            return NOOP_SPAN
        if parent is not None and parent.recording:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:
            trace_id = uuid.uuid4().hex
            parent_id = None
        return Span(
            self, name, trace_id=trace_id, parent_id=parent_id,
            annotations=annotations,
        )

    # -- collection ---------------------------------------------------- #
    def _collect(self, span: Span) -> None:
        snapshot = span.as_dict()
        duration = snapshot["duration_ms"] or 0.0
        self.registry.observe(
            "span_duration_ms",
            duration,
            help="Latency distribution per span name",
            span=span.name,
        )
        with self._lock:
            bucket = self._traces.get(span.trace_id)
            if bucket is None:
                while len(self._traces) >= self.max_traces:
                    self._traces.popitem(last=False)
                bucket = []
                self._traces[span.trace_id] = bucket
            else:
                self._traces.move_to_end(span.trace_id)
            if len(bucket) < self.max_spans_per_trace:
                bucket.append(snapshot)
                self._spans_collected += 1
            else:
                self._spans_dropped += 1
            if duration >= self.slow_threshold_ms:
                self._slow.append(
                    {
                        "trace_id": span.trace_id,
                        "span": span.name,
                        "duration_ms": round(duration, 3),
                        "started_at": snapshot["started_at"],
                        "annotations": snapshot["annotations"],
                    }
                )

    # -- readout ------------------------------------------------------- #
    def trace_tree(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """Reconstruct a finished trace as a parent/child tree, or ``None``
        if no spans were collected for the id."""
        with self._lock:
            bucket = self._traces.get(trace_id)
            spans = [dict(span) for span in bucket] if bucket else None
        if not spans:
            return None
        spans.sort(key=lambda span: span["started_at"])
        nodes = {span["span_id"]: {**span, "children": []} for span in spans}
        roots: List[Dict[str, Any]] = []
        for span in spans:
            node = nodes[span["span_id"]]
            parent = nodes.get(span["parent_id"]) if span["parent_id"] else None
            if parent is not None:
                parent["children"].append(node)
            else:
                roots.append(node)
        return {"trace_id": trace_id, "span_count": len(spans), "roots": roots}

    def slow_spans(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [dict(entry) for entry in self._slow]

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "enabled": self.enabled,
                "traces_tracked": len(self._traces),
                "spans_collected": self._spans_collected,
                "spans_dropped": self._spans_dropped,
                "slow_threshold_ms": self.slow_threshold_ms,
                "slow_spans": [dict(entry) for entry in self._slow],
            }
