"""The Datastore component: datasets, results and logs.

The paper's datastore "is responsible for storing and managing datasets" and
"provides storage for results and logs produced by the system".  This
implementation keeps everything in memory (thread-safe) and can optionally
persist results and logs to a directory as JSON/plain-text files, which is
what the file-backed deployment of the demo does.

Results are stored as plain dictionaries (the serialised form of
:class:`~repro.ranking.result.Ranking` and
:class:`~repro.ranking.comparison.ComparisonTable`), so the datastore has no
dependency on the algorithm layer and can be swapped for a real database
without touching the rest of the platform.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from ..exceptions import StorageError
from ..graph.digraph import DirectedGraph
from .cache import ResultCache

__all__ = ["DataStore"]


class DataStore:
    """Thread-safe storage for datasets, results, logs and cached rankings.

    Parameters
    ----------
    directory:
        Optional directory for persisting results and logs to disk.  Datasets
        are always kept in memory (they are either generated or uploaded as
        graphs); results and logs written while a directory is configured are
        additionally mirrored as ``results/<id>.json`` and ``logs/<id>.log``.
    result_cache:
        The platform-wide ranking cache; a fresh default-capacity
        :class:`~repro.platform.cache.ResultCache` is created when omitted.
        The datastore owns the cache so dataset replacement and removal can
        invalidate the affected entries atomically with the dataset change.
    """

    def __init__(
        self,
        directory: Optional[str | Path] = None,
        *,
        result_cache: Optional[ResultCache] = None,
    ) -> None:
        self._lock = threading.RLock()
        self._datasets: Dict[str, DirectedGraph] = {}
        self._dataset_versions: Dict[str, int] = {}
        self._results: Dict[str, dict] = {}
        self._logs: Dict[str, List[str]] = {}
        self.result_cache = result_cache if result_cache is not None else ResultCache()
        self._directory: Optional[Path] = Path(directory) if directory is not None else None
        if self._directory is not None:
            try:
                (self._directory / "results").mkdir(parents=True, exist_ok=True)
                (self._directory / "logs").mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                raise StorageError(f"cannot create datastore directory: {exc}") from exc

    # ------------------------------------------------------------------ #
    # datasets
    # ------------------------------------------------------------------ #
    def store_dataset(self, dataset_id: str, graph: DirectedGraph) -> None:
        """Store (or replace) a dataset graph under ``dataset_id``.

        Replacing an existing dataset invalidates every cached ranking that
        was computed on the previous graph.
        """
        with self._lock:
            replacing = dataset_id in self._datasets
            self._datasets[dataset_id] = graph
            self._dataset_versions[dataset_id] = self._dataset_versions.get(dataset_id, 0) + 1
        if replacing:
            self.result_cache.invalidate_dataset(dataset_id)

    def fetch_dataset(self, dataset_id: str) -> DirectedGraph:
        """Return the stored dataset graph (raises :class:`StorageError` if absent)."""
        with self._lock:
            graph = self._datasets.get(dataset_id)
        if graph is None:
            raise StorageError(f"dataset {dataset_id!r} is not stored in the datastore")
        return graph

    def fetch_dataset_with_version(self, dataset_id: str) -> tuple[DirectedGraph, int]:
        """Return ``(graph, version)`` as one consistent snapshot.

        The version counts uploads of the dataset (1 for the first store);
        cache keys embed it so a ranking can never outlive the exact graph it
        was computed on, even across concurrent re-uploads.
        """
        with self._lock:
            graph = self._datasets.get(dataset_id)
            version = self._dataset_versions.get(dataset_id, 0)
        if graph is None:
            raise StorageError(f"dataset {dataset_id!r} is not stored in the datastore")
        return graph, version

    def dataset_version(self, dataset_id: str) -> int:
        """Return the upload counter of a dataset (0 if it was never stored)."""
        with self._lock:
            return self._dataset_versions.get(dataset_id, 0)

    def has_dataset(self, dataset_id: str) -> bool:
        """Return ``True`` if a dataset graph is stored under ``dataset_id``."""
        with self._lock:
            return dataset_id in self._datasets

    def list_datasets(self) -> List[str]:
        """Return the identifiers of all stored datasets, sorted."""
        with self._lock:
            return sorted(self._datasets)

    def drop_dataset(self, dataset_id: str) -> None:
        """Remove a stored dataset (no error if absent).

        Cached rankings computed on the dataset are invalidated alongside.
        """
        with self._lock:
            self._datasets.pop(dataset_id, None)
            self._dataset_versions[dataset_id] = self._dataset_versions.get(dataset_id, 0) + 1
        self.result_cache.invalidate_dataset(dataset_id)

    # ------------------------------------------------------------------ #
    # results
    # ------------------------------------------------------------------ #
    def put_result(self, result_id: str, payload: Mapping[str, object]) -> None:
        """Store a result payload (a JSON-serialisable mapping).

        When a persistence directory is configured the file is written
        *before* the result becomes visible in memory, so any reader that can
        already see the result is guaranteed to also find it on disk.
        """
        serialisable = dict(payload)
        if self._directory is not None:
            path = self._directory / "results" / f"{result_id}.json"
            try:
                path.write_text(json.dumps(serialisable, indent=2, default=str),
                                encoding="utf-8")
            except (OSError, TypeError) as exc:
                raise StorageError(f"cannot persist result {result_id!r}: {exc}") from exc
        with self._lock:
            self._results[result_id] = serialisable

    def get_result(self, result_id: str) -> dict:
        """Return a stored result payload (raises :class:`StorageError` if absent)."""
        with self._lock:
            if result_id in self._results:
                return dict(self._results[result_id])
        if self._directory is not None:
            path = self._directory / "results" / f"{result_id}.json"
            if path.exists():
                try:
                    return json.loads(path.read_text(encoding="utf-8"))
                except (OSError, json.JSONDecodeError) as exc:
                    raise StorageError(
                        f"cannot read persisted result {result_id!r}: {exc}"
                    ) from exc
        raise StorageError(f"result {result_id!r} is not stored in the datastore")

    def has_result(self, result_id: str) -> bool:
        """Return ``True`` if a result is stored under ``result_id``."""
        with self._lock:
            if result_id in self._results:
                return True
        if self._directory is not None:
            return (self._directory / "results" / f"{result_id}.json").exists()
        return False

    def list_results(self) -> List[str]:
        """Return the identifiers of all stored results, sorted."""
        with self._lock:
            identifiers = set(self._results)
        if self._directory is not None:
            identifiers.update(
                path.stem for path in (self._directory / "results").glob("*.json")
            )
        return sorted(identifiers)

    # ------------------------------------------------------------------ #
    # logs
    # ------------------------------------------------------------------ #
    def append_log(self, log_id: str, message: str) -> None:
        """Append one log line to the log stream ``log_id``."""
        with self._lock:
            self._logs.setdefault(log_id, []).append(message)
        if self._directory is not None:
            path = self._directory / "logs" / f"{log_id}.log"
            try:
                with open(path, "a", encoding="utf-8") as handle:
                    handle.write(message + "\n")
            except OSError as exc:
                raise StorageError(f"cannot persist log {log_id!r}: {exc}") from exc

    def get_logs(self, log_id: str) -> List[str]:
        """Return every log line recorded for ``log_id`` (empty list if none)."""
        with self._lock:
            return list(self._logs.get(log_id, []))

    def list_logs(self) -> List[str]:
        """Return the identifiers of all log streams, sorted."""
        with self._lock:
            return sorted(self._logs)
