"""The Datastore component: datasets, results, logs and compiled artifacts.

The paper's datastore "is responsible for storing and managing datasets" and
"provides storage for results and logs produced by the system".  This
implementation keeps everything in memory (thread-safe) and can optionally
persist results and logs to a directory as JSON/plain-text files, which is
what the file-backed deployment of the demo does.

Results are stored as plain dictionaries (the serialised form of
:class:`~repro.ranking.result.Ranking` and
:class:`~repro.ranking.comparison.ComparisonTable`), so the datastore has no
dependency on the algorithm layer and can be swapped for a real database
without touching the rest of the platform.

Compiled-artifact cache
-----------------------
Alongside each dataset graph the datastore caches one
:class:`~repro.graph.compiled.CompiledGraph` — the frozen CSR adjacency, its
transpose, out-degrees, dangling mask and flat adjacency lists that every
executor dispatch would otherwise rebuild from the mutable
:class:`DirectedGraph`.  The invalidation contract mirrors the result
cache's: the artifact is keyed by the dataset's *upload version*, the entry
is dropped whenever :meth:`DataStore.store_dataset` replaces or
:meth:`DataStore.drop_dataset` removes the dataset, and
:meth:`fetch_compiled_with_version` re-checks the version under the lock
before serving — so a stale CSR can never be served for a re-uploaded graph,
even if a compilation was racing the upload.  Hit/miss/invalidation counters
are exposed through :meth:`artifact_stats` (and from there through
``platform_stats()``, ``GET /api/stats`` and the CLI's ``--cache-stats``).
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple
from urllib.parse import quote, unquote

import numpy as np

from ..exceptions import InvalidParameterError, StorageError
from ..graph.compiled import CompiledGraph
from ..graph.csr import CSRGraph
from ..graph.digraph import DirectedGraph
from .cache import ResultCache

__all__ = ["DataStore", "FileBackedDataStore"]


class DataStore:
    """Thread-safe storage for datasets, results, logs and cached rankings.

    Parameters
    ----------
    directory:
        Optional directory for persisting results and logs to disk.  Datasets
        are always kept in memory (they are either generated or uploaded as
        graphs); results and logs written while a directory is configured are
        additionally mirrored as ``results/<id>.json`` and ``logs/<id>.log``.
    result_cache:
        The platform-wide ranking cache; a fresh default-capacity
        :class:`~repro.platform.cache.ResultCache` is created when omitted.
        The datastore owns the cache so dataset replacement and removal can
        invalidate the affected entries atomically with the dataset change.
    cache_ttl_seconds, cache_admit_on_second_miss:
        Policy knobs forwarded to the internally-built
        :class:`~repro.platform.cache.ResultCache` (time-based expiry and
        scan-resistant admission); only valid when ``result_cache`` is
        omitted — a caller providing its own cache configures it directly.
    max_log_lines:
        Per-key retention bound for :meth:`append_log`: only the newest N
        lines of each log stream are kept in memory, so a long-lived server
        whose access log appends on every request cannot grow memory
        linearly with request count.  The default is generous (10000 lines
        per key); a persistence directory still receives every line.
    """

    def __init__(
        self,
        directory: Optional[str | Path] = None,
        *,
        result_cache: Optional[ResultCache] = None,
        cache_ttl_seconds: Optional[float] = None,
        cache_admit_on_second_miss: bool = False,
        max_log_lines: int = 10_000,
    ) -> None:
        if max_log_lines < 1:
            raise InvalidParameterError(
                f"max_log_lines must be a positive integer, got {max_log_lines}"
            )
        self._max_log_lines = max_log_lines
        self._lock = threading.RLock()
        self._datasets: Dict[str, DirectedGraph] = {}
        self._dataset_versions: Dict[str, int] = {}
        #: dataset id -> monotonic timestamp of the last store/fetch; the
        #: replicated store's spill policy demotes the coldest datasets first.
        self._dataset_access: Dict[str, float] = {}
        #: dataset id -> estimated resident bytes of the stored graph; the
        #: replicated store's automatic spill policy budgets against the sum.
        self._dataset_bytes: Dict[str, int] = {}
        #: dataset id -> version the dataset was authoritatively deleted at.
        #: A tombstone outlives the copy it deleted so an outage-surviving
        #: stale replica cannot resurrect the dataset (see the replicated
        #: store's anti-entropy passes); it is reaped once every replica has
        #: acknowledged the deletion.
        self._dataset_tombstones: Dict[str, int] = {}
        #: result ids that were authoritatively deleted (results carry no
        #: version counter, so presence of the id is the whole tombstone).
        self._result_tombstones: Set[str] = set()
        self._results: Dict[str, dict] = {}
        self._logs: Dict[str, List[str]] = {}
        if result_cache is not None:
            if cache_ttl_seconds is not None or cache_admit_on_second_miss:
                raise InvalidParameterError(
                    "cache_ttl_seconds / cache_admit_on_second_miss apply to the "
                    "internally-built cache; configure the provided result_cache "
                    "directly instead"
                )
            self.result_cache = result_cache
        else:
            self.result_cache = ResultCache(
                ttl_seconds=cache_ttl_seconds,
                admit_on_second_miss=cache_admit_on_second_miss,
            )
        #: dataset id -> (upload version the artifact was compiled from, artifact)
        self._compiled: Dict[str, Tuple[int, CompiledGraph]] = {}
        self._artifact_hits = 0
        self._artifact_misses = 0
        self._artifact_invalidations = 0
        self._directory: Optional[Path] = Path(directory) if directory is not None else None
        if self._directory is not None:
            try:
                (self._directory / "results").mkdir(parents=True, exist_ok=True)
                (self._directory / "logs").mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                raise StorageError(f"cannot create datastore directory: {exc}") from exc

    # ------------------------------------------------------------------ #
    # datasets
    # ------------------------------------------------------------------ #
    def store_dataset(
        self,
        dataset_id: str,
        graph: DirectedGraph,
        *,
        version_floor: int = 0,
        supersede_below: Optional[int] = None,
    ) -> bool:
        """Store (or replace) a dataset graph under ``dataset_id``.

        Replacing an existing dataset invalidates every cached ranking that
        was computed on the previous graph.  ``version_floor`` lets the
        sharded store keep the upload counter monotonic across shard
        boundaries: the new version always exceeds both this store's own
        counter and the floor, so a cache key minted against any earlier
        copy of the dataset — on any shard — can never collide with a later
        upload's version.

        ``supersede_below`` makes the write conditional, atomically under
        the store lock: when the current copy's version is already at or
        above it, the write is refused (``False`` is returned and nothing
        changes) — the replicated tier uses this so a re-upload that lost a
        concurrent race can never overwrite the winner's newer copy with
        older data at an even higher version.  Returns ``True`` when the
        graph was stored.
        """
        with self._lock:
            current = self._dataset_versions.get(dataset_id, 0)
            if supersede_below is not None and current >= supersede_below:
                return False
            replacing = dataset_id in self._datasets
            self._datasets[dataset_id] = graph
            self._dataset_versions[dataset_id] = max(current, version_floor) + 1
            # The new version strictly exceeds any tombstone (the tombstone
            # raised the counter when it was written), so the re-upload
            # supersedes the deletion.
            self._dataset_tombstones.pop(dataset_id, None)
            self._dataset_access[dataset_id] = time.monotonic()
            self._dataset_bytes[dataset_id] = self._estimate_graph_bytes(graph)
            if self._compiled.pop(dataset_id, None) is not None:
                self._artifact_invalidations += 1
        if replacing:
            self.result_cache.invalidate_dataset(dataset_id)
        return True

    def fetch_dataset(self, dataset_id: str) -> DirectedGraph:
        """Return the stored dataset graph (raises :class:`StorageError` if absent)."""
        with self._lock:
            graph = self._datasets.get(dataset_id)
            if graph is not None:
                self._dataset_access[dataset_id] = time.monotonic()
        if graph is None:
            raise StorageError(f"dataset {dataset_id!r} is not stored in the datastore")
        return graph

    def fetch_dataset_with_version(self, dataset_id: str) -> tuple[DirectedGraph, int]:
        """Return ``(graph, version)`` as one consistent snapshot.

        The version counts uploads of the dataset (1 for the first store);
        cache keys embed it so a ranking can never outlive the exact graph it
        was computed on, even across concurrent re-uploads.
        """
        with self._lock:
            graph = self._datasets.get(dataset_id)
            version = self._dataset_versions.get(dataset_id, 0)
            if graph is not None:
                self._dataset_access[dataset_id] = time.monotonic()
        if graph is None:
            raise StorageError(f"dataset {dataset_id!r} is not stored in the datastore")
        return graph, version

    def dataset_version(self, dataset_id: str) -> int:
        """Return the upload counter of a dataset (0 if it was never stored)."""
        with self._lock:
            return self._dataset_versions.get(dataset_id, 0)

    def dataset_last_access(self, dataset_id: str) -> float:
        """Return the monotonic timestamp of the dataset's last store/fetch.

        Returns ``0.0`` for datasets never touched through this store — which
        sorts them coldest, exactly what the spill policy wants.
        """
        with self._lock:
            return self._dataset_access.get(dataset_id, 0.0)

    def has_dataset(self, dataset_id: str) -> bool:
        """Return ``True`` if a dataset graph is stored under ``dataset_id``."""
        with self._lock:
            return dataset_id in self._datasets

    def list_datasets(self) -> List[str]:
        """Return the identifiers of all stored datasets, sorted."""
        with self._lock:
            return sorted(self._datasets)

    def drop_dataset(self, dataset_id: str) -> None:
        """Remove a stored dataset (no error if absent).

        Cached rankings computed on the dataset are invalidated alongside.
        """
        with self._lock:
            self._datasets.pop(dataset_id, None)
            self._dataset_access.pop(dataset_id, None)
            self._dataset_bytes.pop(dataset_id, None)
            self._dataset_versions[dataset_id] = self._dataset_versions.get(dataset_id, 0) + 1
            if self._compiled.pop(dataset_id, None) is not None:
                self._artifact_invalidations += 1
        self.result_cache.invalidate_dataset(dataset_id)

    # ------------------------------------------------------------------ #
    # deletion tombstones
    # ------------------------------------------------------------------ #
    def set_dataset_tombstone(self, dataset_id: str, version: int) -> bool:
        """Record an authoritative deletion of ``dataset_id`` at ``version``.

        Unlike :meth:`drop_dataset` (a plain removal of this store's copy,
        used for internal purges and migrations), a tombstone is a durable
        marker the replicated tier's anti-entropy passes treat as
        authoritative: any replica holding a copy at a version ``<=`` the
        tombstone's must drop it rather than re-spread it.  The upload
        counter is raised to at least the tombstone version, so the next
        upload's version strictly exceeds it and version-keyed cache entries
        minted before the delete can never be served again.

        Returns ``False`` (and changes nothing) when this store holds a copy
        *newer* than the tombstone — the deletion was already superseded by
        a re-upload.
        """
        with self._lock:
            if (
                dataset_id in self._datasets
                and self._dataset_versions.get(dataset_id, 0) > version
            ):
                return False
            self._datasets.pop(dataset_id, None)
            self._dataset_access.pop(dataset_id, None)
            self._dataset_bytes.pop(dataset_id, None)
            self._dataset_tombstones[dataset_id] = max(
                self._dataset_tombstones.get(dataset_id, 0), version
            )
            self._dataset_versions[dataset_id] = max(
                self._dataset_versions.get(dataset_id, 0), version
            )
            if self._compiled.pop(dataset_id, None) is not None:
                self._artifact_invalidations += 1
        self.result_cache.invalidate_dataset(dataset_id)
        return True

    def dataset_tombstone(self, dataset_id: str) -> int:
        """Return the tombstone version for ``dataset_id`` (0 when none)."""
        with self._lock:
            return self._dataset_tombstones.get(dataset_id, 0)

    def clear_dataset_tombstone(self, dataset_id: str) -> None:
        """Reap a tombstone (every replica acknowledged the deletion).

        The upload counter keeps its raised value, so versions stay
        monotonic across the tombstone's whole lifecycle.
        """
        with self._lock:
            self._dataset_tombstones.pop(dataset_id, None)

    def list_dataset_tombstones(self) -> Dict[str, int]:
        """Return a snapshot of all dataset tombstones (id -> version)."""
        with self._lock:
            return dict(self._dataset_tombstones)

    def set_result_tombstone(self, result_id: str) -> None:
        """Record an authoritative deletion of a result (and drop the copy)."""
        with self._lock:
            self._result_tombstones.add(result_id)
        self.drop_result(result_id)

    def has_result_tombstone(self, result_id: str) -> bool:
        """Return ``True`` if ``result_id`` was authoritatively deleted."""
        with self._lock:
            return result_id in self._result_tombstones

    def clear_result_tombstone(self, result_id: str) -> None:
        """Reap a result tombstone (every replica acknowledged)."""
        with self._lock:
            self._result_tombstones.discard(result_id)

    def list_result_tombstones(self) -> List[str]:
        """Return the ids of all result tombstones, sorted."""
        with self._lock:
            return sorted(self._result_tombstones)

    # ------------------------------------------------------------------ #
    # resident-bytes accounting
    # ------------------------------------------------------------------ #
    @staticmethod
    def _estimate_graph_bytes(graph: DirectedGraph) -> int:
        """Estimate the resident footprint of a stored graph.

        A deterministic structural estimate (adjacency dict-of-sets plus
        label tables), deliberately coarse: the spill budget needs a stable,
        cheap measure that orders datasets by size, not an exact heap count.
        """
        return 112 + graph.number_of_nodes() * 56 + graph.number_of_edges() * 16

    def resident_dataset_bytes(self) -> int:
        """Return the estimated bytes of all graphs resident in memory."""
        with self._lock:
            return sum(self._dataset_bytes.values())

    def resident_bytes_by_dataset(self) -> Dict[str, int]:
        """Return the per-dataset resident-bytes estimates (a snapshot)."""
        with self._lock:
            return dict(self._dataset_bytes)

    # ------------------------------------------------------------------ #
    # compiled artifacts
    # ------------------------------------------------------------------ #
    def fetch_compiled_with_version(self, dataset_id: str) -> Tuple[CompiledGraph, int]:
        """Return ``(compiled artifact, version)`` for a stored dataset.

        The artifact is compiled on first use and cached keyed by the
        dataset's upload version; a hit returns the cached instance, whose
        lazily-built structures (CSR, transpose, dangling mask, adjacency
        lists) are shared by every executor dispatch.  On re-upload the entry
        is dropped and the version re-checked before a fresh artifact is
        published, so a stale CSR is never served (see the module docstring
        for the full invalidation contract).
        """
        with self._lock:
            graph = self._datasets.get(dataset_id)
            version = self._dataset_versions.get(dataset_id, 0)
            entry = self._compiled.get(dataset_id)
        if graph is None:
            raise StorageError(f"dataset {dataset_id!r} is not stored in the datastore")
        if entry is not None and entry[0] == version:
            with self._lock:
                self._artifact_hits += 1
            return entry[1], version
        compiled = CompiledGraph(graph)
        with self._lock:
            self._artifact_misses += 1
            # Publish only if the dataset was not re-uploaded while compiling;
            # a racing upload wins and the stale artifact is discarded.
            if self._dataset_versions.get(dataset_id, 0) == version:
                current = self._compiled.get(dataset_id)
                if current is not None and current[0] == version:
                    # A concurrent fetch beat us to it — share its artifact.
                    return current[1], version
                self._compiled[dataset_id] = (version, compiled)
        return compiled, version

    def fetch_compiled(self, dataset_id: str) -> CompiledGraph:
        """Return the compiled artifact of a stored dataset (see above)."""
        return self.fetch_compiled_with_version(dataset_id)[0]

    def artifact_stats(self) -> Dict[str, Any]:
        """Return the compiled-artifact cache counters and occupancy."""
        with self._lock:
            total = self._artifact_hits + self._artifact_misses
            return {
                "compiled": len(self._compiled),
                "hits": self._artifact_hits,
                "misses": self._artifact_misses,
                "hit_rate": (self._artifact_hits / total) if total else 0.0,
                "invalidations": self._artifact_invalidations,
            }

    # ------------------------------------------------------------------ #
    # results
    # ------------------------------------------------------------------ #
    def put_result(self, result_id: str, payload: Mapping[str, object]) -> None:
        """Store a result payload (a JSON-serialisable mapping).

        When a persistence directory is configured the file is written
        *before* the result becomes visible in memory, so any reader that can
        already see the result is guaranteed to also find it on disk.
        """
        serialisable = dict(payload)
        self._persist_result(result_id, serialisable)
        with self._lock:
            self._results[result_id] = serialisable
            # An explicit write supersedes a pending deletion marker.
            self._result_tombstones.discard(result_id)

    def _persist_result(self, result_id: str, serialisable: dict) -> None:
        """Write the result file (no-op without a persistence directory)."""
        if self._directory is None:
            return
        path = self._directory / "results" / f"{result_id}.json"
        try:
            path.write_text(json.dumps(serialisable, indent=2, default=str),
                            encoding="utf-8")
        except (OSError, TypeError) as exc:
            raise StorageError(f"cannot persist result {result_id!r}: {exc}") from exc

    def get_result(self, result_id: str) -> dict:
        """Return a stored result payload (raises :class:`StorageError` if absent)."""
        with self._lock:
            if result_id in self._results:
                return dict(self._results[result_id])
        if self._directory is not None:
            path = self._directory / "results" / f"{result_id}.json"
            if path.exists():
                try:
                    return json.loads(path.read_text(encoding="utf-8"))
                except (OSError, json.JSONDecodeError) as exc:
                    raise StorageError(
                        f"cannot read persisted result {result_id!r}: {exc}"
                    ) from exc
        raise StorageError(f"result {result_id!r} is not stored in the datastore")

    def has_result(self, result_id: str) -> bool:
        """Return ``True`` if a result is stored under ``result_id``."""
        with self._lock:
            if result_id in self._results:
                return True
        if self._directory is not None:
            return (self._directory / "results" / f"{result_id}.json").exists()
        return False

    def list_results(self) -> List[str]:
        """Return the identifiers of all stored results, sorted."""
        with self._lock:
            identifiers = set(self._results)
        if self._directory is not None:
            identifiers.update(
                path.stem for path in (self._directory / "results").glob("*.json")
            )
        return sorted(identifiers)

    def drop_result(self, result_id: str) -> None:
        """Remove a stored result (no error if absent).

        Used by the sharded store when a result migrates to another backend;
        a persisted file is removed alongside the in-memory copy.
        """
        with self._lock:
            self._results.pop(result_id, None)
        if self._directory is not None:
            path = self._directory / "results" / f"{result_id}.json"
            try:
                path.unlink(missing_ok=True)
            except OSError as exc:
                raise StorageError(f"cannot remove persisted result {result_id!r}: {exc}") from exc

    # ------------------------------------------------------------------ #
    # logs
    # ------------------------------------------------------------------ #
    def append_log(self, log_id: str, message: str) -> None:
        """Append one log line to the log stream ``log_id``.

        In-memory retention is bounded per key (the newest ``max_log_lines``
        lines are kept); a configured persistence directory receives every
        line regardless, so the full history survives on disk.
        """
        with self._lock:
            lines = self._logs.setdefault(log_id, [])
            lines.append(message)
            if len(lines) > self._max_log_lines:
                del lines[: len(lines) - self._max_log_lines]
        if self._directory is not None:
            path = self._directory / "logs" / f"{log_id}.log"
            try:
                with open(path, "a", encoding="utf-8") as handle:
                    handle.write(message + "\n")
            except OSError as exc:
                raise StorageError(f"cannot persist log {log_id!r}: {exc}") from exc

    def get_logs(self, log_id: str) -> List[str]:
        """Return every log line recorded for ``log_id`` (empty list if none)."""
        with self._lock:
            return list(self._logs.get(log_id, []))

    def list_logs(self) -> List[str]:
        """Return the identifiers of all log streams, sorted."""
        with self._lock:
            return sorted(self._logs)

    def drop_logs(self, log_id: str) -> None:
        """Remove a log stream (no error if absent); mirrors :meth:`drop_result`."""
        with self._lock:
            self._logs.pop(log_id, None)
        if self._directory is not None:
            path = self._directory / "logs" / f"{log_id}.log"
            try:
                path.unlink(missing_ok=True)
            except OSError as exc:
                raise StorageError(f"cannot remove persisted log {log_id!r}: {exc}") from exc

    # ------------------------------------------------------------------ #
    # occupancy
    # ------------------------------------------------------------------ #
    def occupancy(self) -> Dict[str, int]:
        """Return how much this store currently holds (one shard's health card).

        The sharded store fans this out per backend on every stats poll, so
        the counts come straight from the in-memory containers — no id
        listings are materialised, sorted, or read from disk.  Results that
        only exist as files persisted by an earlier process are not counted
        here; they remain visible through :meth:`list_results` /
        :meth:`get_result`.
        """
        with self._lock:
            counts = {
                "datasets": len(self._datasets),
                "results": len(self._results),
                "logs": len(self._logs),
                "compiled_artifacts": len(self._compiled),
            }
        counts["cached_rankings"] = len(self.result_cache)
        return counts


class FileBackedDataStore(DataStore):
    """A :class:`DataStore` whose datasets, results and artifacts live on disk.

    Where the base store keeps dataset graphs in memory (mirroring only
    results and logs to an optional directory), this store persists
    *everything* under ``directory`` and keeps no graph resident:

    * datasets as ``datasets/<id>.json`` (node labels + edge list + upload
      version — enough to rebuild the graph with identical node ids, so a
      restart recovers it bit-identical);
    * results as ``results/<id>.json`` (the base store's format);
    * the compiled CSR of each dataset as ``artifacts/<id>.npz``, reloaded
      into the :class:`~repro.graph.compiled.CompiledGraph` on first use
      after a restart instead of reconverting the graph;
    * upload counters in ``dataset_versions.json`` at the directory root —
      outside ``datasets/``, so no user-chosen dataset id can collide with
      it — keeping version-keyed cache entries safe across drop/re-upload
      cycles spanning restarts.

    A fresh instance pointed at an existing directory recovers the previous
    instance's state (:meth:`fetch_dataset` returns graphs equal to what was
    stored, results round-trip verbatim), which is what makes this store both
    the platform's cold *spill tier* and a restart-safe ring shard.
    """

    def __init__(self, directory: str | Path, **kwargs: Any) -> None:
        if directory is None:
            raise InvalidParameterError("FileBackedDataStore requires a directory")
        super().__init__(directory, **kwargs)
        assert self._directory is not None
        try:
            (self._directory / "datasets").mkdir(parents=True, exist_ok=True)
            (self._directory / "artifacts").mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise StorageError(f"cannot create datastore directory: {exc}") from exc
        #: dataset ids currently stored on disk (the in-memory index of the
        #: datasets directory; versions for dropped ids stay in
        #: ``_dataset_versions`` so counters never move backwards).
        self._stored: Set[str] = set()
        self._recover()

    # ------------------------------------------------------------------ #
    # recovery and file layout
    # ------------------------------------------------------------------ #
    def _dataset_path(self, dataset_id: str) -> Path:
        return self._directory / "datasets" / f"{quote(dataset_id, safe='')}.json"

    def _artifact_path(self, dataset_id: str) -> Path:
        return self._directory / "artifacts" / f"{quote(dataset_id, safe='')}.npz"

    def _versions_path(self) -> Path:
        # Lives *outside* datasets/ so no user-chosen dataset id (which is
        # quoted into that directory's namespace) can collide with it.
        return self._directory / "dataset_versions.json"

    def _recover(self) -> None:
        """Rebuild the in-memory index from the directory contents."""
        versions: Dict[str, int] = {}
        dataset_tombstones: Dict[str, int] = {}
        result_tombstones: List[str] = []
        versions_path = self._versions_path()
        if versions_path.exists():
            try:
                document = json.loads(versions_path.read_text(encoding="utf-8"))
                if isinstance(document.get("versions"), dict):
                    # Current format: counters plus persisted tombstones.
                    versions = {
                        key: int(value)
                        for key, value in document["versions"].items()
                    }
                    dataset_tombstones = {
                        key: int(value)
                        for key, value in document.get(
                            "dataset_tombstones", {}
                        ).items()
                    }
                    result_tombstones = [
                        str(value)
                        for value in document.get("result_tombstones", [])
                    ]
                else:
                    # Legacy format: a flat id -> counter mapping.
                    versions = {
                        key: int(value) for key, value in document.items()
                    }
            except (OSError, json.JSONDecodeError, ValueError, AttributeError) as exc:
                raise StorageError(f"cannot recover dataset versions: {exc}") from exc
        stored: Set[str] = set()
        for path in (self._directory / "datasets").glob("*.json"):
            dataset_id = unquote(path.stem)
            stored.add(dataset_id)
            if dataset_id not in versions:
                # The counter file lagged the dataset write (e.g. a crash in
                # between): recover the version from the dataset file itself.
                try:
                    versions[dataset_id] = int(
                        json.loads(path.read_text(encoding="utf-8")).get("version", 1)
                    )
                except (OSError, json.JSONDecodeError, ValueError) as exc:
                    raise StorageError(
                        f"cannot recover dataset {dataset_id!r}: {exc}"
                    ) from exc
        with self._lock:
            self._stored = stored
            self._dataset_versions.update(versions)
            self._dataset_tombstones.update(dataset_tombstones)
            self._result_tombstones.update(result_tombstones)
            # A tombstone is authoritative over any copy at or below its
            # version that survived on disk (e.g. the shard crashed between
            # recording the tombstone and unlinking the file).
            for dataset_id, version in dataset_tombstones.items():
                if (
                    dataset_id in self._stored
                    and self._dataset_versions.get(dataset_id, 0) <= version
                ):
                    self._stored.discard(dataset_id)
                    try:
                        self._dataset_path(dataset_id).unlink(missing_ok=True)
                        self._artifact_path(dataset_id).unlink(missing_ok=True)
                    except OSError:
                        pass  # retried on the next tombstone write

    def _flush_versions(self) -> None:
        """Persist the upload counters and tombstones (caller holds the lock)."""
        path = self._versions_path()
        tmp = path.with_suffix(".tmp")
        try:
            tmp.write_text(
                json.dumps(
                    {
                        "versions": self._dataset_versions,
                        "dataset_tombstones": self._dataset_tombstones,
                        "result_tombstones": sorted(self._result_tombstones),
                    }
                ),
                encoding="utf-8",
            )
            os.replace(tmp, path)
        except OSError as exc:
            raise StorageError(f"cannot persist dataset versions: {exc}") from exc

    @staticmethod
    def _serialise_graph(graph: DirectedGraph, version: int) -> str:
        return json.dumps(
            {
                "version": version,
                "name": graph.name,
                "nodes": [graph.raw_label_of(node) for node in graph.nodes()],
                "edges": graph.edge_list(),
            }
        )

    @staticmethod
    def _deserialise_graph(document: Mapping[str, Any]) -> DirectedGraph:
        graph = DirectedGraph(name=str(document.get("name", "")))
        for label in document["nodes"]:
            graph.add_node(label)
        graph.add_edges_from(
            (int(source), int(target)) for source, target in document["edges"]
        )
        return graph

    def _read_dataset_file(self, dataset_id: str) -> Dict[str, Any]:
        path = self._dataset_path(dataset_id)
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise StorageError(
                f"dataset {dataset_id!r} is not stored in the datastore"
            ) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise StorageError(f"cannot read dataset {dataset_id!r}: {exc}") from exc

    # ------------------------------------------------------------------ #
    # datasets (disk-resident)
    # ------------------------------------------------------------------ #
    def store_dataset(
        self,
        dataset_id: str,
        graph: DirectedGraph,
        *,
        version_floor: int = 0,
        supersede_below: Optional[int] = None,
    ) -> bool:
        """Persist (or replace) a dataset; the graph is not kept in memory.

        ``supersede_below`` carries the in-memory store's conditional-write
        contract: a copy already at or above it refuses the overwrite.
        """
        with self._lock:
            current = self._dataset_versions.get(dataset_id, 0)
            if supersede_below is not None and current >= supersede_below:
                return False
            replacing = dataset_id in self._stored
            version = max(current, version_floor) + 1
            path = self._dataset_path(dataset_id)
            tmp = path.with_suffix(".tmp")
            try:
                tmp.write_text(self._serialise_graph(graph, version), encoding="utf-8")
                os.replace(tmp, path)
            except OSError as exc:
                raise StorageError(
                    f"cannot persist dataset {dataset_id!r}: {exc}"
                ) from exc
            self._dataset_versions[dataset_id] = version
            self._dataset_access[dataset_id] = time.monotonic()
            self._stored.add(dataset_id)
            self._dataset_tombstones.pop(dataset_id, None)
            self._flush_versions()
            if self._compiled.pop(dataset_id, None) is not None:
                self._artifact_invalidations += 1
            try:
                self._artifact_path(dataset_id).unlink(missing_ok=True)
            except OSError:
                pass  # a stale artifact is harmless: it is version-checked on load
        if replacing:
            self.result_cache.invalidate_dataset(dataset_id)
        return True

    def fetch_dataset(self, dataset_id: str) -> DirectedGraph:
        """Load and rebuild the dataset graph from its file."""
        return self.fetch_dataset_with_version(dataset_id)[0]

    def fetch_dataset_with_version(self, dataset_id: str) -> tuple[DirectedGraph, int]:
        """Return ``(graph, version)`` rebuilt from the dataset file."""
        with self._lock:
            if dataset_id not in self._stored:
                raise StorageError(
                    f"dataset {dataset_id!r} is not stored in the datastore"
                )
            document = self._read_dataset_file(dataset_id)
            self._dataset_access[dataset_id] = time.monotonic()
        return self._deserialise_graph(document), int(document["version"])

    def has_dataset(self, dataset_id: str) -> bool:
        with self._lock:
            return dataset_id in self._stored

    def list_datasets(self) -> List[str]:
        with self._lock:
            return sorted(self._stored)

    def drop_dataset(self, dataset_id: str) -> None:
        with self._lock:
            self._stored.discard(dataset_id)
            self._dataset_access.pop(dataset_id, None)
            self._dataset_versions[dataset_id] = self._dataset_versions.get(dataset_id, 0) + 1
            self._flush_versions()
            if self._compiled.pop(dataset_id, None) is not None:
                self._artifact_invalidations += 1
            try:
                self._dataset_path(dataset_id).unlink(missing_ok=True)
                self._artifact_path(dataset_id).unlink(missing_ok=True)
            except OSError as exc:
                raise StorageError(f"cannot remove dataset {dataset_id!r}: {exc}") from exc
        self.result_cache.invalidate_dataset(dataset_id)

    # ------------------------------------------------------------------ #
    # deletion tombstones (persisted alongside the upload counters)
    # ------------------------------------------------------------------ #
    def set_dataset_tombstone(self, dataset_id: str, version: int) -> bool:
        with self._lock:
            if (
                dataset_id in self._stored
                and self._dataset_versions.get(dataset_id, 0) > version
            ):
                return False
            self._stored.discard(dataset_id)
            self._dataset_access.pop(dataset_id, None)
            self._dataset_tombstones[dataset_id] = max(
                self._dataset_tombstones.get(dataset_id, 0), version
            )
            self._dataset_versions[dataset_id] = max(
                self._dataset_versions.get(dataset_id, 0), version
            )
            # The tombstone is durable before the copy disappears, so a
            # crash in between cannot resurrect the dataset on recovery.
            self._flush_versions()
            if self._compiled.pop(dataset_id, None) is not None:
                self._artifact_invalidations += 1
            try:
                self._dataset_path(dataset_id).unlink(missing_ok=True)
                self._artifact_path(dataset_id).unlink(missing_ok=True)
            except OSError:
                pass  # _recover() re-applies the persisted tombstone
        self.result_cache.invalidate_dataset(dataset_id)
        return True

    def clear_dataset_tombstone(self, dataset_id: str) -> None:
        with self._lock:
            if self._dataset_tombstones.pop(dataset_id, None) is not None:
                self._flush_versions()

    def set_result_tombstone(self, result_id: str) -> None:
        with self._lock:
            self._result_tombstones.add(result_id)
            self._flush_versions()
        self.drop_result(result_id)

    def clear_result_tombstone(self, result_id: str) -> None:
        with self._lock:
            if result_id in self._result_tombstones:
                self._result_tombstones.discard(result_id)
                self._flush_versions()

    # ------------------------------------------------------------------ #
    # compiled artifacts (persisted next to their dataset)
    # ------------------------------------------------------------------ #
    def _load_artifact(self, dataset_id: str, version: int) -> Optional[CSRGraph]:
        path = self._artifact_path(dataset_id)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as payload:
                if int(payload["version"]) != version:
                    return None
                labels = payload["labels"].tolist()
                return CSRGraph(
                    payload["indptr"],
                    payload["indices"],
                    labels=labels if labels else None,
                    name=str(payload["name"]),
                )
        except Exception:
            return None  # a corrupt artifact is recompiled, never fatal

    def _store_artifact(self, dataset_id: str, version: int, csr: CSRGraph) -> None:
        path = self._artifact_path(dataset_id)
        # Per-writer unique temp name: two processes (or threads racing the
        # compiled-cache lock) persisting the same dataset must not truncate
        # each other's half-written file; each writes its own temp and the
        # atomic rename decides who lands last.
        tmp = path.with_suffix(f".tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}.npz")
        try:
            with open(tmp, "wb") as handle:
                np.savez(
                    handle,
                    version=np.int64(version),
                    indptr=csr.indptr,
                    indices=csr.indices,
                    labels=np.asarray(csr.labels() or [], dtype=str),
                    name=np.str_(csr.name),
                )
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)  # persistence is best-effort; memory copy serves

    def fetch_compiled_with_version(self, dataset_id: str) -> Tuple[CompiledGraph, int]:
        """Return ``(compiled artifact, version)``, recovering a persisted CSR.

        The in-memory artifact cache works exactly like the base store's;
        on a miss the CSR snapshot is reloaded from ``artifacts/<id>.npz``
        when one matching the dataset version exists (a restart survivor),
        otherwise it is compiled and persisted for the next restart.
        """
        with self._lock:
            version = self._dataset_versions.get(dataset_id, 0)
            entry = self._compiled.get(dataset_id)
            present = dataset_id in self._stored
        if not present:
            raise StorageError(f"dataset {dataset_id!r} is not stored in the datastore")
        if entry is not None and entry[0] == version:
            with self._lock:
                self._artifact_hits += 1
            return entry[1], version
        graph, version = self.fetch_dataset_with_version(dataset_id)
        csr = self._load_artifact(dataset_id, version)
        compiled = CompiledGraph(graph, csr=csr)
        if csr is None:
            self._store_artifact(dataset_id, version, compiled.to_csr())
        with self._lock:
            self._artifact_misses += 1
            if self._dataset_versions.get(dataset_id, 0) == version:
                current = self._compiled.get(dataset_id)
                if current is not None and current[0] == version:
                    return current[1], version
                self._compiled[dataset_id] = (version, compiled)
        return compiled, version

    # ------------------------------------------------------------------ #
    # results (disk-only; reads fall back to the files via the base class)
    # ------------------------------------------------------------------ #
    def put_result(self, result_id: str, payload: Mapping[str, object]) -> None:
        """Persist a result payload to disk without keeping an in-memory copy."""
        self._persist_result(result_id, dict(payload))
        with self._lock:
            if result_id in self._result_tombstones:
                self._result_tombstones.discard(result_id)
                self._flush_versions()

    # ------------------------------------------------------------------ #
    # logs (bounded memory; reads recover from the file after a restart)
    # ------------------------------------------------------------------ #
    def get_logs(self, log_id: str) -> List[str]:
        lines = super().get_logs(log_id)
        if lines:
            return lines
        path = self._directory / "logs" / f"{log_id}.log"
        if path.exists():
            try:
                recovered = path.read_text(encoding="utf-8").splitlines()
            except OSError as exc:
                raise StorageError(f"cannot read persisted log {log_id!r}: {exc}") from exc
            return recovered[-self._max_log_lines:]
        return []

    def list_logs(self) -> List[str]:
        identifiers = set(super().list_logs())
        identifiers.update(
            path.stem for path in (self._directory / "logs").glob("*.log")
        )
        return sorted(identifiers)

    # ------------------------------------------------------------------ #
    # occupancy
    # ------------------------------------------------------------------ #
    def resident_dataset_bytes(self) -> int:
        """Disk-resident graphs cost no process memory: always 0.

        This is what makes the store usable as the spill *target* of the
        automatic budget policy — demoting a dataset here genuinely frees
        the bytes the budget counts.
        """
        return 0

    def resident_bytes_by_dataset(self) -> Dict[str, int]:
        return {}

    def occupancy(self) -> Dict[str, int]:
        """Count disk-resident datasets/results alongside the memory tiers."""
        with self._lock:
            counts = {
                "datasets": len(self._stored),
                "results": 0,
                "logs": len(self._logs),
                "compiled_artifacts": len(self._compiled),
            }
        counts["results"] = sum(1 for _ in (self._directory / "results").glob("*.json"))
        counts["cached_rankings"] = len(self.result_cache)
        return counts
