"""Tasks, query sets and the task builder (Figure 2 of the paper).

A *query* is one (dataset, algorithm, source, parameters) quadruple — one row
of the task-builder interface.  A *query set* is the ordered collection of
queries the user has assembled; it is identified by a UUID that doubles as a
permalink for retrieving the results later ("Comparison id" in Figure 2).
A *task* is a query set submitted for execution, carrying its lifecycle
state.

The :class:`TaskBuilder` validates each query against the dataset catalog and
the algorithm registry *before* it enters the query set, mirroring the web
form's client-side validation: unknown datasets, unknown algorithms, missing
reference nodes for personalized algorithms and malformed parameters are all
rejected at build time rather than at execution time.
"""

from __future__ import annotations

import enum
import threading
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from ..algorithms.registry import get_algorithm
from ..datasets.catalog import DatasetCatalog
from ..exceptions import InvalidParameterError, TaskError
from ..ranking.result import Ranking
from .resilience import Deadline

__all__ = ["Query", "QuerySet", "Task", "TaskState", "TaskBuilder"]


@dataclass(frozen=True)
class Query:
    """One (dataset, algorithm, source, parameters) row of a query set.

    Attributes
    ----------
    dataset_id:
        Identifier of the dataset in the catalog (e.g. ``"enwiki-2018"``).
    algorithm:
        Registry name of the algorithm (e.g. ``"cyclerank"``).
    source:
        Reference node label for personalized algorithms; ``None`` for global
        ones.
    parameters:
        Validated algorithm parameters.
    """

    dataset_id: str
    algorithm: str
    source: Optional[str] = None
    parameters: Mapping[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """Return the one-line rendering used by the task-builder view."""
        rendered_parameters = ", ".join(
            f"{key}={value}" for key, value in sorted(self.parameters.items())
        )
        source = self.source if self.source is not None else "-"
        return (
            f"{self.dataset_id} | {self.algorithm} | source: {source} | "
            f"{rendered_parameters or 'defaults'}"
        )

    def as_dict(self) -> Dict[str, Any]:
        """Serialise the query to plain Python types."""
        return {
            "dataset_id": self.dataset_id,
            "algorithm": self.algorithm,
            "source": self.source,
            "parameters": dict(self.parameters),
        }


class QuerySet:
    """An ordered, mutable collection of queries with a permalink identifier."""

    def __init__(self, queries: Optional[List[Query]] = None) -> None:
        self.comparison_id = str(uuid.uuid4())
        self._queries: List[Query] = list(queries or [])

    def add(self, query: Query) -> int:
        """Append a query; return its index within the set."""
        self._queries.append(query)
        return len(self._queries) - 1

    def remove(self, index: int) -> Query:
        """Remove and return the query at ``index`` (the per-row ✕ button)."""
        try:
            return self._queries.pop(index)
        except IndexError:
            raise TaskError(
                f"query set has {len(self._queries)} queries; cannot remove index {index}"
            ) from None

    def clear(self) -> None:
        """Remove every query (the trash-bin button of Figure 2)."""
        self._queries.clear()

    @property
    def queries(self) -> List[Query]:
        """Return the queries in insertion order (a copy)."""
        return list(self._queries)

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self):
        return iter(self._queries)

    def as_dict(self) -> Dict[str, Any]:
        """Serialise the query set (id + queries) to plain Python types."""
        return {
            "comparison_id": self.comparison_id,
            "queries": [query.as_dict() for query in self._queries],
        }


class TaskState(enum.Enum):
    """Lifecycle of a submitted task (Section III, steps 1-5)."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"

    def is_terminal(self) -> bool:
        """Return ``True`` once the task can no longer change state."""
        return self in (TaskState.COMPLETED, TaskState.FAILED, TaskState.CANCELLED)


class Task:
    """A query set submitted for execution, with per-query progress.

    Parameters
    ----------
    query_set:
        The validated queries to execute.
    deadline_ms:
        Optional overall deadline in milliseconds, counted from task
        construction (submission time).  The scheduler refuses to start
        work for an expired task and settles it with a typed
        ``deadline_exceeded`` event instead of occupying a worker.

    The gateway additionally attaches ``trace_span`` — the telemetry root
    span of the submission — before handing the task to the scheduler, which
    re-installs it (alongside the deadline) on whatever pool thread picks a
    group up, exactly the way the deadline rides along.
    """

    def __init__(self, query_set: QuerySet, *, deadline_ms: Optional[int] = None) -> None:
        self.task_id = query_set.comparison_id
        self.query_set = query_set
        self.deadline: Optional[Deadline] = (
            Deadline.from_ms(deadline_ms) if deadline_ms is not None else None
        )
        self.trace_span: Optional[Any] = None
        self._lock = threading.RLock()
        self._state = TaskState.PENDING
        self._completed_queries = 0
        self._error: Optional[str] = None
        self._rankings: Dict[int, Ranking] = {}

    # ------------------------------------------------------------------ #
    # state transitions (called by the scheduler / executors)
    # ------------------------------------------------------------------ #
    def mark_running(self) -> None:
        """Transition PENDING -> RUNNING."""
        with self._lock:
            if self._state is TaskState.PENDING:
                self._state = TaskState.RUNNING

    def record_query_result(self, index: int, ranking: Ranking) -> None:
        """Record the ranking produced for the query at ``index``."""
        with self._lock:
            self._rankings[index] = ranking
            self._completed_queries += 1
            if (
                self._completed_queries >= len(self.query_set)
                and not self._state.is_terminal()
            ):
                self._state = TaskState.COMPLETED

    def mark_failed(self, error: str) -> None:
        """Transition to FAILED with an error message."""
        with self._lock:
            if self._state is not TaskState.CANCELLED:
                self._state = TaskState.FAILED
                self._error = error

    def mark_cancelled(self) -> None:
        """Transition to CANCELLED (a no-op once the task is terminal)."""
        with self._lock:
            if not self._state.is_terminal():
                self._state = TaskState.CANCELLED

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> TaskState:
        """Return the current lifecycle state."""
        with self._lock:
            return self._state

    @property
    def error(self) -> Optional[str]:
        """Return the failure message, if the task failed."""
        with self._lock:
            return self._error

    @property
    def completed_queries(self) -> int:
        """Return how many queries have finished."""
        with self._lock:
            return self._completed_queries

    @property
    def total_queries(self) -> int:
        """Return how many queries the task contains."""
        return len(self.query_set)

    @property
    def trace_id(self) -> Optional[str]:
        """Return the telemetry trace id, when the gateway attached a span."""
        span = self.trace_span
        return span.trace_id if span is not None else None

    def rankings(self) -> Dict[int, Ranking]:
        """Return the rankings computed so far, keyed by query index."""
        with self._lock:
            return dict(self._rankings)

    def deadline_expired(self) -> bool:
        """Return ``True`` when the task carries a deadline that has passed."""
        return self.deadline is not None and self.deadline.expired()

    def is_done(self) -> bool:
        """Return ``True`` once the task reached a terminal state."""
        return self.state.is_terminal()

    def __repr__(self) -> str:
        return (
            f"<Task {self.task_id[:8]} {self.state.value} "
            f"{self.completed_queries}/{self.total_queries}>"
        )


class TaskBuilder:
    """Builds validated queries and query sets from raw user input.

    Parameters
    ----------
    catalog:
        The dataset catalog queries are validated against.
    """

    def __init__(self, catalog: DatasetCatalog) -> None:
        self._catalog = catalog

    def build_query(
        self,
        dataset_id: str,
        algorithm: str,
        *,
        source: Optional[str] = None,
        parameters: Optional[Mapping[str, Any]] = None,
    ) -> Query:
        """Validate raw inputs and return a :class:`Query`.

        Validation covers: the dataset exists in the catalog, the algorithm is
        registered, the source is present exactly when the algorithm is
        personalized, and each parameter passes the algorithm's
        :class:`~repro.algorithms.base.ParameterSpec`.
        """
        if dataset_id not in self._catalog:
            raise TaskError(
                f"unknown dataset {dataset_id!r}; use the catalog identifiers "
                f"(e.g. {', '.join(self._catalog.identifiers()[:3])}, ...)"
            )
        algorithm_impl = get_algorithm(algorithm)
        if algorithm_impl.is_personalized and not source:
            raise TaskError(
                f"{algorithm_impl.display_name} requires a source (reference) node"
            )
        if not algorithm_impl.is_personalized and source:
            raise TaskError(
                f"{algorithm_impl.display_name} is a global algorithm; do not pass a source"
            )
        try:
            validated = algorithm_impl.validate_parameters(parameters)
        except InvalidParameterError as exc:
            raise TaskError(str(exc)) from exc
        return Query(
            dataset_id=dataset_id,
            algorithm=algorithm_impl.name,
            source=source,
            parameters=validated,
        )

    def new_query_set(self) -> QuerySet:
        """Return an empty query set with a fresh comparison id."""
        return QuerySet()

    def build_task(self, query_set: QuerySet, *, deadline_ms: Optional[int] = None) -> Task:
        """Wrap a non-empty query set into a :class:`Task` ready for scheduling.

        ``deadline_ms``, when given, starts the submission's deadline clock
        here — validation errors from a non-positive value surface as
        :class:`TaskError` so callers see one exception family.
        """
        if len(query_set) == 0:
            raise TaskError("cannot submit an empty query set")
        try:
            return Task(query_set, deadline_ms=deadline_ms)
        except (TypeError, ValueError) as exc:
            raise TaskError(f"invalid deadline_ms: {exc}") from exc
