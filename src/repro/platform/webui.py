"""The Web UI, reproduced as a deterministic text/HTML renderer.

The browser front-end of the demo collects user input and displays results.
Its server-side counterpart here renders the same three views as strings:

* the **dataset picker** (one card per catalog dataset),
* the **task builder** view of Figure 2 (comparison id, one numbered row per
  query, the per-row remove marker and the clear-all marker),
* the **results view** (the top-k comparison table plus the execution log).

Rendering to plain text keeps the platform fully testable offline while
exercising exactly the same data the web front-end would receive from the
API gateway; ``to_html`` variants are provided for embedding in notebooks or
static pages.
"""

from __future__ import annotations

import html
from typing import List, Optional

from ..ranking.comparison import ComparisonTable
from .gateway import ApiGateway
from .tasks import QuerySet

__all__ = ["WebUI"]


class WebUI:
    """Deterministic renderer of the demo's three main views."""

    def __init__(self, gateway: ApiGateway) -> None:
        self._gateway = gateway

    # ------------------------------------------------------------------ #
    # dataset picker
    # ------------------------------------------------------------------ #
    def render_dataset_picker(self, *, family: Optional[str] = None) -> str:
        """Return the dataset picker as plain text, one line per dataset."""
        lines = ["Available datasets", "=================="]
        for entry in self._gateway.list_datasets(family=family):
            lines.append(
                f"- {entry['dataset_id']:28s} [{entry['family']:9s}] {entry['description']}"
            )
        return "\n".join(lines)

    def render_algorithm_picker(self) -> str:
        """Return the algorithm picker as plain text, one block per algorithm."""
        lines = ["Available algorithms", "===================="]
        for entry in self._gateway.list_algorithms():
            personalized = "personalized" if entry["personalized"] else "global"
            lines.append(f"- {entry['display_name']} ({entry['name']}, {personalized})")
            lines.append(f"    {entry['description']}")
            for parameter in entry["parameters"]:
                lines.append(
                    f"    · {parameter['name']} ({parameter['kind']}, "
                    f"default {parameter['default']!r}): {parameter['description']}"
                )
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # task builder (Figure 2)
    # ------------------------------------------------------------------ #
    def render_task_builder(self, query_set: QuerySet) -> str:
        """Render the task-builder view: comparison id and the query rows."""
        lines = [
            f"Comparison id: {query_set.comparison_id}",
            "Query Set                                                     [clear all 🗑]",
            f"{'Id':<4}{'Dataset':<22}{'Algorithm':<26}{'Source':<26}Parameters",
        ]
        for index, query in enumerate(query_set):
            parameters = ", ".join(
                f"{key}={value}" for key, value in sorted(query.parameters.items())
            )
            lines.append(
                f"{index:<4}{query.dataset_id:<22}{query.algorithm:<26}"
                f"{(query.source or '-'):<26}{parameters or 'defaults'}  [✕]"
            )
        if len(query_set) == 0:
            lines.append("(the query set is empty — add queries to build a comparison)")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # results view
    # ------------------------------------------------------------------ #
    def render_results(
        self,
        comparison_id: str,
        *,
        k: int = 5,
        show_scores: bool = False,
        include_logs: bool = False,
    ) -> str:
        """Render the results view of a finished comparison."""
        progress = self._gateway.get_status(comparison_id)
        lines: List[str] = [progress.describe()]
        if progress.state.is_terminal() and progress.error is None:
            table = self._gateway.get_comparison_table(comparison_id, k=k)
            lines.append("")
            lines.append(table.to_text(show_scores=show_scores))
        elif progress.error is not None:
            lines.append(f"error: {progress.error}")
        if include_logs:
            lines.append("")
            lines.append("Execution log")
            lines.append("-------------")
            lines.extend(self._gateway.get_logs(comparison_id))
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # HTML variants
    # ------------------------------------------------------------------ #
    def render_table_html(self, table: ComparisonTable) -> str:
        """Render a comparison table as a minimal HTML fragment."""
        parts = []
        if table.title:
            parts.append(f"<h3>{html.escape(table.title)}</h3>")
        parts.append("<table>")
        parts.append(
            "<tr><th>#</th>"
            + "".join(f"<th>{html.escape(column)}</th>" for column in table.columns)
            + "</tr>"
        )
        for position, row in enumerate(table.rows, start=1):
            parts.append(
                f"<tr><td>{position}</td>"
                + "".join(f"<td>{html.escape(cell)}</td>" for cell in row)
                + "</tr>"
            )
        parts.append("</table>")
        return "".join(parts)

    def render_results_html(self, comparison_id: str, *, k: int = 5) -> str:
        """Render the results view as an HTML fragment."""
        progress = self._gateway.get_status(comparison_id)
        parts = [f"<p>{html.escape(progress.describe())}</p>"]
        if progress.state.is_terminal() and progress.error is None:
            table = self._gateway.get_comparison_table(comparison_id, k=k)
            parts.append(self.render_table_html(table))
        return "".join(parts)
