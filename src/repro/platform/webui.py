"""The Web UI, reproduced as a deterministic text/HTML renderer.

The browser front-end of the demo collects user input and displays results.
Its server-side counterpart here renders the same three views as strings:

* the **dataset picker** (one card per catalog dataset),
* the **task builder** view of Figure 2 (comparison id, one numbered row per
  query, the per-row remove marker and the clear-all marker),
* the **results view** (the top-k comparison table plus the execution log),
* the **job listing** (one row per known comparison with its lifecycle
  state) and the per-comparison **progress fragment** the browser polls or
  streams while a comparison runs,
* the **trace waterfall** (the span tree recorded for one comparison by
  :mod:`repro.platform.telemetry`, rendered as an indented timing
  waterfall — the view behind the CLI ``--trace`` flag),
* the **HTML index** served at ``/`` by the REST front-end.

Rendering to plain text keeps the platform fully testable offline while
exercising exactly the same data the web front-end would receive from the
API gateway; ``to_html`` variants are provided for embedding in notebooks or
static pages.
"""

from __future__ import annotations

import html
from typing import List, Optional

from ..ranking.comparison import ComparisonTable
from .gateway import ApiGateway
from .tasks import QuerySet

__all__ = ["WebUI"]


class WebUI:
    """Deterministic renderer of the demo's three main views."""

    def __init__(self, gateway: ApiGateway) -> None:
        self._gateway = gateway

    # ------------------------------------------------------------------ #
    # dataset picker
    # ------------------------------------------------------------------ #
    def render_dataset_picker(self, *, family: Optional[str] = None) -> str:
        """Return the dataset picker as plain text, one line per dataset."""
        lines = ["Available datasets", "=================="]
        for entry in self._gateway.list_datasets(family=family):
            lines.append(
                f"- {entry['dataset_id']:28s} [{entry['family']:9s}] {entry['description']}"
            )
        return "\n".join(lines)

    def render_algorithm_picker(self) -> str:
        """Return the algorithm picker as plain text, one block per algorithm."""
        lines = ["Available algorithms", "===================="]
        for entry in self._gateway.list_algorithms():
            personalized = "personalized" if entry["personalized"] else "global"
            lines.append(f"- {entry['display_name']} ({entry['name']}, {personalized})")
            lines.append(f"    {entry['description']}")
            for parameter in entry["parameters"]:
                lines.append(
                    f"    · {parameter['name']} ({parameter['kind']}, "
                    f"default {parameter['default']!r}): {parameter['description']}"
                )
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # task builder (Figure 2)
    # ------------------------------------------------------------------ #
    def render_task_builder(self, query_set: QuerySet) -> str:
        """Render the task-builder view: comparison id and the query rows."""
        lines = [
            f"Comparison id: {query_set.comparison_id}",
            "Query Set                                                     [clear all 🗑]",
            f"{'Id':<4}{'Dataset':<22}{'Algorithm':<26}{'Source':<26}Parameters",
        ]
        for index, query in enumerate(query_set):
            parameters = ", ".join(
                f"{key}={value}" for key, value in sorted(query.parameters.items())
            )
            lines.append(
                f"{index:<4}{query.dataset_id:<22}{query.algorithm:<26}"
                f"{(query.source or '-'):<26}{parameters or 'defaults'}  [✕]"
            )
        if len(query_set) == 0:
            lines.append("(the query set is empty — add queries to build a comparison)")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # results view
    # ------------------------------------------------------------------ #
    def render_results(
        self,
        comparison_id: str,
        *,
        k: int = 5,
        show_scores: bool = False,
        include_logs: bool = False,
    ) -> str:
        """Render the results view of a finished comparison."""
        progress = self._gateway.get_status(comparison_id)
        lines: List[str] = [progress.describe()]
        if progress.state.is_terminal() and progress.error is None:
            table = self._gateway.get_comparison_table(comparison_id, k=k)
            lines.append("")
            lines.append(table.to_text(show_scores=show_scores))
        elif progress.error is not None:
            lines.append(f"error: {progress.error}")
        if include_logs:
            lines.append("")
            lines.append("Execution log")
            lines.append("-------------")
            lines.extend(self._gateway.get_logs(comparison_id))
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # job listing and progress (the "watch it run" half of the demo)
    # ------------------------------------------------------------------ #
    def render_job_list(self) -> str:
        """Render the job listing: one line per known comparison, oldest first.

        Storage maintenance jobs (replication repair, spill, rebalance) share
        the registry with comparisons; their ``description`` distinguishes
        them in the ``Kind`` column (comparisons render as ``comparison``).
        """
        lines = [
            "Comparisons",
            "===========",
            f"{'Comparison id':<38}{'State':<12}{'Progress':<10}{'Kind':<22}Error",
        ]
        jobs = self._gateway.list_comparisons()
        for job in jobs:
            progress = f"{job['completed_queries']}/{job['total_queries']}"
            kind = job.get("description") or "comparison"
            lines.append(
                f"{job['comparison_id']:<38}{job['state']:<12}{progress:<10}"
                f"{kind:<22}{job['error'] or '-'}"
            )
        if not jobs:
            lines.append("(no comparisons submitted yet)")
        return "\n".join(lines)

    def render_job_list_html(self) -> str:
        """Render the job listing as an HTML fragment (one table row per job)."""
        parts = [
            "<table class='jobs'>",
            "<tr><th>Comparison</th><th>State</th><th>Progress</th><th>Kind</th></tr>",
        ]
        for job in self._gateway.list_comparisons():
            kind = job.get("description") or "comparison"
            parts.append(
                f"<tr data-state='{html.escape(job['state'])}'>"
                f"<td><code>{html.escape(job['comparison_id'])}</code></td>"
                f"<td>{html.escape(job['state'])}</td>"
                f"<td>{job['completed_queries']}/{job['total_queries']}</td>"
                f"<td>{html.escape(kind)}</td></tr>"
            )
        parts.append("</table>")
        return "".join(parts)

    def render_progress_html(self, comparison_id: str) -> str:
        """Render one comparison's live-progress fragment.

        The fragment carries the state as a data attribute and a native
        ``<progress>`` element, so a browser long-polling the events
        endpoint can swap it in place on every update.
        """
        progress = self._gateway.get_status(comparison_id)
        percent = int(progress.fraction_done * 100)
        parts = [
            f"<div class='job-progress' data-comparison='{html.escape(comparison_id)}' "
            f"data-state='{html.escape(progress.state.value)}'>",
            f"<progress max='{progress.total_queries}' "
            f"value='{progress.completed_queries}'></progress> ",
            f"<span>{progress.completed_queries}/{progress.total_queries} "
            f"queries ({percent}%) — {html.escape(progress.state.value)}</span>",
        ]
        if progress.error:
            parts.append(f"<span class='error'>{html.escape(progress.error)}</span>")
        parts.append("</div>")
        return "".join(parts)

    # ------------------------------------------------------------------ #
    # trace waterfall (the observability view behind the CLI --trace flag)
    # ------------------------------------------------------------------ #
    def render_trace_waterfall(self, comparison_id: str) -> str:
        """Render one comparison's recorded span tree as a text waterfall.

        Each line shows a span's start offset relative to the root span,
        its duration, its name and its annotations; children are indented
        under their parent, and span events (retries, single-flight joins,
        breaker skips) render as ``·`` bullet lines.  Returns a short
        placeholder when the trace has been evicted or tracing is disabled.
        """
        envelope = self._gateway.get_trace(comparison_id)
        lines = [
            f"Trace for comparison {comparison_id}",
            f"state: {envelope['state']}  trace_id: {envelope['trace_id'] or '-'}",
        ]
        tree = envelope.get("trace")
        if not tree or not tree.get("roots"):
            lines.append("(no spans recorded — tracing disabled or trace evicted)")
            return "\n".join(lines)
        lines.append(f"spans: {tree['span_count']}")
        origin = min(root["started_at"] for root in tree["roots"])

        def _walk(node: dict, depth: int) -> None:
            offset_ms = max(0.0, (node["started_at"] - origin) * 1000.0)
            duration = node.get("duration_ms")
            duration_text = f"{duration:8.2f}ms" if duration is not None else "   (open)"
            annotations = ", ".join(
                f"{key}={value}" for key, value in sorted(node.get("annotations", {}).items())
            )
            indent = "  " * depth
            lines.append(
                f"{offset_ms:9.2f}ms {duration_text}  {indent}{node['name']}"
                + (f"  [{annotations}]" if annotations else "")
            )
            for event in node.get("events", ()):
                fields = ", ".join(
                    f"{key}={value}"
                    for key, value in sorted(event.items())
                    if key not in ("name", "offset_ms")
                )
                lines.append(
                    f"{'':21s}  {indent}  · {event['name']} @ {event['offset_ms']:.2f}ms"
                    + (f" ({fields})" if fields else "")
                )
            for child in node.get("children", ()):
                _walk(child, depth + 1)

        for root in tree["roots"]:
            _walk(root, 0)
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # HTML index (served at / by the REST front-end)
    # ------------------------------------------------------------------ #
    def render_index(self) -> str:
        """Render the minimal HTML landing page (dataset and algorithm pickers)."""
        dataset_items = "".join(
            f"<li><code>{html.escape(entry['dataset_id'])}</code> — "
            f"{html.escape(entry['description'])}</li>"
            for entry in self._gateway.list_datasets()
        )
        algorithm_items = "".join(
            f"<li><code>{html.escape(entry['name'])}</code> — "
            f"{html.escape(entry['display_name'])}"
            f" ({'personalized' if entry['personalized'] else 'global'})</li>"
            for entry in self._gateway.list_algorithms()
        )
        return (
            "<!DOCTYPE html><html><head><meta charset='utf-8'>"
            "<title>Personalized relevance algorithms</title></head><body>"
            "<h1>Comparing Personalized Relevance Algorithms for Directed Graphs</h1>"
            "<p>POST a JSON body {\"queries\": [...]} to <code>/api/comparisons</code> "
            "to run a comparison (<code>\"synchronous\": false</code> returns the "
            "permalink immediately); follow progress via "
            "<code>/api/comparisons/&lt;id&gt;/events</code>, inspect a "
            "comparison's span tree at "
            "<code>/api/comparisons/&lt;id&gt;/trace</code> and scrape "
            "Prometheus metrics from <code>/metrics</code>.</p>"
            f"<h2>Datasets</h2><ul>{dataset_items}</ul>"
            f"<h2>Algorithms</h2><ul>{algorithm_items}</ul>"
            f"<h2>Comparisons</h2>{self.render_job_list_html()}"
            "</body></html>"
        )

    # ------------------------------------------------------------------ #
    # HTML variants
    # ------------------------------------------------------------------ #
    def render_table_html(self, table: ComparisonTable) -> str:
        """Render a comparison table as a minimal HTML fragment."""
        parts = []
        if table.title:
            parts.append(f"<h3>{html.escape(table.title)}</h3>")
        parts.append("<table>")
        parts.append(
            "<tr><th>#</th>"
            + "".join(f"<th>{html.escape(column)}</th>" for column in table.columns)
            + "</tr>"
        )
        for position, row in enumerate(table.rows, start=1):
            parts.append(
                f"<tr><td>{position}</td>"
                + "".join(f"<td>{html.escape(cell)}</td>" for cell in row)
                + "</tr>"
            )
        parts.append("</table>")
        return "".join(parts)

    def render_results_html(self, comparison_id: str, *, k: int = 5) -> str:
        """Render the results view as an HTML fragment."""
        progress = self._gateway.get_status(comparison_id)
        parts = [f"<p>{html.escape(progress.describe())}</p>"]
        if progress.state.is_terminal() and progress.error is None:
            table = self._gateway.get_comparison_table(comparison_id, k=k)
            parts.append(self.render_table_html(table))
        return "".join(parts)
