"""Consistent-hash sharded storage: datasets, results, caches and artifacts across N backends.

A single in-process :class:`~repro.platform.datastore.DataStore` bounds every
dataset by one node's memory.  This module scales the storage layer out while
keeping the rest of the platform (scheduler, executor pool, gateway) oblivious:
:class:`ShardedDataStore` implements the full datastore surface by routing
every keyed operation to an owning backend shard chosen on a consistent-hash
ring, and fanning list/stats calls out across all shards.

Routing key and ownership
-------------------------
The routing key is the *dataset id* for dataset-keyed operations (the same id
the :class:`~repro.platform.cache.ResultCache` key already carries first), the
result id for results and the log id for logs.  Each backend shard owns its
own :class:`ResultCache` and compiled-artifact slot, so the invalidation
contract stays **shard-local**: re-uploading or dropping a dataset invalidates
cached rankings and the compiled artifact only on the shard that owns the
dataset — the other shards are never touched.

Consistent hashing
------------------
:class:`HashRing` places ``virtual_nodes`` points per shard on a 64-bit ring
(BLAKE2b positions, stable across processes and Python versions — never
``hash()``, which is salted per process) and assigns a key to the first shard
point at or after the key's position.  Adding or removing one shard therefore
moves only the keys whose ring interval changed hands: an ``O(1/N)`` fraction
in expectation, which is what makes :meth:`ShardedDataStore.rebalance`
cheap — it migrates exactly the datasets whose assignment changed and drops
their derived caches (a moved dataset recompiles and re-caches on its new
owner on first use).

The ring change itself is explicit: :meth:`ShardedDataStore.add_shard` /
:meth:`remove_shard` update the topology, and :meth:`rebalance` performs the
minimal migration.  ``remove_shard`` migrates the leaving shard's data as part
of the removal so nothing is orphaned.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import InvalidParameterError, StorageError
from .._validation import require_positive_int
from ..graph.compiled import CompiledGraph
from ..graph.digraph import DirectedGraph
from .cache import CacheKey, ResultCache
from .datastore import DataStore

__all__ = ["HashRing", "ShardedDataStore", "ShardedResultCache"]

#: Virtual nodes per shard: enough for an even spread at small shard counts
#: without making ring rebuilds noticeable.
DEFAULT_VIRTUAL_NODES = 128


def _ring_position(token: str) -> int:
    """Map a token to a stable position on the 64-bit ring.

    BLAKE2b keeps positions identical across processes, platforms and Python
    versions, which the movement guarantees (and any future on-disk shard
    layout) depend on.
    """
    return int.from_bytes(hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest(), "big")


class HashRing:
    """Consistent-hash ring with virtual nodes and stable key→shard assignment.

    Parameters
    ----------
    shards:
        Initial shard identifiers (order does not matter; assignment depends
        only on the *set* of shards and ``virtual_nodes``).
    virtual_nodes:
        Ring points per shard.  More points even out the spread; the default
        keeps the per-shard load within a few percent of uniform for the
        shard counts the platform runs with.
    """

    def __init__(
        self,
        shards: Iterable[str] = (),
        *,
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
    ) -> None:
        require_positive_int(virtual_nodes, "virtual_nodes")
        self._virtual_nodes = virtual_nodes
        #: Sorted ring points as parallel arrays: positions and owning shards.
        self._positions: List[int] = []
        self._owners: List[str] = []
        self._shards: Dict[str, None] = {}
        for shard_id in shards:
            self.add_shard(shard_id)

    # ------------------------------------------------------------------ #
    # topology
    # ------------------------------------------------------------------ #
    @property
    def virtual_nodes(self) -> int:
        """Return the number of ring points per shard."""
        return self._virtual_nodes

    def shards(self) -> List[str]:
        """Return the shard identifiers on the ring, sorted."""
        return sorted(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: object) -> bool:
        return shard_id in self._shards

    def add_shard(self, shard_id: str) -> None:
        """Add a shard's virtual nodes to the ring (raises if already present)."""
        if not shard_id:
            raise InvalidParameterError("shard_id must be a non-empty string")
        if shard_id in self._shards:
            raise InvalidParameterError(f"shard {shard_id!r} is already on the ring")
        self._shards[shard_id] = None
        for replica in range(self._virtual_nodes):
            position = _ring_position(f"{shard_id}#{replica}")
            index = bisect.bisect_left(self._positions, position)
            # Deterministic tie-break on the (astronomically unlikely) 64-bit
            # collision: order colliding points by shard id.
            while (
                index < len(self._positions)
                and self._positions[index] == position
                and self._owners[index] < shard_id
            ):
                index += 1
            self._positions.insert(index, position)
            self._owners.insert(index, shard_id)

    def remove_shard(self, shard_id: str) -> None:
        """Remove a shard's virtual nodes from the ring (raises if absent)."""
        if shard_id not in self._shards:
            raise InvalidParameterError(f"shard {shard_id!r} is not on the ring")
        del self._shards[shard_id]
        keep = [i for i, owner in enumerate(self._owners) if owner != shard_id]
        self._positions = [self._positions[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    # ------------------------------------------------------------------ #
    # assignment
    # ------------------------------------------------------------------ #
    def assign(self, key: str) -> str:
        """Return the shard owning ``key`` (the first ring point at or after it).

        Assignment is deterministic and independent of insertion order; when a
        shard joins or leaves, only keys whose wrapping interval changed hands
        move — every other key keeps its shard.
        """
        if not self._positions:
            raise StorageError("the hash ring has no shards")
        index = bisect.bisect_left(self._positions, _ring_position(key))
        if index == len(self._positions):
            index = 0  # wrap around the ring
        return self._owners[index]

    def assignments(self, keys: Iterable[str]) -> Dict[str, str]:
        """Return ``{key: owning shard}`` for every key."""
        return {key: self.assign(key) for key in keys}

    def successors(self, key: str, count: int) -> List[str]:
        """Return the first ``count`` *distinct* shards at or after ``key``.

        The first entry is :meth:`assign`'s owner (the primary); the rest are
        the next distinct shards walking the ring clockwise — the replica
        placement of the replicated store.  With at least ``count`` shards on
        the ring the result always holds ``count`` distinct shards; with
        fewer, every shard is returned.  Like :meth:`assign`, the walk
        depends only on the set of shards, so placement is deterministic
        across processes and a join/leave changes the successor set of a key
        only when one of its wrapping intervals changed hands.
        """
        if not self._positions:
            raise StorageError("the hash ring has no shards")
        require_positive_int(count, "count")
        wanted = min(count, len(self._shards))
        start = bisect.bisect_left(self._positions, _ring_position(key))
        total = len(self._positions)
        owners: List[str] = []
        seen: set = set()
        for step in range(total):
            owner = self._owners[(start + step) % total]
            if owner not in seen:
                seen.add(owner)
                owners.append(owner)
                if len(owners) == wanted:
                    break
        return owners


class ShardedResultCache:
    """The sharded store's routing view over the per-shard result caches.

    The scheduler holds one ``result_cache`` handle for the lifetime of the
    platform; this object keeps that contract while each backend shard keeps
    *owning* its cache — a :meth:`get`/:meth:`put` routes to the cache of the
    shard that owns the key's dataset (the dataset id is the first element of
    every :data:`~repro.platform.cache.CacheKey`), so cached rankings live
    next to their dataset and invalidation on re-upload/drop stays
    shard-local.  :meth:`stats` aggregates the per-shard counters and keeps
    the per-shard breakdown under ``"shards"``.
    """

    #: Kept for callers that build keys through the cache object they hold.
    key_for = staticmethod(ResultCache.key_for)

    def __init__(self, store: "ShardedDataStore") -> None:
        self._store = store

    def _cache_for(self, dataset_id: str) -> ResultCache:
        return self._store._store_for(dataset_id).result_cache

    def get(self, key: CacheKey):
        """Return the cached ranking for ``key`` from its owning shard."""
        return self._cache_for(key[0]).get(key)

    def peek(self, key: CacheKey):
        """Return the cached ranking without touching counters or LRU order."""
        return self._cache_for(key[0]).peek(key)

    def put(self, key: CacheKey, ranking) -> bool:
        """Store a finished ranking on the shard owning the key's dataset."""
        return self._cache_for(key[0]).put(key, ranking)

    def invalidate_dataset(self, dataset_id: str) -> int:
        """Drop the dataset's cached rankings on its owning shard only."""
        return self._cache_for(dataset_id).invalidate_dataset(dataset_id)

    def clear(self) -> None:
        """Drop every cached ranking on every shard."""
        for backend in self._store.shard_stores().values():
            backend.result_cache.clear()

    def __len__(self) -> int:
        return sum(len(backend.result_cache) for backend in self._store.shard_stores().values())

    #: Counter keys summed across shards by :meth:`stats`.
    _COUNTER_KEYS = (
        "capacity",
        "size",
        "hits",
        "misses",
        "evictions",
        "invalidations",
        "expirations",
        "admissions_deferred",
    )

    def _per_shard_stats(self) -> Dict[str, Any]:
        """Collect each shard's cache counters (hook for tolerant subclasses)."""
        return {
            shard_id: backend.result_cache.stats()
            for shard_id, backend in self._store.shard_stores().items()
        }

    def stats(self) -> Dict[str, Any]:
        """Return the aggregated cache counters plus the per-shard breakdown.

        A per-shard entry carrying an ``"error"`` key (a shard the tolerant
        replicated collection could not reach) is excluded from the sums.
        """
        per_shard = self._per_shard_stats()
        healthy = [stats for stats in per_shard.values() if "error" not in stats]
        aggregated: Dict[str, Any] = {
            key: sum(stats[key] for stats in healthy) for key in self._COUNTER_KEYS
        }
        total = aggregated["hits"] + aggregated["misses"]
        aggregated["hit_rate"] = (aggregated["hits"] / total) if total else 0.0
        # Policy knobs are uniform across internally-built shards; report the
        # first shard's so the stats shape matches the single-store cache.
        first = next(iter(healthy), {})
        aggregated["ttl_seconds"] = first.get("ttl_seconds")
        aggregated["admit_on_second_miss"] = first.get("admit_on_second_miss", False)
        aggregated["shards"] = per_shard
        return aggregated

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"<ShardedResultCache over {len(stats['shards'])} shards, "
            f"{stats['size']}/{stats['capacity']} entries>"
        )


class ShardedDataStore:
    """A datastore made of N backend shards behind a consistent-hash ring.

    Implements the full :class:`~repro.platform.datastore.DataStore` surface:
    dataset-keyed operations (store/fetch/drop, compiled artifacts) route to
    the shard owning the dataset id, result- and log-keyed operations route by
    their own id, and ``list_*``/stats calls fan out across every shard.  The
    scheduler, executor pool and gateway work against it unchanged.

    Parameters
    ----------
    shards:
        Backing :class:`DataStore` instances to shard across (ids are assigned
        ``shard-0 .. shard-N-1`` in order).  Mutually exclusive with
        ``num_shards``.
    num_shards:
        Build this many fresh in-memory backends instead.
    virtual_nodes:
        Ring points per shard (see :class:`HashRing`).
    cache_ttl_seconds, cache_admit_on_second_miss:
        Cache policy knobs applied to every internally-built backend (invalid
        together with ``shards``, whose caches are already configured).
    """

    def __init__(
        self,
        shards: Optional[Sequence[DataStore]] = None,
        *,
        num_shards: Optional[int] = None,
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
        cache_ttl_seconds: Optional[float] = None,
        cache_admit_on_second_miss: bool = False,
    ) -> None:
        if (shards is None) == (num_shards is None):
            raise InvalidParameterError(
                "provide exactly one of `shards` (backing stores) or `num_shards`"
            )
        if shards is not None:
            if cache_ttl_seconds is not None or cache_admit_on_second_miss:
                raise InvalidParameterError(
                    "cache_ttl_seconds / cache_admit_on_second_miss apply to "
                    "internally-built shards; configure the provided stores directly"
                )
            backends = list(shards)
            if not backends:
                raise InvalidParameterError("`shards` must contain at least one datastore")
        else:
            require_positive_int(num_shards, "num_shards")
            backends = [
                DataStore(
                    cache_ttl_seconds=cache_ttl_seconds,
                    cache_admit_on_second_miss=cache_admit_on_second_miss,
                )
                for _ in range(num_shards)
            ]
        self._lock = threading.RLock()
        #: Serialises topology operations (add/remove/rebalance) against each
        #: other; data migration runs under it but *outside* ``_lock``, so
        #: routed reads and writes keep flowing while datasets move.
        self._topology_lock = threading.Lock()
        #: Cache policy for internally-built backends, reapplied by
        #: :meth:`add_shard` so a grown topology keeps one uniform policy.
        self._cache_ttl_seconds = cache_ttl_seconds
        self._cache_admit_on_second_miss = cache_admit_on_second_miss
        self._backends: Dict[str, DataStore] = {
            f"shard-{index}": backend for index, backend in enumerate(backends)
        }
        self._ring = HashRing(self._backends, virtual_nodes=virtual_nodes)
        self._next_shard_index = len(backends)
        #: Bumped on every ring change; optimistic writers validate against
        #: it so routing stays consistent without holding the lock across
        #: the backend operation.
        self._epoch = 0
        self._rebalances = 0
        self._datasets_migrated = 0
        self.result_cache = ShardedResultCache(self)

    # ------------------------------------------------------------------ #
    # topology and routing
    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        """Return the number of backend shards."""
        with self._lock:
            return len(self._backends)

    def shard_ids(self) -> List[str]:
        """Return the shard identifiers, sorted."""
        with self._lock:
            return sorted(self._backends)

    def shard_for(self, key: str) -> str:
        """Return the id of the shard owning ``key`` (a dataset/result/log id)."""
        with self._lock:
            return self._ring.assign(key)

    def shard_store(self, shard_id: str) -> DataStore:
        """Return the backend datastore of one shard (raises if unknown)."""
        with self._lock:
            backend = self._backends.get(shard_id)
        if backend is None:
            raise StorageError(f"unknown shard {shard_id!r}")
        return backend

    def shard_stores(self) -> Dict[str, DataStore]:
        """Return a snapshot of ``{shard id: backend}`` (sorted by id)."""
        with self._lock:
            return {shard_id: self._backends[shard_id] for shard_id in sorted(self._backends)}

    def _store_for(self, key: str) -> DataStore:
        with self._lock:
            return self._backends[self._ring.assign(key)]

    def _route_write(self, key: str, operation) -> None:
        """Run a result write against ``key``'s owner, epoch-validated.

        Optimistic scheme for writes that may do file IO (``put_result`` on
        a directory-backed shard): routing is snapshotted under the routing
        lock, the write runs outside it (writes to different shards proceed
        in parallel and disk IO never serialises the store), and the epoch
        is re-checked afterwards.  If a topology change interleaved *and*
        moved this key's assignment — the only way the write could have
        landed on a just-drained backend — the write is repeated against the
        freshly routed owner (an epoch bump that left the owner unchanged
        needs no retry).  A superseded copy left behind carries the same
        payload as the retried write (results are written once per task id),
        so the drain's keep-the-owner's-copy rule is safe for it.

        Dataset writes do NOT use this path: they are in-memory dict
        inserts, so :meth:`store_dataset`/:meth:`drop_dataset` simply run
        under the routing lock and purge sibling copies, which is what makes
        surviving copies authoritative (see :meth:`_drain`).
        """
        while True:
            with self._lock:
                epoch = self._epoch
                backend = self._backends[self._ring.assign(key)]
            operation(backend)
            with self._lock:
                if self._epoch == epoch:
                    return
                if self._backends.get(self._ring.assign(key)) is backend:
                    # Topology changed but this key's owner did not; the
                    # write landed correctly and must not be repeated (a
                    # retry would duplicate non-idempotent writes).
                    return

    def _route_read(self, key: str, operation, *, missed=None):
        """Run a read against ``key``'s owner, falling back to a shard scan.

        The owner answers directly on the fast path.  A miss falls back to
        asking every other shard once: while a migration is in flight the
        key may still sit on its previous shard (drains run outside the
        routing lock precisely so reads keep flowing), and the fan-out scan
        bridges that window instead of surfacing a spurious miss.  ``missed``
        covers readers that signal absence with a value rather than a
        :class:`StorageError` (``has_*``, ``dataset_version``, ``get_logs``).
        A key that exists nowhere pays an O(shards) scan before failing —
        the rare error path.
        """
        backend = self._store_for(key)
        try:
            value = operation(backend)
        except StorageError:
            for other in self.shard_stores().values():
                if other is backend:
                    continue
                try:
                    return operation(other)
                except StorageError:
                    continue
            raise
        if missed is not None and missed(value):
            for other in self.shard_stores().values():
                if other is backend:
                    continue
                try:
                    candidate = operation(other)
                except StorageError:
                    continue
                if not missed(candidate):
                    return candidate
        return value

    def add_shard(
        self,
        backend: Optional[DataStore] = None,
        *,
        shard_id: Optional[str] = None,
    ) -> str:
        """Add a backend shard to the ring and return its id.

        The new shard starts empty and only *new* keys route to it until
        :meth:`rebalance` migrates the datasets it now owns.  An
        internally-built backend inherits the cache policy the sharded store
        was constructed with, keeping the policy uniform as the topology
        grows.
        """
        with self._topology_lock, self._lock:
            if shard_id is None:
                while f"shard-{self._next_shard_index}" in self._backends:
                    self._next_shard_index += 1
                shard_id = f"shard-{self._next_shard_index}"
                self._next_shard_index += 1
            if shard_id in self._backends:
                raise InvalidParameterError(f"shard {shard_id!r} already exists")
            if backend is None:
                backend = DataStore(
                    cache_ttl_seconds=self._cache_ttl_seconds,
                    cache_admit_on_second_miss=self._cache_admit_on_second_miss,
                )
            self._ring.add_shard(shard_id)
            self._backends[shard_id] = backend
            self._epoch += 1
            return shard_id

    def remove_shard(self, shard_id: str) -> List[str]:
        """Remove a shard, migrating its resident data to the remaining shards.

        Datasets are re-stored on their new owners (their derived caches are
        dropped, not moved — re-derived on first use); results and logs move
        verbatim.  Returns the migrated dataset ids.

        If the migration fails partway (e.g. a directory-backed shard cannot
        delete a persisted file) the removal is rolled back: the shard
        rejoins the ring and whatever already moved is drained back, so the
        store never ends up with a shard that is off the ring but still
        holding unroutable data.

        The drain itself runs outside the routing lock (reads bridge the
        migration window through the fan-out fallback, writes through the
        epoch retry), so serving continues while data moves.
        """
        with self._topology_lock:
            with self._lock:
                if shard_id not in self._backends:
                    raise InvalidParameterError(f"shard {shard_id!r} does not exist")
                if len(self._backends) == 1:
                    raise InvalidParameterError("cannot remove the last shard")
                leaving = self._backends[shard_id]
                self._ring.remove_shard(shard_id)
                self._epoch += 1
            try:
                moved = self._drain(shard_id, leaving)
            except BaseException:
                with self._lock:
                    self._ring.add_shard(shard_id)
                    self._epoch += 1
                    survivors = [
                        (other_id, backend)
                        for other_id, backend in self._backends.items()
                        if other_id != shard_id
                    ]
                for other_id, backend in survivors:
                    self._drain(other_id, backend)
                raise
            with self._lock:
                del self._backends[shard_id]
                self._epoch += 1
                self._datasets_migrated += len(moved)
            # Final log sweep: lines that landed on the leaving backend
            # between the drain above and the unlink passed append_log's
            # membership check and were not re-sent; merge them now that no
            # further append can route here (any post-unlink append fails
            # the membership check and re-sends itself).
            self._drain_logs(shard_id, leaving)
            return moved

    def rebalance(self) -> List[str]:
        """Migrate datasets whose ring assignment changed; return their ids.

        Consistent hashing guarantees the moved set is minimal: only keys
        whose ring interval changed hands relocate (an expected ``~1/N``
        fraction per shard added).  A migrated dataset's derived state — its
        cached rankings and its compiled artifact — is dropped with it and
        rebuilt lazily on the new owner; results and logs move verbatim.
        """
        moved_total: List[str] = []
        with self._topology_lock:
            # The ring is stable here (topology operations are serialised),
            # so the drain runs outside the routing lock: routed traffic
            # keeps flowing while datasets move, reads bridging the window
            # through the fan-out fallback.
            for shard_id, backend in self.shard_stores().items():
                moved_total.extend(self._drain(shard_id, backend))
            with self._lock:
                self._rebalances += 1
                self._datasets_migrated += len(moved_total)
                # Data placement changed: invalidate optimistic writers'
                # routing snapshots so a write that raced a drain re-routes.
                self._epoch += 1
        return moved_total

    def _drain(self, shard_id: str, backend: DataStore) -> List[str]:
        """Move everything on ``backend`` that the ring no longer routes to it.

        Caller holds ``_topology_lock`` (so the ring and the backend table
        are stable) but NOT the routing lock — routed traffic continues
        during the migration.  ``shard_id`` may already be off the ring
        (shard removal) or still on it (rebalance after a join).

        When the target owner *already holds* a copy of a key, the source
        copy is superseded and dropped, never migrated: every dataset write
        purges sibling copies at write time (see :meth:`store_dataset`), so
        an owner-side copy is by construction at least as new as any stray.
        Each dataset move runs in its own short critical section on the
        routing lock, making the decide-and-move atomic against concurrent
        uploads (a write cannot sneak between the has-check and the store
        and then be overwritten by the stale migrating copy); the lock is
        released between datasets so serving continues throughout the
        migration.  Log streams merge instead — a racing ``append_log``
        does not retry onto a still-present owner, so every line lives on
        exactly one shard and the two streams concatenate losslessly (a
        tolerable reordering for diagnostics).
        """
        moved: List[str] = []
        for dataset_id in backend.list_datasets():
            with self._lock:
                owner = self._ring.assign(dataset_id)
                if owner == shard_id:
                    continue
                if not backend.has_dataset(dataset_id):
                    continue  # dropped or re-homed by a write since listing
                target = self._backends[owner]
                if target.has_dataset(dataset_id):
                    backend.drop_dataset(dataset_id)
                    continue
                graph = backend.fetch_dataset(dataset_id)
                target.store_dataset(
                    dataset_id, graph, version_floor=self._version_floor(dataset_id)
                )
                # Purge any cached rankings the target holds for the dataset
                # id (strays from an old epoch); the version floor above
                # additionally guarantees a racing in-flight put keyed with
                # a previous owner's version can never match a post-move
                # version.
                target.result_cache.invalidate_dataset(dataset_id)
                # drop_dataset invalidates the old shard's cached rankings
                # and compiled artifact — derived state never migrates.
                backend.drop_dataset(dataset_id)
                moved.append(dataset_id)
        for result_id in backend.list_results():
            owner = self._ring.assign(result_id)
            if owner != shard_id:
                target = self._backends[owner]
                if not target.has_result(result_id):
                    target.put_result(result_id, backend.get_result(result_id))
                backend.drop_result(result_id)
        # Deletion tombstones relocate with their keys: a marker stranded on
        # a leaving shard would let the deleted key resurrect elsewhere.
        for dataset_id, version in backend.list_dataset_tombstones().items():
            with self._lock:
                owner = self._ring.assign(dataset_id)
                if owner == shard_id:
                    continue
                self._backends[owner].set_dataset_tombstone(dataset_id, version)
                backend.clear_dataset_tombstone(dataset_id)
        for result_id in backend.list_result_tombstones():
            owner = self._ring.assign(result_id)
            if owner != shard_id:
                self._backends[owner].set_result_tombstone(result_id)
                backend.clear_result_tombstone(result_id)
        self._drain_logs(shard_id, backend)
        return moved

    def _drain_logs(self, shard_id: str, backend: DataStore) -> None:
        """Merge ``backend``'s misrouted log streams into their owners'.

        Called from :meth:`_drain` and again by :meth:`remove_shard` after
        the leaving backend is unlinked, to sweep up lines that landed
        between the main drain and the unlink (their writers saw the backend
        still present and did not re-send).
        """
        for log_id in backend.list_logs():
            owner = self._ring.assign(log_id)
            if owner != shard_id:
                target = self._backends[owner]
                for line in backend.get_logs(log_id):
                    target.append_log(log_id, line)
                backend.drop_logs(log_id)

    # ------------------------------------------------------------------ #
    # datasets (routed by dataset id)
    # ------------------------------------------------------------------ #
    def store_dataset(self, dataset_id: str, graph: DirectedGraph) -> None:
        """Store (or replace) a dataset on its owning shard.

        Replacement invalidates the cached rankings and the compiled artifact
        on the owning shard — sibling shards never gain state from an upload.
        The write runs under the routing lock (datasets are in-memory, so the
        critical section is a dict insert) and *purges* any copy another
        shard still holds — e.g. one stranded by an earlier ring change that
        was never rebalanced.  That purge is what makes every surviving copy
        authoritative: a drain that later finds the owner already holding the
        dataset knows the owner's copy is the newest and drops the stray
        instead of migrating it.  The owner's cached rankings for the
        dataset id are invalidated even when the owner gains the dataset for
        the first time: before a rebalance, queries may have answered from a
        previous owner's copy while their cache entries routed here, and the
        owner's fresh version counter could collide with those stale keys.
        """
        with self._lock:
            owner = self._ring.assign(dataset_id)
            owner_backend = self._backends[owner]
            owner_had_dataset = owner_backend.has_dataset(dataset_id)
            owner_backend.store_dataset(
                dataset_id, graph, version_floor=self._version_floor(dataset_id)
            )
            if not owner_had_dataset:
                # store_dataset only invalidates on replacement; purge the
                # first-gain strays explicitly.
                owner_backend.result_cache.invalidate_dataset(dataset_id)
            for shard_id, backend in self._backends.items():
                if shard_id != owner and backend.has_dataset(dataset_id):
                    backend.drop_dataset(dataset_id)

    def _version_floor(self, dataset_id: str) -> int:
        """Return the highest upload counter any shard holds for a dataset.

        Counters survive drops and purges, so this is a global high-water
        mark; storing with it as the floor keeps versions monotonic across
        shard boundaries — a cache entry keyed against *any* earlier copy
        (even one computed on a previous owner mid-migration) can never
        collide with a later upload's version.  Caller holds the routing
        lock or the topology lock.
        """
        return max(
            (backend.dataset_version(dataset_id) for backend in self._backends.values()),
            default=0,
        )

    def fetch_dataset(self, dataset_id: str) -> DirectedGraph:
        """Return the stored dataset graph from its owning shard."""
        return self._route_read(
            dataset_id, lambda backend: backend.fetch_dataset(dataset_id)
        )

    def fetch_dataset_with_version(self, dataset_id: str) -> Tuple[DirectedGraph, int]:
        """Return ``(graph, version)`` from the owning shard."""
        return self._route_read(
            dataset_id, lambda backend: backend.fetch_dataset_with_version(dataset_id)
        )

    def dataset_version(self, dataset_id: str) -> int:
        """Return the upload counter of a dataset on its owning shard."""
        return self._route_read(
            dataset_id,
            lambda backend: backend.dataset_version(dataset_id),
            missed=lambda version: version == 0,
        )

    def has_dataset(self, dataset_id: str) -> bool:
        """Return ``True`` if the owning shard stores ``dataset_id``."""
        return self._route_read(
            dataset_id,
            lambda backend: backend.has_dataset(dataset_id),
            missed=lambda found: not found,
        )

    def list_datasets(self) -> List[str]:
        """Return the dataset ids across every shard, sorted (deduplicated:
        a superseded copy left behind by a write that raced a ring change
        must not list twice)."""
        identifiers: set = set()
        for backend in self.shard_stores().values():
            identifiers.update(backend.list_datasets())
        return sorted(identifiers)

    def drop_dataset(self, dataset_id: str) -> None:
        """Remove a dataset (and its shard-local derived caches).

        Fans out to every shard holding a copy: reads fall back to a shard
        scan during migration windows, so a delete that only visited the
        ring owner could leave a previous owner's copy being served — a
        delete must mean delete everywhere.
        """
        with self._lock:
            for backend in self._backends.values():
                if backend.has_dataset(dataset_id):
                    backend.drop_dataset(dataset_id)

    # ------------------------------------------------------------------ #
    # deletion tombstones (fanned out like the drops they harden)
    # ------------------------------------------------------------------ #
    def set_dataset_tombstone(self, dataset_id: str, version: int) -> bool:
        """Record a versioned deletion marker on every shard.

        Returns ``True`` if any shard accepted it (a shard holding a
        strictly newer live copy declines — the write won the race).
        """
        accepted = False
        with self._lock:
            for backend in self._backends.values():
                if backend.set_dataset_tombstone(dataset_id, version):
                    accepted = True
        return accepted

    def dataset_tombstone(self, dataset_id: str) -> int:
        """Return the highest tombstone version any shard records (0 = none)."""
        version = 0
        for backend in self.shard_stores().values():
            version = max(version, backend.dataset_tombstone(dataset_id))
        return version

    def clear_dataset_tombstone(self, dataset_id: str) -> None:
        """Reap a dataset tombstone from every shard."""
        for backend in self.shard_stores().values():
            backend.clear_dataset_tombstone(dataset_id)

    def list_dataset_tombstones(self) -> Dict[str, int]:
        """Merged ``{dataset_id: version}`` tombstones across the shards."""
        merged: Dict[str, int] = {}
        for backend in self.shard_stores().values():
            for dataset_id, version in backend.list_dataset_tombstones().items():
                merged[dataset_id] = max(merged.get(dataset_id, 0), version)
        return merged

    def set_result_tombstone(self, result_id: str) -> None:
        """Record a result deletion marker on every shard."""
        for backend in self.shard_stores().values():
            backend.set_result_tombstone(result_id)

    def has_result_tombstone(self, result_id: str) -> bool:
        """Return whether any shard records a tombstone for ``result_id``."""
        return any(
            backend.has_result_tombstone(result_id)
            for backend in self.shard_stores().values()
        )

    def clear_result_tombstone(self, result_id: str) -> None:
        """Reap a result tombstone from every shard."""
        for backend in self.shard_stores().values():
            backend.clear_result_tombstone(result_id)

    def list_result_tombstones(self) -> List[str]:
        """Sorted union of result tombstones across the shards."""
        identifiers: set = set()
        for backend in self.shard_stores().values():
            identifiers.update(backend.list_result_tombstones())
        return sorted(identifiers)

    # ------------------------------------------------------------------ #
    # resident-bytes accounting (feeds the automatic spill budget)
    # ------------------------------------------------------------------ #
    def resident_bytes_by_dataset(self) -> Dict[str, int]:
        """Estimated memory cost per dataset, summed across the shards."""
        totals: Dict[str, int] = {}
        for backend in self.shard_stores().values():
            for dataset_id, size in backend.resident_bytes_by_dataset().items():
                totals[dataset_id] = totals.get(dataset_id, 0) + size
        return totals

    def resident_dataset_bytes(self) -> int:
        """Total estimated bytes of graph data resident across the shards."""
        return sum(self.resident_bytes_by_dataset().values())

    # ------------------------------------------------------------------ #
    # compiled artifacts (routed with their dataset)
    # ------------------------------------------------------------------ #
    def fetch_compiled_with_version(self, dataset_id: str) -> Tuple[CompiledGraph, int]:
        """Return ``(compiled artifact, version)`` from the owning shard."""
        return self._route_read(
            dataset_id,
            lambda backend: backend.fetch_compiled_with_version(dataset_id),
        )

    def fetch_compiled(self, dataset_id: str) -> CompiledGraph:
        """Return the compiled artifact of a stored dataset."""
        return self.fetch_compiled_with_version(dataset_id)[0]

    #: Counter keys summed across shards by :meth:`artifact_stats`.
    _ARTIFACT_COUNTER_KEYS = ("compiled", "hits", "misses", "invalidations")

    def _per_shard_artifact_stats(self) -> Dict[str, Any]:
        """Collect each shard's artifact counters (hook for tolerant subclasses)."""
        return {
            shard_id: backend.artifact_stats()
            for shard_id, backend in self.shard_stores().items()
        }

    def artifact_stats(self) -> Dict[str, Any]:
        """Return aggregated artifact counters plus the per-shard breakdown.

        Per-shard ``"error"`` entries (unreachable shards, reported by the
        replicated subclass's tolerant collection) are excluded from the sums.
        """
        per_shard = self._per_shard_artifact_stats()
        healthy = [stats for stats in per_shard.values() if "error" not in stats]
        aggregated: Dict[str, Any] = {
            key: sum(stats[key] for stats in healthy)
            for key in self._ARTIFACT_COUNTER_KEYS
        }
        total = aggregated["hits"] + aggregated["misses"]
        aggregated["hit_rate"] = (aggregated["hits"] / total) if total else 0.0
        aggregated["shards"] = per_shard
        return aggregated

    # ------------------------------------------------------------------ #
    # results (routed by result id)
    # ------------------------------------------------------------------ #
    def put_result(self, result_id: str, payload: Mapping[str, object]) -> None:
        """Store a result payload on its owning shard."""
        self._route_write(result_id, lambda backend: backend.put_result(result_id, payload))

    def get_result(self, result_id: str) -> dict:
        """Return a stored result payload from its owning shard."""
        return self._route_read(result_id, lambda backend: backend.get_result(result_id))

    def has_result(self, result_id: str) -> bool:
        """Return ``True`` if the owning shard stores ``result_id``."""
        return self._route_read(
            result_id,
            lambda backend: backend.has_result(result_id),
            missed=lambda found: not found,
        )

    def list_results(self) -> List[str]:
        """Return the result ids across every shard, sorted and deduplicated."""
        identifiers: set = set()
        for backend in self.shard_stores().values():
            identifiers.update(backend.list_results())
        return sorted(identifiers)

    def drop_result(self, result_id: str) -> None:
        """Remove a stored result from every shard holding it (no error if absent).

        Fans out like :meth:`drop_dataset`: a copy on a previous owner would
        otherwise keep answering reads through the fallback scan.
        """
        for backend in self.shard_stores().values():
            backend.drop_result(result_id)

    # ------------------------------------------------------------------ #
    # logs (routed by log id)
    # ------------------------------------------------------------------ #
    def append_log(self, log_id: str, message: str) -> None:
        """Append one log line on the shard owning ``log_id``.

        No epoch retry on an ordinary ring change — a retry would duplicate
        the line, whereas a line stranded on a still-present previous owner
        merges into the owner's stream at the next drain.  The one exception
        is the shard being *removed* while the line was in flight: the
        orphaned backend is about to be discarded, so the line is re-sent to
        the current owner (a rare duplicate — if the removal drain caught
        the line first — is preferred over silently losing it).
        """
        while True:
            with self._lock:
                backend = self._backends[self._ring.assign(log_id)]
            backend.append_log(log_id, message)
            with self._lock:
                if any(existing is backend for existing in self._backends.values()):
                    return

    def get_logs(self, log_id: str) -> List[str]:
        """Return the log lines of ``log_id`` from its owning shard."""
        return self._route_read(
            log_id,
            lambda backend: backend.get_logs(log_id),
            missed=lambda lines: not lines,
        )

    def list_logs(self) -> List[str]:
        """Return the log stream ids across every shard, sorted and deduplicated."""
        identifiers: set = set()
        for backend in self.shard_stores().values():
            identifiers.update(backend.list_logs())
        return sorted(identifiers)

    def drop_logs(self, log_id: str) -> None:
        """Remove a log stream from every shard holding it (no error if absent)."""
        for backend in self.shard_stores().values():
            backend.drop_logs(log_id)

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def occupancy(self) -> Dict[str, int]:
        """Return the summed occupancy across every shard."""
        totals: Dict[str, int] = {}
        for backend in self.shard_stores().values():
            for key, value in backend.occupancy().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def shard_stats(self) -> Dict[str, Any]:
        """Return the shard topology with per-shard health and occupancy.

        This is the ``"shards"`` section of ``platform_stats()`` /
        ``GET /api/stats``: ring shape, dataset placement, and per-shard
        occupancy plus result-cache and artifact hit rates.  A shard whose
        backend fails to answer its stats probe is reported unhealthy instead
        of failing the whole snapshot.
        """
        with self._lock:
            virtual_nodes = self._ring.virtual_nodes
            rebalances = self._rebalances
            migrated = self._datasets_migrated
        per_shard: Dict[str, Any] = {}
        for shard_id, backend in self.shard_stores().items():
            try:
                occupancy = backend.occupancy()
                cache_stats = backend.result_cache.stats()
                artifact_stats = backend.artifact_stats()
                # Counts only, never id listings: /api/stats is a polled
                # monitoring endpoint and must not grow with dataset count.
                per_shard[shard_id] = {
                    "healthy": True,
                    "occupancy": occupancy,
                    "cache_hit_rate": cache_stats["hit_rate"],
                    "cache_size": cache_stats["size"],
                    "artifact_hit_rate": artifact_stats["hit_rate"],
                }
            except Exception as exc:  # pragma: no cover - in-process stores don't fail
                per_shard[shard_id] = {"healthy": False, "error": str(exc)}
        return {
            "num_shards": len(per_shard),
            "virtual_nodes": virtual_nodes,
            "shard_ids": sorted(per_shard),
            "rebalances": rebalances,
            "datasets_migrated": migrated,
            "per_shard": per_shard,
        }

    def __repr__(self) -> str:
        return f"<ShardedDataStore over {self.num_shards} shards>"
