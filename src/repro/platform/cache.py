"""A platform-wide LRU cache for finished rankings.

The dominant production workload (Tables I and II of the paper) is *many
queries against the same dataset with the same parameters* — exactly the
access pattern a result cache thrives on.  :class:`ResultCache` memoises
finished :class:`~repro.ranking.result.Ranking` objects under a canonical
``(dataset, algorithm, parameters, source)`` key, so a repeated query is
served without dispatching an executor at all.

The cache is size-bounded (least-recently-used eviction), thread-safe, keeps
hit/miss/eviction/invalidation counters for observability, and supports
explicit per-dataset invalidation — the datastore calls it whenever a dataset
is re-uploaded or dropped, so no stale ranking can outlive its graph.

Two optional policies harden it for production traffic:

* **Time-based expiry** (``ttl_seconds``): entries older than the TTL are
  treated as misses and dropped lazily, for deployments where datasets
  mutate outside the gateway's invalidation path.
* **Admit on second miss** (``admit_on_second_miss``): a ranking is only
  admitted once its key has been seen before, so a one-off scan over
  thousands of distinct queries cannot evict the hot working set.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from .._validation import require_positive_int
from ..exceptions import InvalidParameterError
from ..ranking.result import Ranking

__all__ = ["CacheKey", "ResultCache"]

#: The canonical cache key: (dataset id, algorithm name, sorted parameter
#: items, source label or None, dataset version).  The version ties a cached
#: ranking to the exact upload of the dataset it was computed on, so results
#: of computations that were already in flight when a dataset was re-uploaded
#: can never be served against the new graph.
CacheKey = Tuple[str, str, Tuple[Tuple[str, Any], ...], Optional[str], int]

DEFAULT_CAPACITY = 1024


def _canonical_parameters(parameters: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Return the parameters as a sorted, hashable tuple of items."""
    return tuple(sorted(parameters.items()))


class ResultCache:
    """Size-bounded LRU cache of finished rankings, keyed per query.

    Parameters
    ----------
    capacity:
        Maximum number of rankings retained; the least recently used entry is
        evicted when the bound is exceeded.
    ttl_seconds:
        Optional time-to-live: entries older than this count as misses and
        are dropped (counted under ``expirations``).  ``None`` (the default)
        disables expiry.
    admit_on_second_miss:
        When ``True``, the first :meth:`put` for a never-seen key is deferred
        (counted under ``admissions_deferred``); only a key whose first put
        was already witnessed is admitted.  Protects the LRU from one-off
        scan workloads.  Defaults to ``False`` (admit everything).
    clock:
        Monotonic time source; injectable for tests.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        *,
        ttl_seconds: Optional[float] = None,
        admit_on_second_miss: bool = False,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        require_positive_int(capacity, "capacity")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise InvalidParameterError(
                f"ttl_seconds must be positive (or None to disable), got {ttl_seconds!r}"
            )
        self._capacity = capacity
        self._ttl_seconds = ttl_seconds
        self._admit_on_second_miss = admit_on_second_miss
        self._clock = clock
        #: key -> (ranking, insertion timestamp)
        self._entries: "OrderedDict[CacheKey, Tuple[Ranking, float]]" = OrderedDict()
        #: Keys whose first put was deferred by the admission policy, kept in
        #: a bounded FIFO so the ghost list cannot itself grow unboundedly.
        self._seen_once: "OrderedDict[CacheKey, None]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        self._expirations = 0
        self._admissions_deferred = 0

    # ------------------------------------------------------------------ #
    # keys
    # ------------------------------------------------------------------ #
    @staticmethod
    def key_for(
        dataset_id: str,
        algorithm: str,
        parameters: Mapping[str, Any],
        source: Optional[str] = None,
        *,
        version: int = 0,
    ) -> CacheKey:
        """Build the canonical cache key of one query.

        Parameter order does not matter; two queries with the same dataset,
        algorithm, parameter values and source always map to the same key.
        ``version`` is the datastore's upload counter for the dataset, so a
        re-uploaded dataset starts from a fresh key space even if a stale
        computation finishes (and caches its result) afterwards.
        """
        return (dataset_id, algorithm, _canonical_parameters(parameters), source, version)

    # ------------------------------------------------------------------ #
    # lookup / insertion
    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> int:
        """Return the maximum number of retained rankings."""
        return self._capacity

    @property
    def ttl_seconds(self) -> Optional[float]:
        """Return the configured time-to-live (``None`` when disabled)."""
        return self._ttl_seconds

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _expired(self, inserted_at: float) -> bool:
        return (
            self._ttl_seconds is not None
            and self._clock() - inserted_at > self._ttl_seconds
        )

    def get(self, key: CacheKey) -> Optional[Ranking]:
        """Return the cached ranking for ``key`` (marking it recently used).

        An entry older than the TTL is dropped and reported as a miss.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            ranking, inserted_at = entry
            if self._expired(inserted_at):
                del self._entries[key]
                self._expirations += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return ranking

    def peek(self, key: CacheKey) -> Optional[Ranking]:
        """Return the cached ranking without touching counters or LRU order."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or self._expired(entry[1]):
                return None
            return entry[0]

    def put(self, key: CacheKey, ranking: Ranking) -> bool:
        """Store a finished ranking, evicting the least recently used if full.

        Under the admit-on-second-miss policy the first put of a never-seen
        key is deferred; returns ``True`` if the ranking was admitted.
        """
        with self._lock:
            if self._admit_on_second_miss and key not in self._entries:
                if key not in self._seen_once:
                    self._seen_once[key] = None
                    # Bound the ghost list: remember at most 4x capacity keys.
                    while len(self._seen_once) > 4 * self._capacity:
                        self._seen_once.popitem(last=False)
                    self._admissions_deferred += 1
                    return False
                del self._seen_once[key]
            self._entries[key] = (ranking, self._clock())
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            return True

    # ------------------------------------------------------------------ #
    # invalidation
    # ------------------------------------------------------------------ #
    def invalidate_dataset(self, dataset_id: str) -> int:
        """Drop every cached ranking computed on ``dataset_id``.

        Called on dataset re-upload so results can never outlive the graph
        they were computed on.  Returns the number of entries dropped.  The
        admission ghost list is purged alongside so a re-uploaded dataset
        starts its admission accounting afresh.
        """
        with self._lock:
            stale = [key for key in self._entries if key[0] == dataset_id]
            for key in stale:
                del self._entries[key]
            for key in [key for key in self._seen_once if key[0] == dataset_id]:
                del self._seen_once[key]
            self._invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        """Drop every cached ranking (counters are preserved)."""
        with self._lock:
            self._invalidations += len(self._entries)
            self._entries.clear()
            self._seen_once.clear()

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        """Return a snapshot of the cache counters and occupancy."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "capacity": self._capacity,
                "size": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "hit_rate": (self._hits / total) if total else 0.0,
                "evictions": self._evictions,
                "invalidations": self._invalidations,
                "ttl_seconds": self._ttl_seconds,
                "expirations": self._expirations,
                "admit_on_second_miss": self._admit_on_second_miss,
                "admissions_deferred": self._admissions_deferred,
            }

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"<ResultCache {stats['size']}/{stats['capacity']} entries, "
            f"{stats['hits']} hits / {stats['misses']} misses>"
        )
