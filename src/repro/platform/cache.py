"""A platform-wide LRU cache for finished rankings.

The dominant production workload (Tables I and II of the paper) is *many
queries against the same dataset with the same parameters* — exactly the
access pattern a result cache thrives on.  :class:`ResultCache` memoises
finished :class:`~repro.ranking.result.Ranking` objects under a canonical
``(dataset, algorithm, parameters, source)`` key, so a repeated query is
served without dispatching an executor at all.

The cache is size-bounded (least-recently-used eviction), thread-safe, keeps
hit/miss/eviction/invalidation counters for observability, and supports
explicit per-dataset invalidation — the datastore calls it whenever a dataset
is re-uploaded or dropped, so no stale ranking can outlive its graph.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Mapping, Optional, Tuple

from .._validation import require_positive_int
from ..ranking.result import Ranking

__all__ = ["CacheKey", "ResultCache"]

#: The canonical cache key: (dataset id, algorithm name, sorted parameter
#: items, source label or None, dataset version).  The version ties a cached
#: ranking to the exact upload of the dataset it was computed on, so results
#: of computations that were already in flight when a dataset was re-uploaded
#: can never be served against the new graph.
CacheKey = Tuple[str, str, Tuple[Tuple[str, Any], ...], Optional[str], int]

DEFAULT_CAPACITY = 1024


def _canonical_parameters(parameters: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Return the parameters as a sorted, hashable tuple of items."""
    return tuple(sorted(parameters.items()))


class ResultCache:
    """Size-bounded LRU cache of finished rankings, keyed per query.

    Parameters
    ----------
    capacity:
        Maximum number of rankings retained; the least recently used entry is
        evicted when the bound is exceeded.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        require_positive_int(capacity, "capacity")
        self._capacity = capacity
        self._entries: "OrderedDict[CacheKey, Ranking]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    # ------------------------------------------------------------------ #
    # keys
    # ------------------------------------------------------------------ #
    @staticmethod
    def key_for(
        dataset_id: str,
        algorithm: str,
        parameters: Mapping[str, Any],
        source: Optional[str] = None,
        *,
        version: int = 0,
    ) -> CacheKey:
        """Build the canonical cache key of one query.

        Parameter order does not matter; two queries with the same dataset,
        algorithm, parameter values and source always map to the same key.
        ``version`` is the datastore's upload counter for the dataset, so a
        re-uploaded dataset starts from a fresh key space even if a stale
        computation finishes (and caches its result) afterwards.
        """
        return (dataset_id, algorithm, _canonical_parameters(parameters), source, version)

    # ------------------------------------------------------------------ #
    # lookup / insertion
    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> int:
        """Return the maximum number of retained rankings."""
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: CacheKey) -> Optional[Ranking]:
        """Return the cached ranking for ``key`` (marking it recently used)."""
        with self._lock:
            ranking = self._entries.get(key)
            if ranking is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return ranking

    def peek(self, key: CacheKey) -> Optional[Ranking]:
        """Return the cached ranking without touching counters or LRU order."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: CacheKey, ranking: Ranking) -> None:
        """Store a finished ranking, evicting the least recently used if full."""
        with self._lock:
            self._entries[key] = ranking
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    # ------------------------------------------------------------------ #
    # invalidation
    # ------------------------------------------------------------------ #
    def invalidate_dataset(self, dataset_id: str) -> int:
        """Drop every cached ranking computed on ``dataset_id``.

        Called on dataset re-upload so results can never outlive the graph
        they were computed on.  Returns the number of entries dropped.
        """
        with self._lock:
            stale = [key for key in self._entries if key[0] == dataset_id]
            for key in stale:
                del self._entries[key]
            self._invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        """Drop every cached ranking (counters are preserved)."""
        with self._lock:
            self._invalidations += len(self._entries)
            self._entries.clear()

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        """Return a snapshot of the cache counters and occupancy."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "capacity": self._capacity,
                "size": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "hit_rate": (self._hits / total) if total else 0.0,
                "evictions": self._evictions,
                "invalidations": self._invalidations,
            }

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"<ResultCache {stats['size']}/{stats['capacity']} entries, "
            f"{stats['hits']} hits / {stats['misses']} misses>"
        )
