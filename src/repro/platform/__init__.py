"""The demo platform of Section III, reproduced as an in-process system.

The paper's deployment consists of four containerized components — the
Datastore, the API gateway, the Computational nodes and the Web UI — and a
five-step task lifecycle (build task → schedule → execute on workers → write
results and logs to the datastore → return results to the UI).  This package
reproduces the same component decomposition with in-process equivalents:

``datastore``
    Stores datasets, results and logs; in-memory by default with optional
    directory persistence.
``sharding``
    The consistent-hash storage layer: :class:`HashRing` and
    :class:`ShardedDataStore`, which spreads datasets (with their result
    caches and compiled artifacts) across N backend datastores while keeping
    the scheduler and gateway oblivious.
``replication``
    The fault-tolerant storage tier: :class:`ReplicatedShardedDataStore`
    writes every key to R ring successors (quorum-acked), reads with
    transparent failover, spills cold datasets to a file-backed tier
    (:class:`FileBackedDataStore`), and runs replicate/spill/rebalance as
    cancellable jobs on the job registry.
``cache``
    The platform-wide LRU :class:`ResultCache` of finished rankings, owned
    by the datastore and consulted by the scheduler before any dispatch.
``tasks``
    :class:`Query`, :class:`QuerySet` and :class:`TaskBuilder` — the task
    builder of Figure 2, producing (dataset, algorithm, parameters) triples
    identified by a permalink id.
``jobs``
    The job/event subsystem: :class:`JobRegistry` of :class:`JobRecord`\\ s,
    each carrying an explicit lifecycle and an append-only event log with
    blocking cursor reads — the seam the non-blocking submission, streamed
    progress and cooperative cancellation are built on.
``resilience``
    The overload-protection primitives shared by the gateway, scheduler and
    replicated storage: :class:`Deadline` propagation, the
    :class:`AdmissionController` (load shedding with Retry-After hints),
    the :class:`RetryPolicy`/:class:`TokenBucket` retry discipline and
    per-shard :class:`CircuitBreaker`\\ s.
``telemetry``
    The observability layer: a process-wide :class:`MetricsRegistry`
    (counters, gauges, log-bucket latency histograms with a Prometheus
    text exposition) and a :class:`Tracer` minting one trace per
    comparison, with spans propagated through the same thread-local seam
    deadlines use (``trace_scope`` / ``child_span``).
``executor``
    Executor (worker) nodes running queries on a thread pool that can be
    scaled up or down.
``scheduler``
    Receives tasks, fetches datasets, dispatches queries to executors and
    tracks progress.
``status``
    The polling component the UI uses to monitor running tasks.
``gateway``
    The API gateway: the single entry point the Web UI (and the CLI) talks
    to.
``webui``
    A deterministic text/HTML renderer of the task-builder view and of the
    comparison tables — the presentation half of the demo, minus the browser.
"""

from __future__ import annotations

from .cache import ResultCache
from .datastore import DataStore, FileBackedDataStore
from .executor import BatchExecutionOutcome, ExecutionOutcome, ExecutorNode, ExecutorPool
from .gateway import ApiGateway
from .jobs import JobEvent, JobRecord, JobRegistry, JobState, QueryState
from .replication import ReplicatedResultCache, ReplicatedShardedDataStore
from .resilience import (
    AdmissionController,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    TokenBucket,
    current_deadline,
    deadline_scope,
    estimate_cost,
)
from .restapi import RestApiServer
from .scheduler import Scheduler
from .sharding import HashRing, ShardedDataStore, ShardedResultCache
from .status import StatusComponent, TaskProgress
from .tasks import Query, QuerySet, Task, TaskBuilder, TaskState
from .telemetry import (
    MetricsRegistry,
    Span,
    Tracer,
    add_span_event,
    child_span,
    current_span,
    trace_scope,
)
from .webui import WebUI

__all__ = [
    "DataStore",
    "FileBackedDataStore",
    "HashRing",
    "ShardedDataStore",
    "ShardedResultCache",
    "ReplicatedResultCache",
    "ReplicatedShardedDataStore",
    "ResultCache",
    "Query",
    "QuerySet",
    "Task",
    "TaskState",
    "TaskBuilder",
    "ExecutorNode",
    "ExecutorPool",
    "ExecutionOutcome",
    "BatchExecutionOutcome",
    "JobEvent",
    "JobRecord",
    "JobRegistry",
    "JobState",
    "QueryState",
    "AdmissionController",
    "CircuitBreaker",
    "Deadline",
    "RetryPolicy",
    "TokenBucket",
    "current_deadline",
    "deadline_scope",
    "estimate_cost",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "add_span_event",
    "child_span",
    "current_span",
    "trace_scope",
    "Scheduler",
    "StatusComponent",
    "TaskProgress",
    "ApiGateway",
    "RestApiServer",
    "WebUI",
]
