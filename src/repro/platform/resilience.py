"""Shared request-resilience primitives for the serving path.

The storage tier heals itself (replication, tombstones, probe-driven
failover, read-repair); this module gives the *request* path the matching
discipline, so the platform degrades gracefully under overload instead of
collapsing:

:class:`Deadline` / :func:`deadline_scope` / :func:`current_deadline`
    An absolute, monotonic-clock expiry carried from submission into the
    scheduler's group closures via a thread-local scope, so storage IO deep
    in the stack can stop working on requests nobody is waiting for.
:class:`TokenBucket`
    The per-gateway *retry budget*: a dead shard may cost each caller its
    bounded attempts, but the bucket caps the cluster-wide amplification a
    retry storm could otherwise produce.
:class:`RetryPolicy`
    Bounded attempts with exponential backoff and full jitter for
    *transient* per-replica faults.  ``StorageError`` means absence, not
    infrastructure failure, and is never retried.
:class:`CircuitBreaker`
    Per-shard closed → open → half-open state over the failure streaks the
    health detector already tracks; an open breaker short-circuits reads to
    the next successor instead of eating a timeout per call.
:class:`AdmissionController`
    Queue-depth + estimated-cost load shedding at the gateway: over budget,
    callers get a typed refusal with a computed ``Retry-After`` *before*
    anything is enqueued, so accepted work is never dropped.

Everything here is pure stdlib and lock-protected; the knobs surface on
``ApiGateway(...)`` and the CLI, the counters in ``platform_stats()``.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Dict, Optional, Sequence, TypeVar

from ..exceptions import DeadlineExceededError, StorageError
from . import telemetry

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "Deadline",
    "RetryPolicy",
    "TokenBucket",
    "current_deadline",
    "deadline_scope",
    "estimate_cost",
]

T = TypeVar("T")


# --------------------------------------------------------------------------- #
# Deadlines
# --------------------------------------------------------------------------- #
class Deadline:
    """An absolute expiry on the monotonic clock.

    Built once at submission time (:meth:`from_ms`) and carried down the
    stack; every layer asks the same object, so clock skew between layers
    is impossible.
    """

    __slots__ = ("deadline_ms", "_expires_at")

    def __init__(self, expires_at: float, *, deadline_ms: Optional[int] = None) -> None:
        self._expires_at = float(expires_at)
        self.deadline_ms = deadline_ms

    @classmethod
    def from_ms(cls, deadline_ms: int) -> "Deadline":
        """Build a deadline ``deadline_ms`` milliseconds from now."""
        if not isinstance(deadline_ms, int) or isinstance(deadline_ms, bool):
            raise TypeError(f"deadline_ms must be an int, got {type(deadline_ms).__name__}")
        if deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be positive, got {deadline_ms}")
        return cls(time.monotonic() + deadline_ms / 1000.0, deadline_ms=deadline_ms)

    def remaining(self) -> float:
        """Seconds until expiry; negative once expired."""
        return self._expires_at - time.monotonic()

    def expired(self) -> bool:
        return time.monotonic() >= self._expires_at

    def raise_if_expired(self, context: str) -> None:
        if self.expired():
            raise DeadlineExceededError(
                f"deadline expired {context}"
                + (f" (deadline_ms={self.deadline_ms})" if self.deadline_ms else ""),
                deadline_ms=self.deadline_ms,
            )

    def __repr__(self) -> str:
        return f"<Deadline remaining={self.remaining():.3f}s>"


_deadline_local = threading.local()


class _DeadlineScope:
    """Context manager installing a deadline for the current thread."""

    __slots__ = ("_deadline", "_previous")

    def __init__(self, deadline: Optional[Deadline]) -> None:
        self._deadline = deadline
        self._previous: Optional[Deadline] = None

    def __enter__(self) -> Optional[Deadline]:
        self._previous = getattr(_deadline_local, "deadline", None)
        _deadline_local.deadline = self._deadline
        return self._deadline

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        _deadline_local.deadline = self._previous


def deadline_scope(deadline: Optional[Deadline]) -> _DeadlineScope:
    """Install ``deadline`` as the current thread's deadline for a block.

    Scopes nest (the previous deadline is restored on exit) and ``None`` is
    accepted so call sites do not need to branch on "has a deadline".
    """
    return _DeadlineScope(deadline)


def current_deadline() -> Optional[Deadline]:
    """The deadline installed for this thread, if any."""
    return getattr(_deadline_local, "deadline", None)


# --------------------------------------------------------------------------- #
# Retry budget (token bucket)
# --------------------------------------------------------------------------- #
class TokenBucket:
    """A refillable token bucket bounding cluster-wide retry amplification.

    ``capacity`` tokens are available immediately; ``refill_per_second``
    tokens accrue continuously up to the cap.  A refill rate of ``0`` makes
    the bucket a fixed budget — once drained, every retry is denied until
    operator intervention (the configuration scripted outages are tested
    against).
    """

    def __init__(self, capacity: int, refill_per_second: float = 0.0) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if refill_per_second < 0:
            raise ValueError(f"refill_per_second must be >= 0, got {refill_per_second}")
        self.capacity = int(capacity)
        self.refill_per_second = float(refill_per_second)
        self._tokens = float(capacity)
        self._last_refill = time.monotonic()
        self._lock = threading.Lock()
        self.granted = 0
        self.denied = 0

    def _refill_locked(self) -> None:
        now = time.monotonic()
        if self.refill_per_second > 0.0:
            self._tokens = min(
                float(self.capacity),
                self._tokens + (now - self._last_refill) * self.refill_per_second,
            )
        self._last_refill = now

    def try_acquire(self, tokens: int = 1) -> bool:
        """Take ``tokens`` from the bucket; ``False`` (and counted as a
        denial) when the budget is exhausted."""
        with self._lock:
            self._refill_locked()
            if self._tokens >= tokens:
                self._tokens -= tokens
                self.granted += tokens
                return True
            self.denied += tokens
            return False

    def available(self) -> float:
        with self._lock:
            self._refill_locked()
            return self._tokens

    def stats(self) -> Dict[str, float]:
        with self._lock:
            self._refill_locked()
            return {
                "capacity": self.capacity,
                "refill_per_second": self.refill_per_second,
                "available": round(self._tokens, 3),
                "granted": self.granted,
                "denied": self.denied,
            }


# --------------------------------------------------------------------------- #
# Retry policy
# --------------------------------------------------------------------------- #
class RetryPolicy:
    """Bounded retries with exponential backoff and full jitter.

    One shared policy instance serves every replica operation of a store,
    so the counters describe the whole gateway.  The discipline:

    - at most ``max_attempts`` total attempts per operation;
    - sleeps drawn uniformly from ``[0, min(max_delay, base * 2**n)]``
      (full jitter — retries from concurrent callers decorrelate);
    - a retry (attempt ≥ 2) must win a token from the shared ``budget``;
    - ``StorageError`` (absence, not infrastructure failure) never retries;
    - an installed :func:`deadline_scope` stops retries once the caller's
      deadline cannot accommodate another attempt.
    """

    def __init__(
        self,
        *,
        max_attempts: int = 3,
        base_delay: float = 0.02,
        max_delay: float = 0.5,
        budget: Optional[TokenBucket] = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be >= 0")
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.budget = budget
        self._lock = threading.Lock()
        self.retries_spent = 0
        self.retries_denied = 0

    def _backoff(self, attempt: int) -> float:
        """Full-jitter backoff before retry number ``attempt`` (1-based)."""
        ceiling = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        return random.uniform(0.0, ceiling)

    def run(self, operation: Callable[[], T]) -> T:
        """Run ``operation``, retrying transient failures per the policy."""
        attempt = 0
        while True:
            attempt += 1
            try:
                return operation()
            except (StorageError, DeadlineExceededError):
                raise  # absence / expired caller: retrying cannot help
            except Exception as exc:
                if attempt >= self.max_attempts:
                    raise
                delay = self._backoff(attempt)
                deadline = current_deadline()
                if deadline is not None and deadline.remaining() <= delay:
                    with self._lock:
                        self.retries_denied += 1
                    telemetry.add_span_event(
                        "retry_denied", reason="deadline", attempt=attempt
                    )
                    raise
                if self.budget is not None and not self.budget.try_acquire():
                    with self._lock:
                        self.retries_denied += 1
                    telemetry.add_span_event(
                        "retry_denied", reason="budget", attempt=attempt
                    )
                    raise
                with self._lock:
                    self.retries_spent += 1
                telemetry.add_span_event(
                    "retry", attempt=attempt, error=type(exc).__name__,
                    delay_ms=round(delay * 1000.0, 3),
                )
                if delay > 0:
                    time.sleep(delay)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            payload: Dict[str, object] = {
                "max_attempts": self.max_attempts,
                "base_delay_seconds": self.base_delay,
                "max_delay_seconds": self.max_delay,
                "retries_spent": self.retries_spent,
                "retries_denied": self.retries_denied,
            }
        if self.budget is not None:
            payload["budget"] = self.budget.stats()
        return payload


# --------------------------------------------------------------------------- #
# Circuit breaker
# --------------------------------------------------------------------------- #
class CircuitBreaker:
    """Per-shard closed → open → half-open breaker.

    Failures feed the same streaks the health detector counts; at
    ``failure_threshold`` consecutive failures the breaker opens and the
    read path stops offering the shard work.  After ``cooldown_seconds``
    the breaker lets exactly one caller through (half-open); the PR-6
    prober's success/failure on that shard then closes or re-opens it.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, *, failure_threshold: int = 3, cooldown_seconds: float = 2.0) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if cooldown_seconds < 0:
            raise ValueError(f"cooldown_seconds must be >= 0, got {cooldown_seconds}")
        self.failure_threshold = int(failure_threshold)
        self.cooldown_seconds = float(cooldown_seconds)
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._streak = 0
        self._opened_at = 0.0
        self.opens = 0
        self.short_circuits = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state_locked()

    def _effective_state_locked(self) -> str:
        if self._state == self.OPEN and (
            time.monotonic() - self._opened_at >= self.cooldown_seconds
        ):
            self._state = self.HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May the caller send this shard work right now?

        An open breaker answers ``False`` (counted as a short-circuit)
        until the cooldown elapses; from then on probes — and exactly the
        callers willing to be probes — get through half-open.
        """
        with self._lock:
            state = self._effective_state_locked()
            if state == self.OPEN:
                self.short_circuits += 1
                return False
            return True

    def record_failure(self) -> bool:
        """Feed one failure; returns ``True`` when this failure opened the
        breaker (a half-open probe failing re-opens immediately)."""
        with self._lock:
            state = self._effective_state_locked()
            self._streak += 1
            if state == self.HALF_OPEN or (
                state == self.CLOSED and self._streak >= self.failure_threshold
            ):
                self._state = self.OPEN
                self._opened_at = time.monotonic()
                self.opens += 1
                return True
            return False

    def record_success(self) -> None:
        """Feed one success: closes the breaker and resets the streak."""
        with self._lock:
            self._state = self.CLOSED
            self._streak = 0

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "state": self._effective_state_locked(),
                "failure_streak": self._streak,
                "failure_threshold": self.failure_threshold,
                "cooldown_seconds": self.cooldown_seconds,
                "opens": self.opens,
                "short_circuits": self.short_circuits,
            }


# --------------------------------------------------------------------------- #
# Admission control
# --------------------------------------------------------------------------- #
#: Per-algorithm admission-cost weights; anything unlisted costs 1 per query.
#: CycleRank is the expensive one — its bounded-cycle enumeration dominates
#: the executors whenever it appears in a comparison.
DEFAULT_COST_WEIGHTS: Dict[str, int] = {"cyclerank": 4}


def estimate_cost(
    queries: Sequence[object],
    weights: Optional[Dict[str, int]] = None,
) -> int:
    """Estimate the executor cost of a submission for admission control.

    ``queries`` is anything with an ``algorithm`` attribute (the platform's
    ``Query``) or a plain mapping with an ``"algorithm"`` key (the REST
    payload before task building).  Unknown algorithms cost 1.
    """
    table = DEFAULT_COST_WEIGHTS if weights is None else weights
    total = 0
    for query in queries:
        algorithm = getattr(query, "algorithm", None)
        if algorithm is None and isinstance(query, dict):
            algorithm = query.get("algorithm")
        total += table.get(algorithm, 1)
    return max(1, total)


class AdmissionController:
    """Cost-budget load shedding at the gateway front door.

    Every accepted submission reserves its estimated cost until its job
    settles; a submission that would push the in-flight total past
    ``max_cost`` is shed with a computed retry-after *before* it is
    enqueued.  The retry-after scales with the overshoot (a gateway at 4x
    budget tells callers to stay away longer than one at 1.1x), clamped to
    ``[retry_after_seconds, 8 * retry_after_seconds]``.

    Admission is work-conserving: a submission whose cost alone exceeds
    the budget is still admitted when *nothing* is in flight — the budget
    bounds concurrent load, and shedding an expensive request on an idle
    gateway would starve it forever (every retry would find the same
    empty gateway and the same verdict).  The exception is ``max_cost =
    0``, an explicit drain mode that sheds everything (close the front
    door; let in-flight work finish).
    """

    def __init__(self, *, max_cost: int, retry_after_seconds: float = 1.0) -> None:
        if max_cost < 0:
            raise ValueError(f"max_cost must be >= 0, got {max_cost}")
        if retry_after_seconds <= 0:
            raise ValueError(f"retry_after_seconds must be > 0, got {retry_after_seconds}")
        self.max_cost = int(max_cost)
        self.retry_after_seconds = float(retry_after_seconds)
        self._lock = threading.Lock()
        self._inflight_cost = 0
        self._inflight_jobs = 0
        self.admitted = 0
        self.shed = 0
        self.peak_cost = 0

    def try_admit(self, cost: int) -> "tuple[bool, float]":
        """Reserve ``cost`` if the budget allows; otherwise compute a
        retry-after.  Returns ``(admitted, retry_after)`` — ``retry_after``
        is ``0.0`` on admission."""
        cost = max(1, int(cost))
        with self._lock:
            if self.max_cost > 0 and (
                self._inflight_cost + cost <= self.max_cost
                or self._inflight_jobs == 0
            ):
                self._inflight_cost += cost
                self._inflight_jobs += 1
                self.admitted += 1
                self.peak_cost = max(self.peak_cost, self._inflight_cost)
                return True, 0.0
            self.shed += 1
            budget = max(1, self.max_cost)
            overshoot = (self._inflight_cost + cost) / budget
            retry_after = min(
                self.retry_after_seconds * max(1.0, overshoot),
                8.0 * self.retry_after_seconds,
            )
            return False, retry_after

    def release(self, cost: int) -> None:
        """Return a settled submission's reservation to the budget."""
        cost = max(1, int(cost))
        with self._lock:
            self._inflight_cost = max(0, self._inflight_cost - cost)
            self._inflight_jobs = max(0, self._inflight_jobs - 1)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "max_cost": self.max_cost,
                "inflight_cost": self._inflight_cost,
                "inflight_jobs": self._inflight_jobs,
                "peak_cost": self.peak_cost,
                "admitted": self.admitted,
                "shed": self.shed,
                "retry_after_seconds": self.retry_after_seconds,
            }
