"""A small HTTP/JSON front-end for the API gateway.

The paper's deployment exposes the gateway as a REST service that the
browser-based Web UI calls.  This module reproduces that surface with the
standard library only (``http.server``), so the platform can actually be
driven over HTTP — by ``curl``, by the example client, or by a real web
front-end — without any additional dependencies.

Endpoints
---------
``GET    /``                                    minimal HTML index (dataset + algorithm pickers)
``GET    /api/datasets``                        dataset picker payload
``GET    /api/datasets/<id>/summary``           structural summary of one dataset
``GET    /api/algorithms``                      algorithm picker payload
``POST   /api/comparisons``                     submit a comparison; body ``{"queries": [...], "synchronous": bool,
                                                "deadline_ms": N}`` (``"synchronous": false`` returns the permalink
                                                id immediately while the comparison runs on the worker pool;
                                                ``deadline_ms`` bounds how long the submission may wait + run
                                                before it is settled with a ``deadline_exceeded`` event).
                                                When the gateway is over its admission budget the submission is
                                                shed with ``429`` + a ``Retry-After`` header and body
                                                ``{"error": ..., "retry_after": seconds, "shed": true}`` —
                                                nothing was enqueued; re-submit after the hinted delay.
``GET    /api/comparisons``                     job listing: one summary row per known comparison
``GET    /api/comparisons/<id>/status``         progress snapshot
``GET    /api/comparisons/<id>/events?after=N`` long-poll: blocks up to ``timeout`` seconds (default 10,
                                                max 30) for events with ``seq > N``; returns
                                                ``{"events": [...], "next_after": M, "state": ...}``
``GET    /api/comparisons/<id>/events?stream=sse``
                                                server-sent events (``text/event-stream``): one frame per
                                                event (``id:`` = seq), ends after ``task_done``.  Works on
                                                the stdlib ``ThreadingHTTPServer`` because each stream holds
                                                one handler thread while submissions return immediately.
                                                Idle streams emit ``: ping`` comment frames (every
                                                ``keepalive`` seconds, default 15) so aggressive proxies do
                                                not drop them; a client that reconnects resumes exactly
                                                where it left off via ``after=N``.
``POST   /api/storage/replicate``               start a replication-repair job; ``202`` with its job id
``POST   /api/storage/spill``                   start a spill job; body ``{"max_resident": N}``,
                                                ``{"max_resident_bytes": N}`` or ``{"dataset_ids": [...]}``
``POST   /api/storage/rebalance``               start a rebalance job (canonical placement + R copies).
``POST   /api/storage/read-repair``             drain the read-repair queue (failover reads fill it; the
                                                gateway normally drains automatically).
                                                Storage jobs stream progress through the same
                                                ``/api/comparisons/<job id>/events`` endpoints and are
                                                cancelled with ``DELETE /api/comparisons/<job id>``.
``GET    /api/comparisons/<id>/results?k=5``    the top-k comparison table; ``409`` with the current job
                                                state while the comparison is not completed
``GET    /api/comparisons/<id>/logs``           execution log lines
``DELETE /api/comparisons/<id>``                request cooperative cancellation of a running comparison
``GET    /api/stats``                           result-cache, batch-dispatch, compiled-artifact and
                                                job-registry counters; on a sharded deployment also the
                                                shard topology, per-shard health/occupancy and hit rates;
                                                the ``overload`` section reports deadline, admission
                                                (shed/admitted), storage-retry and circuit-breaker counters
                                                plus the read-consistency mode and its quorum counters
                                                (``digest_reads``, ``stale_reads_prevented``,
                                                ``version_conflicts_resolved`` — also under
                                                ``shards.replication``, fed by the gateway's
                                                ``read_consistency="one"|"quorum"`` knob);
                                                the ``telemetry`` section reports tracer occupancy, the
                                                slow-span ring and a snapshot of the metrics registry
``GET    /api/comparisons/<id>/trace``          reconstructed telemetry span tree of a submission
                                                (``comparison`` root → scheduler group dispatch → batch
                                                execution → storage writes with per-replica attempts);
                                                ``trace`` is ``null`` when telemetry is disabled or the
                                                trace aged out of the tracer's bounded store
``GET    /metrics``                             Prometheus text exposition of the gateway's metrics
                                                registry: request/submission counters, runtime gauges
                                                (including the replicated store's stale-read/digest
                                                counters) and the per-span-name latency histograms

Errors are returned as ``{"error": "..."}`` with an appropriate status code
(400 for bad requests, 404 for unknown resources, 409 for results of an
unfinished comparison, 429 for submissions shed by admission control).

Example — submit without blocking, then follow the stream::

    curl -X POST $URL/api/comparisons -d '{"queries": [...], "synchronous": false}'
    curl "$URL/api/comparisons/$ID/events?after=0"            # long-poll
    curl -N "$URL/api/comparisons/$ID/events?stream=sse"      # live stream
    curl -X DELETE $URL/api/comparisons/$ID                   # cancel
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Mapping, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..exceptions import GatewayOverloadedError, ReproError
from .gateway import ApiGateway
from .tasks import TaskState
from .telemetry import trace_scope
from .webui import WebUI

__all__ = ["RestApiServer"]


def _route_label(path: str) -> str:
    """Collapse a request path onto the fixed route vocabulary.

    Metric labels must stay low-cardinality, so comparison/dataset ids are
    folded to ``*`` and anything unrecognised becomes ``other``.
    """
    parts = [part for part in path.split("/") if part]
    if not parts:
        return "/"
    if parts == ["metrics"]:
        return "/metrics"
    if parts[0] != "api":
        return "other"
    if parts[1:] in (["datasets"], ["algorithms"], ["stats"], ["comparisons"]):
        return "/api/" + parts[1]
    if parts[1] == "datasets" and len(parts) == 4 and parts[3] == "summary":
        return "/api/datasets/*/summary"
    if parts[1] == "comparisons" and len(parts) == 3:
        return "/api/comparisons/*"
    if parts[1] == "comparisons" and len(parts) == 4 and parts[3] in (
        "status", "events", "results", "logs", "trace"
    ):
        return "/api/comparisons/*/" + parts[3]
    if parts[1] == "storage" and len(parts) == 3 and parts[2] in (
        "replicate", "spill", "rebalance", "read-repair"
    ):
        return "/api/storage/" + parts[2]
    return "other"


class _GatewayRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the owning :class:`RestApiServer`'s gateway."""

    #: Set by :class:`RestApiServer` when the handler class is created.
    server_wrapper: "RestApiServer"

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        # Route access logs into the datastore instead of stderr so tests and
        # the demo stay quiet; the log id mirrors the component name.
        self.server_wrapper.gateway.datastore.append_log(
            "restapi", f"{self.address_string()} {format % args}"
        )

    def _send_json(
        self,
        payload: Any,
        status: int = 200,
        headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, ensure_ascii=False, default=str).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_html(self, html: str, status: int = 200) -> None:
        body = html.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/html; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, text: str, status: int = 200) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _traced(self, method: str, handler) -> None:
        """Run one request handler under a ``rest_request`` telemetry span.

        The span is the trace root of whatever the handler triggers — a
        submission's ``comparison`` span becomes its child, so the HTTP
        request and the work it spawned share one trace id.  SSE streams
        bypass the wrapper in :meth:`do_GET`: they pin the handler thread
        for the stream's lifetime and would record stream duration, not
        request-handling latency.
        """
        gateway = self.server_wrapper.gateway
        route = _route_label(self.path)
        gateway.metrics.counter_inc(
            "http_requests_total", help="REST requests handled, by method and route",
            method=method, route=route,
        )
        span = gateway.tracer.start_trace("rest_request", method=method, route=route)
        with trace_scope(span if span.recording else None):
            try:
                handler()
            finally:
                span.finish()

    def _send_error_json(self, message: str, status: int, **extra: Any) -> None:
        self._send_json({"error": message, **extra}, status=status)

    def _stream_sse(self, comparison_id: str, after: int, keepalive: float) -> None:
        """Stream a comparison's events as ``text/event-stream`` frames.

        The handler thread is pinned for the duration of the stream — which
        is exactly the deal the threading server offers: submissions return
        immediately, observers each hold one thread.  The stream ends after
        the ``task_done`` frame (or silently when the client disconnects).

        While the job is idle, a ``: ping`` SSE comment is written every
        ``keepalive`` seconds: comments are ignored by every SSE client but
        keep the connection warm through proxies that reap idle upstreams.
        A client that loses the stream anyway resumes losslessly by
        reconnecting with ``after=<last seen id>``.
        """
        gateway = self.server_wrapper.gateway
        # Probe the event cursor itself before committing the response, so
        # unknown (or registry-evicted) ids still 404: get_status would fall
        # back to the permanent task table and let the stream raise *after*
        # the 200 headers were sent.
        gateway.get_events(comparison_id, after=after, timeout=0.0)
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream; charset=utf-8")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        cursor = after

        def write_frames(events) -> bool:
            """Write the frames; return True once ``task_done`` went out."""
            nonlocal cursor
            for event in events:
                cursor = event["seq"]
                frame = (
                    f"id: {event['seq']}\n"
                    f"event: {event['type']}\n"
                    f"data: {json.dumps(event, ensure_ascii=False, default=str)}\n\n"
                )
                self.wfile.write(frame.encode("utf-8"))
                self.wfile.flush()
                if event["type"] == "task_done":
                    return True
            return False

        try:
            while True:
                events = gateway.get_events(
                    comparison_id, after=cursor, timeout=keepalive
                )
                if not events:
                    if gateway.get_status(comparison_id).state.is_terminal():
                        # The job finished right after the poll timed out:
                        # drain the tail so the promised task_done frame is
                        # delivered before the stream closes.
                        write_frames(
                            gateway.get_events(
                                comparison_id, after=cursor, timeout=0.0
                            )
                        )
                        return
                    self.wfile.write(b": ping\n\n")
                    self.wfile.flush()
                    continue
                if write_frames(events):
                    return
        except (BrokenPipeError, ConnectionResetError):
            pass  # the client went away; nothing to clean up
        except ReproError:
            # The record was evicted mid-stream (it had finished; only
            # terminal jobs age out) — the response is already committed,
            # so just end the stream.
            return

    def _read_json_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length", "0"))
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw.decode("utf-8") or "{}")
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValueError("the request body must be a JSON object")
        return payload

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        query = parse_qs(urlparse(self.path).query)
        if query.get("stream", [""])[0] == "sse":
            self._handle_get()  # SSE pins the thread; no request span
            return
        self._traced("GET", self._handle_get)

    def _handle_get(self) -> None:
        gateway = self.server_wrapper.gateway
        parsed = urlparse(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        query = parse_qs(parsed.query)
        try:
            if not parts:
                self._send_html(self.server_wrapper.render_index())
                return
            if parts == ["metrics"]:
                self._send_text(gateway.render_metrics())
                return
            if parts[:2] == ["api", "datasets"] and len(parts) == 2:
                self._send_json(gateway.list_datasets())
                return
            if parts[:2] == ["api", "datasets"] and len(parts) == 4 and parts[3] == "summary":
                self._send_json(gateway.dataset_summary(parts[2]))
                return
            if parts == ["api", "algorithms"]:
                self._send_json(gateway.list_algorithms())
                return
            if parts == ["api", "stats"]:
                self._send_json(gateway.get_platform_stats())
                return
            if parts == ["api", "comparisons"]:
                self._send_json(gateway.list_comparisons())
                return
            if parts[:2] == ["api", "comparisons"] and len(parts) == 4:
                comparison_id = parts[2]
                if parts[3] == "status":
                    progress = gateway.get_status(comparison_id)
                    self._send_json(
                        {
                            "comparison_id": comparison_id,
                            "state": progress.state.value,
                            "completed_queries": progress.completed_queries,
                            "total_queries": progress.total_queries,
                            "error": progress.error,
                        }
                    )
                    return
                if parts[3] == "events":
                    after = int(query.get("after", ["0"])[0])
                    if query.get("stream", [""])[0] == "sse":
                        keepalive = float(query.get("keepalive", ["15"])[0])
                        self._stream_sse(
                            comparison_id, after, min(max(keepalive, 0.05), 30.0)
                        )
                        return
                    timeout = min(float(query.get("timeout", ["10"])[0]), 30.0)
                    events = gateway.get_events(
                        comparison_id, after=after, timeout=max(timeout, 0.0)
                    )
                    progress = gateway.get_status(comparison_id)
                    if progress.state.is_terminal():
                        # The job finished between the events snapshot and
                        # the status read: top the batch up with the (now
                        # immediately available) tail so a terminal-state
                        # response always carries the complete log through
                        # task_done — clients may stop polling on `state`.
                        cursor = events[-1]["seq"] if events else after
                        events.extend(
                            gateway.get_events(
                                comparison_id, after=cursor, timeout=0.0
                            )
                        )
                    self._send_json(
                        {
                            "comparison_id": comparison_id,
                            "state": progress.state.value,
                            "events": events,
                            "next_after": events[-1]["seq"] if events else after,
                        }
                    )
                    return
                if parts[3] == "results":
                    k = int(query.get("k", ["5"])[0])
                    progress = gateway.get_status(comparison_id)
                    if progress.state is not TaskState.COMPLETED:
                        if progress.state.is_terminal():
                            # Failed/cancelled: results will never exist —
                            # say so (with the failure detail) instead of
                            # implying a retry might succeed.
                            message = (
                                f"comparison {comparison_id} finished "
                                f"{progress.state.value} and has no results"
                            )
                            if progress.error:
                                message += f": {progress.error}"
                        else:
                            message = (
                                f"comparison {comparison_id} has no results yet "
                                f"(state: {progress.state.value})"
                            )
                        self._send_error_json(
                            message,
                            409,
                            state=progress.state.value,
                            completed_queries=progress.completed_queries,
                            total_queries=progress.total_queries,
                            task_error=progress.error,
                        )
                        return
                    table = gateway.get_comparison_table(comparison_id, k=k)
                    self._send_json(table.as_dict())
                    return
                if parts[3] == "logs":
                    self._send_json({"lines": gateway.get_logs(comparison_id)})
                    return
                if parts[3] == "trace":
                    self._send_json(gateway.get_trace(comparison_id))
                    return
            self._send_error_json(f"unknown resource {parsed.path!r}", 404)
        except KeyError as exc:
            self._send_error_json(str(exc), 404)
        except ReproError as exc:
            self._send_error_json(str(exc), 404)
        except ValueError as exc:
            self._send_error_json(str(exc), 400)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._traced("POST", self._handle_post)

    def _handle_post(self) -> None:
        gateway = self.server_wrapper.gateway
        parsed = urlparse(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        try:
            if parts == ["api", "comparisons"]:
                payload = self._read_json_body()
                queries = payload.get("queries")
                if not isinstance(queries, list) or not queries:
                    raise ValueError("the body must contain a non-empty 'queries' list")
                synchronous = bool(payload.get("synchronous", False))
                comparison_id = gateway.run_queries(
                    queries,
                    synchronous=synchronous,
                    deadline_ms=payload.get("deadline_ms"),
                )
                self._send_json({"comparison_id": comparison_id}, status=201)
                return
            if parts[:2] == ["api", "storage"] and len(parts) == 3:
                kind = parts[2]
                payload = self._read_json_body()
                if kind == "replicate":
                    job_id = gateway.replicate_storage()
                elif kind == "spill":
                    job_id = gateway.spill_storage(
                        max_resident=payload.get("max_resident"),
                        max_resident_bytes=payload.get("max_resident_bytes"),
                        dataset_ids=payload.get("dataset_ids"),
                    )
                elif kind == "rebalance":
                    job_id = gateway.rebalance_storage()
                elif kind == "read-repair":
                    job_id = gateway.read_repair_storage()
                else:
                    self._send_error_json(f"unknown storage operation {kind!r}", 404)
                    return
                self._send_json({"job_id": job_id, "kind": kind}, status=202)
                return
            self._send_error_json(f"unknown resource {parsed.path!r}", 404)
        except GatewayOverloadedError as exc:
            # Shed by admission control: nothing was enqueued.  429 plus the
            # standard Retry-After header (integer seconds, rounded up so the
            # client never comes back early) and the precise hint in the body.
            self._send_json(
                {"error": str(exc), "retry_after": exc.retry_after, "shed": True},
                status=429,
                headers={"Retry-After": str(max(1, math.ceil(exc.retry_after)))},
            )
        except ReproError as exc:
            self._send_error_json(str(exc), 400)
        except (ValueError, KeyError, TypeError) as exc:
            self._send_error_json(str(exc), 400)

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        self._traced("DELETE", self._handle_delete)

    def _handle_delete(self) -> None:
        gateway = self.server_wrapper.gateway
        parsed = urlparse(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        try:
            if parts[:2] == ["api", "comparisons"] and len(parts) == 3:
                self._send_json(gateway.cancel_comparison(parts[2]))
                return
            self._send_error_json(f"unknown resource {parsed.path!r}", 404)
        except ReproError as exc:
            self._send_error_json(str(exc), 404)
        except ValueError as exc:
            self._send_error_json(str(exc), 400)


class RestApiServer:
    """Serve an :class:`ApiGateway` over HTTP on a background thread.

    Parameters
    ----------
    gateway:
        The gateway to expose; a default one (50 pre-loaded datasets) is
        created when omitted.
    host, port:
        Bind address.  ``port=0`` (the default) picks a free port; read the
        actual address from :attr:`address` after :meth:`start`.

    Examples
    --------
    >>> from repro.platform.restapi import RestApiServer
    >>> server = RestApiServer()            # doctest: +SKIP
    >>> server.start()                      # doctest: +SKIP
    >>> server.address                      # doctest: +SKIP
    ('127.0.0.1', 54321)
    >>> server.stop()                       # doctest: +SKIP
    """

    def __init__(
        self,
        gateway: Optional[ApiGateway] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._owns_gateway = gateway is None
        self.gateway = gateway if gateway is not None else ApiGateway()
        self._host = host
        self._port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._webui = WebUI(self.gateway)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> Tuple[str, int]:
        """Bind the socket, start serving on a daemon thread, return the address."""
        if self._httpd is not None:
            return self.address
        handler_class = type(
            "BoundGatewayRequestHandler", (_GatewayRequestHandler,), {"server_wrapper": self}
        )
        self._httpd = ThreadingHTTPServer((self._host, self._port), handler_class)
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-restapi", daemon=True
        )
        self._thread.start()
        return self.address

    def stop(self) -> None:
        """Stop serving and, if this server created the gateway, shut it down."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        if self._owns_gateway:
            self.gateway.shutdown()

    @property
    def address(self) -> Tuple[str, int]:
        """Return the bound ``(host, port)``; raises if the server is not started."""
        if self._httpd is None:
            raise RuntimeError("the server is not running; call start() first")
        return self._httpd.server_address  # type: ignore[return-value]

    @property
    def url(self) -> str:
        """Return the base URL of the running server."""
        host, port = self.address
        return f"http://{host}:{port}"

    def __enter__(self) -> "RestApiServer":
        self.start()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # HTML index
    # ------------------------------------------------------------------ #
    def render_index(self) -> str:
        """Render the HTML landing page (delegates to the Web UI renderer)."""
        return self._webui.render_index()
