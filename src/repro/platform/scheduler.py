"""The Scheduler: fetches datasets and dispatches queries to executor nodes.

Section III, step 2: "when the Scheduler receives the task, it fetches the
dataset and invokes an Executor node"; step 3: "the computation needed to
perform the task is off-loaded to the worker nodes"; step 4: "when the
computation is completed, results and logs are written to the datastore".

The scheduler owns the task table (so the Status component and the gateway
can look tasks up by id), materialises datasets from the catalog into the
datastore on first use and, when the last query finishes, serialises the
rankings into the datastore under the task's comparison id.

Dispatch is *batched and cached*: the queries of a task are grouped by
``(dataset, algorithm, parameters)``, queries whose ranking is already in the
platform-wide :class:`~repro.platform.cache.ResultCache` are answered without
touching an executor, and the remainder of each group is submitted as one
batched execution so the per-dataset work (CSR build, transition matrix) is
paid once per group instead of once per query.  Identical queries that are
in flight — whether from the same task or from concurrently submitted ones —
are deduplicated through a single-flight table, so the platform never
computes the same ranking twice concurrently.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from typing import Any, Dict, List, Optional, Tuple

from ..algorithms.registry import get_algorithm
from ..datasets.catalog import DatasetCatalog
from ..exceptions import TaskNotFoundError
from ..ranking.result import Ranking
from .cache import CacheKey, ResultCache, _canonical_parameters
from .datastore import DataStore
from .executor import BatchExecutionOutcome, ExecutorPool
from .tasks import Query, QuerySet, Task

__all__ = ["Scheduler"]

#: A group of same-(dataset, algorithm, parameters) queries: the group key
#: plus the (query index, query) members in task order.
GroupKey = Tuple[str, str, Tuple[Tuple[str, Any], ...]]


class Scheduler:
    """Dispatches tasks to the executor pool and records results.

    Parameters
    ----------
    datastore:
        Destination for results and logs; also owns the platform-wide
        :class:`~repro.platform.cache.ResultCache` consulted before any
        dispatch.  The scheduler works against the abstract store surface, so
        a :class:`~repro.platform.sharding.ShardedDataStore` (whose
        ``result_cache`` routes each key to the shard owning its dataset)
        drops in without any scheduling change.
    catalog:
        Source of datasets referenced by task queries.
    executor_pool:
        The pool of computational nodes that actually run the algorithms.
    """

    def __init__(
        self,
        datastore: DataStore,
        catalog: DatasetCatalog,
        executor_pool: ExecutorPool,
    ) -> None:
        self._datastore = datastore
        self._catalog = catalog
        self._pool = executor_pool
        self._cache = datastore.result_cache
        self._tasks: Dict[str, Task] = {}
        self._futures: Dict[str, List[Future]] = {}
        #: Single-flight table: cache key -> future of the ranking being
        #: computed right now, so concurrent identical queries never compute
        #: twice.  Entries are published here before dispatch and moved into
        #: the cache before removal, leaving no window to sneak a duplicate in.
        self._inflight: Dict[CacheKey, "Future[Ranking]"] = {}
        self._batches_dispatched = 0
        self._queries_batched = 0
        self._largest_batch = 0
        self._lock = threading.RLock()
        # Serialises first-use dataset materialisation so concurrent cold
        # starts don't double-store (store_dataset treats a re-store as a
        # re-upload and would needlessly invalidate fresh cache entries).
        self._materialise_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # task lookup
    # ------------------------------------------------------------------ #
    def get_task(self, task_id: str) -> Task:
        """Return the task with identifier ``task_id`` (raises if unknown)."""
        with self._lock:
            task = self._tasks.get(task_id)
        if task is None:
            raise TaskNotFoundError(task_id)
        return task

    def list_tasks(self) -> List[Task]:
        """Return every task the scheduler has seen, newest last."""
        with self._lock:
            return list(self._tasks.values())

    # ------------------------------------------------------------------ #
    # dataset materialisation
    # ------------------------------------------------------------------ #
    def _fetch_dataset(self, dataset_id: str):
        """Return ``(compiled graph, version)``, materialising on first use.

        Executors receive the datastore's cached
        :class:`~repro.graph.compiled.CompiledGraph` artifact rather than the
        raw :class:`DirectedGraph`, so the CSR/transpose/dangling structures
        are compiled once per dataset version instead of once per dispatch.
        """
        if not self._datastore.has_dataset(dataset_id):
            with self._materialise_lock:
                if not self._datastore.has_dataset(dataset_id):
                    graph = self._catalog.load(dataset_id)
                    self._datastore.store_dataset(dataset_id, graph)
        return self._datastore.fetch_compiled_with_version(dataset_id)

    # ------------------------------------------------------------------ #
    # grouping
    # ------------------------------------------------------------------ #
    @staticmethod
    def _group_queries(query_set: QuerySet) -> "OrderedDict[GroupKey, List[Tuple[int, Query]]]":
        """Group a task's queries by (dataset, algorithm, canonical parameters)."""
        groups: "OrderedDict[GroupKey, List[Tuple[int, Query]]]" = OrderedDict()
        for index, query in enumerate(query_set):
            group_key: GroupKey = (
                query.dataset_id,
                query.algorithm,
                _canonical_parameters(query.parameters),
            )
            groups.setdefault(group_key, []).append((index, query))
        return groups

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(self, task: Task) -> str:
        """Schedule every query of ``task`` for asynchronous execution.

        Returns the task id immediately; progress is observable through the
        task object, the Status component, or :meth:`wait`.  Cache hits are
        recorded synchronously (a task made entirely of hits completes before
        this method returns); the remaining queries of each group dispatch as
        one batched execution.
        """
        with self._lock:
            self._tasks[task.task_id] = task
            self._futures[task.task_id] = []
        task.mark_running()
        self._datastore.append_log(
            task.task_id,
            f"[scheduler] task {task.task_id} accepted with {task.total_queries} queries",
        )
        for (dataset_id, algorithm, _), members in self._group_queries(task.query_set).items():
            try:
                graph, version = self._fetch_dataset(dataset_id)
            except Exception as exc:
                task.mark_failed(f"cannot load dataset {dataset_id!r}: {exc}")
                self._datastore.append_log(
                    task.task_id, f"[scheduler] FAILED to load {dataset_id}: {exc}"
                )
                return task.task_id
            hits: List[Tuple[int, Ranking]] = []
            waiters: List[Tuple["Future[Ranking]", int]] = []
            to_compute: List[Tuple[CacheKey, Query]] = []
            with self._lock:
                for index, query in members:
                    key = ResultCache.key_for(
                        query.dataset_id, query.algorithm, query.parameters,
                        query.source, version=version,
                    )
                    cached = self._cache.get(key)
                    if cached is not None:
                        hits.append((index, cached))
                        continue
                    future = self._inflight.get(key)
                    if future is None:
                        future = Future()
                        self._inflight[key] = future
                        to_compute.append((key, query))
                    waiters.append((future, index))
                    self._futures[task.task_id].append(future)
            if hits:
                self._datastore.append_log(
                    task.task_id,
                    f"[scheduler] served {len(hits)} cached result(s) for "
                    f"{algorithm} on {dataset_id}",
                )
                for index, ranking in hits:
                    self._record_ranking(task, index, ranking)
            for future, index in waiters:
                future.add_done_callback(
                    lambda finished, task=task, index=index: self._on_ranking_ready(
                        task, index, finished
                    )
                )
            if to_compute:
                keys = [key for key, _ in to_compute]
                batch = [query for _, query in to_compute]
                try:
                    native_batch = get_algorithm(algorithm).has_native_batch
                except Exception:
                    # Let the executor's error machinery surface unknown
                    # algorithms through the normal failure path.
                    native_batch = True
                if len(batch) > 1 and not native_batch:
                    # Fallback algorithms (user-registered ones without a
                    # batch kernel — every registry algorithm has one) gain
                    # nothing from a grouped dispatch — run_batch would loop
                    # the sources on one worker; spread them across the pool
                    # instead.
                    for key, query in to_compute:
                        try:
                            single = self._pool.submit_batch(
                                [query], graph, log_id=task.task_id
                            )
                        except Exception as exc:
                            self._settle_inflight([key], error=exc)
                            continue
                        self._note_batch(1)
                        # Bind graph as a default: the loop variable is
                        # reassigned per group, and the retry path must use
                        # the graph this batch was dispatched with.
                        single.add_done_callback(
                            lambda finished, key=key, query=query, graph=graph:
                                self._resolve_batch(
                                    [key], [query], graph, task.task_id, finished
                                )
                        )
                    continue
                try:
                    batch_future = self._pool.submit_batch(batch, graph, log_id=task.task_id)
                except Exception as exc:
                    # The single-flight entries were already published; settle
                    # them so no waiter (this task's or a concurrent one's)
                    # blocks on a computation that will never run.
                    self._settle_inflight(keys, error=exc)
                    continue
                self._note_batch(len(batch))
                batch_future.add_done_callback(
                    lambda finished, keys=keys, batch=batch, graph=graph:
                        self._resolve_batch(keys, batch, graph, task.task_id, finished)
                )
        return task.task_id

    def run_synchronously(self, task: Task) -> Task:
        """Execute every query of ``task`` on the calling thread (no concurrency).

        Useful for the CLI, for tests and for benchmarks where deterministic
        single-threaded timing is preferable.  The result cache is consulted
        and populated exactly as in :meth:`submit`, and each group's misses
        run as one batched execution.
        """
        with self._lock:
            self._tasks[task.task_id] = task
        task.mark_running()
        for (dataset_id, algorithm, _), members in self._group_queries(task.query_set).items():
            try:
                graph, version = self._fetch_dataset(dataset_id)
            except Exception as exc:
                task.mark_failed(f"cannot load dataset {dataset_id!r}: {exc}")
                self._datastore.append_log(task.task_id, f"[scheduler] FAILED: {exc}")
                return task
            misses: "OrderedDict[CacheKey, Tuple[int, Query]]" = OrderedDict()
            joins: List[Tuple["Future[Ranking]", int]] = []
            with self._lock:
                for index, query in members:
                    key = ResultCache.key_for(
                        query.dataset_id, query.algorithm, query.parameters,
                        query.source, version=version,
                    )
                    cached = self._cache.get(key)
                    if cached is not None:
                        task.record_query_result(index, cached)
                        continue
                    inflight = self._inflight.get(key)
                    if inflight is not None:
                        # An identical query is already computing — either on
                        # the pool (a concurrent task) or registered by this
                        # very loop (an intra-task duplicate); join it instead
                        # of recomputing.
                        joins.append((inflight, index))
                        continue
                    misses[key] = (index, query)
                    self._inflight[key] = Future()
            keys = list(misses)
            if keys:
                batch = [query for _, query in misses.values()]
                self._note_batch(len(batch))
                results: Dict[CacheKey, Ranking] = {}
                failure: Optional[BaseException] = None
                try:
                    outcome = self._pool.execute_batch_sync(batch, graph, log_id=task.task_id)
                    results = dict(zip(keys, outcome.rankings))
                except Exception as exc:
                    if len(batch) == 1:
                        failure = exc
                    else:
                        # Degrade to per-query execution so one bad query
                        # cannot poison siblings joined by concurrent tasks.
                        self._datastore.append_log(
                            task.task_id,
                            f"[scheduler] batch of {len(batch)} failed ({exc}); "
                            "retrying queries individually",
                        )
                        for key, query in zip(keys, batch):
                            try:
                                single = self._pool.execute_batch_sync(
                                    [query], graph, log_id=task.task_id
                                )
                                results[key] = single.rankings[0]
                            except Exception as single_exc:
                                self._settle_inflight([key], error=single_exc)
                                if failure is None:
                                    failure = single_exc
                for key, ranking in results.items():
                    self._cache.put(key, ranking)
                    self._settle_inflight([key], rankings=[ranking])
                    task.record_query_result(misses[key][0], ranking)
                if failure is not None:
                    unsettled = [key for key in keys if key not in results]
                    self._settle_inflight(unsettled, error=failure)
                    task.mark_failed(str(failure))
                    self._datastore.append_log(task.task_id, f"[scheduler] FAILED: {failure}")
                    return task
            for inflight, index in joins:
                try:
                    ranking = inflight.result()
                except Exception as exc:
                    task.mark_failed(str(exc))
                    self._datastore.append_log(task.task_id, f"[scheduler] FAILED: {exc}")
                    return task
                task.record_query_result(index, ranking)
        self._store_results(task)
        return task

    # ------------------------------------------------------------------ #
    # completion handling
    # ------------------------------------------------------------------ #
    def _settle_inflight(
        self,
        keys: List[CacheKey],
        *,
        rankings: Optional[List[Ranking]] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        """Remove single-flight entries and settle their per-key futures.

        Callers populate the cache *before* settling on success; a concurrent
        submitter checks the cache first, so every moment in time has each
        key either cached or in flight.
        """
        with self._lock:
            settled = [self._inflight.pop(key, None) for key in keys]
        if error is not None:
            for per_key in settled:
                if per_key is not None:
                    per_key.set_exception(error)
            return
        for per_key, ranking in zip(settled, rankings or []):
            if per_key is not None:
                per_key.set_result(ranking)

    def _resolve_batch(
        self,
        keys: List[CacheKey],
        queries: List[Query],
        graph,
        log_id: str,
        future: Future,
    ) -> None:
        """Publish one finished batch: fill the cache, settle per-key futures.

        A failed multi-query batch degrades to per-query execution instead of
        settling every key with the same error: one bad query (e.g. an
        unknown source node) must not poison sibling queries that concurrent
        tasks may have joined through the single-flight table.
        """
        error = future.exception()
        if error is None:
            outcome: BatchExecutionOutcome = future.result()
            for key, ranking in zip(keys, outcome.rankings):
                self._cache.put(key, ranking)
            self._settle_inflight(keys, rankings=outcome.rankings)
            return
        if len(keys) == 1:
            self._settle_inflight(keys, error=error)
            return
        self._datastore.append_log(
            log_id,
            f"[scheduler] batch of {len(keys)} failed ({error}); "
            "retrying queries individually",
        )
        for key, query in zip(keys, queries):
            try:
                single = self._pool.submit_batch([query], graph, log_id=log_id)
            except Exception as exc:
                self._settle_inflight([key], error=exc)
                continue
            single.add_done_callback(
                lambda finished, key=key, query=query: self._resolve_batch(
                    [key], [query], graph, log_id, finished
                )
            )

    def _on_ranking_ready(self, task: Task, index: int, future: Future) -> None:
        error = future.exception()
        if error is not None:
            task.mark_failed(str(error))
            self._datastore.append_log(
                task.task_id, f"[scheduler] query {index} FAILED: {error}"
            )
            return
        self._record_ranking(task, index, future.result())

    def _record_ranking(self, task: Task, index: int, ranking: Ranking) -> None:
        task.record_query_result(index, ranking)
        if task.is_done():
            self._store_results(task)

    def _store_results(self, task: Task) -> None:
        rankings = task.rankings()
        payload = {
            "comparison_id": task.task_id,
            "state": task.state.value,
            "queries": [query.as_dict() for query in task.query_set],
            "rankings": {
                str(index): ranking.to_dict() for index, ranking in sorted(rankings.items())
            },
        }
        self._datastore.put_result(task.task_id, payload)
        self._datastore.append_log(
            task.task_id,
            f"[scheduler] task {task.task_id} {task.state.value}; results stored",
        )

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def _note_batch(self, size: int) -> None:
        with self._lock:
            self._batches_dispatched += 1
            self._queries_batched += size
            self._largest_batch = max(self._largest_batch, size)

    def batch_stats(self) -> Dict[str, Any]:
        """Return a snapshot of the batched-dispatch counters.

        ``batches`` counts dispatched batch executions, ``batched_queries``
        the queries they carried (cache hits never reach a batch), and
        ``largest_batch``/``mean_batch_size`` summarise how much per-dataset
        work the grouping amortised.
        """
        with self._lock:
            batches = self._batches_dispatched
            batched_queries = self._queries_batched
            largest = self._largest_batch
            inflight = len(self._inflight)
        return {
            "batches": batches,
            "batched_queries": batched_queries,
            "largest_batch": largest,
            "mean_batch_size": (batched_queries / batches) if batches else 0.0,
            "inflight_queries": inflight,
        }

    def cache_stats(self) -> Dict[str, Any]:
        """Return the result-cache counters (delegates to the datastore's cache)."""
        return self._cache.stats()

    def artifact_stats(self) -> Dict[str, Any]:
        """Return the compiled-artifact cache counters (delegates to the datastore)."""
        return self._datastore.artifact_stats()

    # ------------------------------------------------------------------ #
    # waiting
    # ------------------------------------------------------------------ #
    def wait(self, task_id: str, *, timeout: Optional[float] = None) -> Task:
        """Block until the task reaches a terminal state (or the timeout expires)."""
        task = self.get_task(task_id)
        with self._lock:
            futures = list(self._futures.get(task_id, []))
        for future in futures:
            try:
                future.result(timeout=timeout)
            except Exception:
                # The per-query error is already recorded on the task; waiting
                # must not re-raise it.
                pass
        # The done-callbacks run on the worker threads and may still be
        # persisting the final results when the futures unblock; wait for the
        # stored result so callers observe the complete step-4 state.
        if task.is_done() and task.error is None:
            deadline = time.monotonic() + (timeout if timeout is not None else 30.0)
            while not self._datastore.has_result(task_id) and time.monotonic() < deadline:
                time.sleep(0.001)
        return task

    def rankings_for(self, task_id: str) -> Dict[int, Ranking]:
        """Return the rankings computed so far for ``task_id``."""
        return self.get_task(task_id).rankings()
