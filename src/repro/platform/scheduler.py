"""The Scheduler: fetches datasets and dispatches queries to executor nodes.

Section III, step 2: "when the Scheduler receives the task, it fetches the
dataset and invokes an Executor node"; step 3: "the computation needed to
perform the task is off-loaded to the worker nodes"; step 4: "when the
computation is completed, results and logs are written to the datastore".

The scheduler owns the task table (so the Status component and the gateway
can look tasks up by id), materialises datasets from the catalog into the
datastore on first use, submits every query of a task to the executor pool
and, when the last query finishes, serialises the rankings into the
datastore under the task's comparison id.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Dict, List, Optional

from ..datasets.catalog import DatasetCatalog
from ..exceptions import TaskNotFoundError
from ..ranking.result import Ranking
from .datastore import DataStore
from .executor import ExecutionOutcome, ExecutorPool
from .tasks import Task

__all__ = ["Scheduler"]


class Scheduler:
    """Dispatches tasks to the executor pool and records results.

    Parameters
    ----------
    datastore:
        Destination for results and logs (and cache for dataset graphs).
    catalog:
        Source of datasets referenced by task queries.
    executor_pool:
        The pool of computational nodes that actually run the algorithms.
    """

    def __init__(
        self,
        datastore: DataStore,
        catalog: DatasetCatalog,
        executor_pool: ExecutorPool,
    ) -> None:
        self._datastore = datastore
        self._catalog = catalog
        self._pool = executor_pool
        self._tasks: Dict[str, Task] = {}
        self._futures: Dict[str, List[Future]] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # task lookup
    # ------------------------------------------------------------------ #
    def get_task(self, task_id: str) -> Task:
        """Return the task with identifier ``task_id`` (raises if unknown)."""
        with self._lock:
            task = self._tasks.get(task_id)
        if task is None:
            raise TaskNotFoundError(task_id)
        return task

    def list_tasks(self) -> List[Task]:
        """Return every task the scheduler has seen, newest last."""
        with self._lock:
            return list(self._tasks.values())

    # ------------------------------------------------------------------ #
    # dataset materialisation
    # ------------------------------------------------------------------ #
    def _fetch_dataset(self, dataset_id: str):
        """Return a dataset graph, materialising it into the datastore on first use."""
        if self._datastore.has_dataset(dataset_id):
            return self._datastore.fetch_dataset(dataset_id)
        graph = self._catalog.load(dataset_id)
        self._datastore.store_dataset(dataset_id, graph)
        return graph

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(self, task: Task) -> str:
        """Schedule every query of ``task`` for asynchronous execution.

        Returns the task id immediately; progress is observable through the
        task object, the Status component, or :meth:`wait`.
        """
        with self._lock:
            self._tasks[task.task_id] = task
            self._futures[task.task_id] = []
        task.mark_running()
        self._datastore.append_log(
            task.task_id,
            f"[scheduler] task {task.task_id} accepted with {task.total_queries} queries",
        )
        for index, query in enumerate(task.query_set):
            try:
                graph = self._fetch_dataset(query.dataset_id)
            except Exception as exc:
                task.mark_failed(f"cannot load dataset {query.dataset_id!r}: {exc}")
                self._datastore.append_log(
                    task.task_id, f"[scheduler] FAILED to load {query.dataset_id}: {exc}"
                )
                return task.task_id
            future = self._pool.submit(query, graph, log_id=task.task_id)
            future.add_done_callback(
                lambda finished, task=task, index=index: self._on_query_done(
                    task, index, finished
                )
            )
            with self._lock:
                self._futures[task.task_id].append(future)
        return task.task_id

    def run_synchronously(self, task: Task) -> Task:
        """Execute every query of ``task`` on the calling thread (no concurrency).

        Useful for the CLI, for tests and for benchmarks where deterministic
        single-threaded timing is preferable.
        """
        with self._lock:
            self._tasks[task.task_id] = task
        task.mark_running()
        for index, query in enumerate(task.query_set):
            try:
                graph = self._fetch_dataset(query.dataset_id)
                outcome = self._pool.execute_sync(query, graph, log_id=task.task_id)
            except Exception as exc:
                task.mark_failed(str(exc))
                self._datastore.append_log(task.task_id, f"[scheduler] FAILED: {exc}")
                return task
            task.record_query_result(index, outcome.ranking)
        self._store_results(task)
        return task

    # ------------------------------------------------------------------ #
    # completion handling
    # ------------------------------------------------------------------ #
    def _on_query_done(self, task: Task, index: int, future: Future) -> None:
        error = future.exception()
        if error is not None:
            task.mark_failed(str(error))
            self._datastore.append_log(
                task.task_id, f"[scheduler] query {index} FAILED: {error}"
            )
            return
        outcome: ExecutionOutcome = future.result()
        task.record_query_result(index, outcome.ranking)
        if task.is_done():
            self._store_results(task)

    def _store_results(self, task: Task) -> None:
        rankings = task.rankings()
        payload = {
            "comparison_id": task.task_id,
            "state": task.state.value,
            "queries": [query.as_dict() for query in task.query_set],
            "rankings": {
                str(index): ranking.to_dict() for index, ranking in sorted(rankings.items())
            },
        }
        self._datastore.put_result(task.task_id, payload)
        self._datastore.append_log(
            task.task_id,
            f"[scheduler] task {task.task_id} {task.state.value}; results stored",
        )

    # ------------------------------------------------------------------ #
    # waiting
    # ------------------------------------------------------------------ #
    def wait(self, task_id: str, *, timeout: Optional[float] = None) -> Task:
        """Block until the task reaches a terminal state (or the timeout expires)."""
        task = self.get_task(task_id)
        with self._lock:
            futures = list(self._futures.get(task_id, []))
        for future in futures:
            try:
                future.result(timeout=timeout)
            except Exception:
                # The per-query error is already recorded on the task; waiting
                # must not re-raise it.
                pass
        # The done-callbacks run on the worker threads and may still be
        # persisting the final results when the futures unblock; wait for the
        # stored result so callers observe the complete step-4 state.
        if task.is_done() and task.error is None:
            deadline = time.monotonic() + (timeout if timeout is not None else 30.0)
            while not self._datastore.has_result(task_id) and time.monotonic() < deadline:
                time.sleep(0.001)
        return task

    def rankings_for(self, task_id: str) -> Dict[int, Ranking]:
        """Return the rankings computed so far for ``task_id``."""
        return self.get_task(task_id).rankings()
